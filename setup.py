"""Setup shim so ``pip install -e .`` works in offline environments that lack
the ``wheel`` package (falls back to the legacy setuptools develop install)."""

from setuptools import setup

setup()
