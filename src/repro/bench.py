"""Benchmark support: regenerating the paper's evaluation tables.

Figure 6 reports, per benchmark: LOC, the number of trivial (T), mutability
(M) and refinement (R) annotations, and the checking time.  Figure 7 reports
the number of changed lines needed to port each benchmark (ImpDiff/AllDiff).

Our ports are written directly in nanoTS, so the annotation counts are
measured from the sources by the same classification the paper uses:

* **T** — trivial annotations: plain TypeScript-style types (no refinement,
  no mutability qualifier),
* **M** — annotations that carry a mutability qualifier (``immutable``,
  ``IArray``/``Array<IM, _>``, ``@Mutable``-style method annotations),
* **R** — annotations whose type mentions a refinement (``{v: ... | ...}``,
  a refined alias such as ``idx<a>``/``grid<w,h>``, or a ghost ``declare``).

The ImpDiff/AllDiff columns of Figure 7 describe the effort of porting the
original JavaScript to RSC; for our nanoTS ports these were recorded while
the ports were written and are stored in :data:`CODE_CHANGES`.

All checking goes through one shared :class:`repro.Session`, so a Figure 6
run amortises a single solver (and its query cache) across all seven
benchmarks — pass an explicit session to :func:`check_benchmark` to control
the lifetime yourself.

A Figure 6 run also reports the liquid-fixpoint engine's counters and a
before/after comparison of the worklist scheduler against the reference
naive global-round loop (:func:`figure6_with_comparison`); the machine
readable report (:func:`fixpoint_report`) is what ``repro bench figure6``
dumps as ``BENCH_fixpoint.json`` and what CI diffs against
``benchmarks/baseline.json``.

``repro bench smt`` (:func:`smt_mode_rows`) runs every port under both SMT
engines — a fresh solver per query vs persistent assumption-based contexts
— asserting byte-identical verdicts and reporting the SAT-search savings;
the report lands in ``BENCH_smt.json`` and is gated against the baseline's
``smt`` section.
"""

from __future__ import annotations

import os
import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import CheckConfig
from repro.core.session import Session
from repro.core.workspace import Workspace

#: Paper's Figure 6 numbers: benchmark -> (LOC, T, M, R, time seconds)
PAPER_FIGURE6: Dict[str, tuple] = {
    "navier-stokes": (366, 3, 18, 39, 473),
    "splay": (206, 18, 2, 0, 6),
    "richards": (304, 61, 5, 17, 7),
    "raytrace": (576, 68, 14, 2, 15),
    "transducers": (588, 138, 13, 11, 12),
    "d3-arrays": (189, 36, 4, 10, 37),
    "tsc-checker": (293, 10, 48, 12, 62),
}

#: Paper's Figure 7 numbers: benchmark -> (LOC, ImpDiff, AllDiff)
PAPER_FIGURE7: Dict[str, tuple] = {
    "navier-stokes": (366, 79, 160),
    "splay": (206, 58, 64),
    "richards": (304, 52, 108),
    "raytrace": (576, 93, 145),
    "transducers": (588, 170, 418),
    "d3-arrays": (189, 8, 110),
    "tsc-checker": (293, 9, 47),
}

#: Code-change counts recorded while porting the benchmarks to nanoTS
#: (important restructurings vs. all changed lines), mirroring Figure 7.
CODE_CHANGES: Dict[str, tuple] = {
    "navier-stokes": (14, 36),
    "splay": (9, 15),
    "richards": (8, 21),
    "raytrace": (10, 22),
    "transducers": (11, 27),
    "d3-arrays": (3, 14),
    "tsc-checker": (4, 16),
}

BENCHMARKS = list(PAPER_FIGURE6.keys())

_REFINEMENT_MARKERS = re.compile(
    r"\{\s*v\s*:|idx<|grid<|okW|okH|len\(|mask\(|impl\(|flagsT|rgb\b|nat\b|pos\b")
_MUTABILITY_MARKERS = re.compile(
    r"\bimmutable\b|\bIArray\b|\bROArray\b|\bUArray\b|Array<\s*(IM|MU|RO|UQ)")


def default_programs_dir() -> pathlib.Path:
    """Locate ``benchmarks/programs`` (env override, cwd, then repo root)."""
    env = os.environ.get("RSC_BENCH_PROGRAMS")
    candidates = [pathlib.Path(env)] if env else []
    candidates.append(pathlib.Path.cwd() / "benchmarks" / "programs")
    candidates.append(pathlib.Path(__file__).resolve().parents[2]
                      / "benchmarks" / "programs")
    for candidate in candidates:
        if candidate.is_dir():
            return candidate
    raise FileNotFoundError(
        "cannot locate the benchmark programs directory; set "
        "RSC_BENCH_PROGRAMS or run from the repository root")


@dataclass
class BenchmarkRow:
    name: str
    loc: int
    trivial: int
    mutability: int
    refinements: int
    time_seconds: float
    errors: int
    safe: bool
    queries: int = 0            # SMT validity/sat queries issued for this file
    solve_rounds: int = 0       # fixpoint scheduler steps
    queries_pruned: int = 0     # candidates discharged without an SMT query
    cache_hits: int = 0         # solver-cache hits while checking this file

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "loc": self.loc,
            "trivial": self.trivial,
            "mutability": self.mutability,
            "refinements": self.refinements,
            "time_seconds": self.time_seconds,
            "errors": self.errors,
            "safe": self.safe,
            "queries": self.queries,
            "solve_rounds": self.solve_rounds,
            "queries_pruned": self.queries_pruned,
            "cache_hits": self.cache_hits,
        }


@dataclass
class FixpointComparison:
    """Per-benchmark before/after numbers: naive rounds vs the worklist."""

    name: str
    naive_queries: int
    worklist_queries: int
    naive_time_seconds: float
    worklist_time_seconds: float
    rounds: int
    queries_pruned: int
    cache_hits: int
    safe: bool

    @property
    def query_reduction(self) -> float:
        """Fraction of the naive engine's solve queries the worklist avoided."""
        if self.naive_queries == 0:
            return 0.0
        return 1.0 - self.worklist_queries / self.naive_queries

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "naive": {
                "queries": self.naive_queries,
                "time_seconds": self.naive_time_seconds,
            },
            "worklist": {
                "queries": self.worklist_queries,
                "time_seconds": self.worklist_time_seconds,
                "rounds": self.rounds,
                "queries_pruned": self.queries_pruned,
                "cache_hits": self.cache_hits,
            },
            "query_reduction": self.query_reduction,
            "safe": self.safe,
        }


def source_of(name: str,
              programs_dir: Optional[pathlib.Path] = None) -> str:
    directory = programs_dir or default_programs_dir()
    return (directory / f"{name}.rsc").read_text()


def count_loc(source: str) -> int:
    """Non-comment, non-blank lines (the paper uses cloc the same way)."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            count += 1
    return count


def count_annotations(source: str) -> tuple:
    """Classify every annotation site into (trivial, mutability, refinement).

    Annotation sites are: ``spec``/``declare`` signatures, type alias
    definitions, field declarations, and parameter/return annotations on
    class methods."""
    trivial = mutability = refinements = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        is_annotation = (
            stripped.startswith(("spec ", "declare ", "type "))
            or re.match(r"^(immutable\s+|mutable\s+)?\w+\s*:\s*\S+;?\s*$", stripped)
            or re.search(r"\)\s*:\s*\w+", stripped)
        )
        if not is_annotation:
            continue
        has_refinement = bool(_REFINEMENT_MARKERS.search(stripped))
        has_mutability = bool(_MUTABILITY_MARKERS.search(stripped))
        if stripped.startswith("declare ") or has_refinement:
            refinements += 1
        elif has_mutability:
            mutability += 1
        else:
            trivial += 1
    return trivial, mutability, refinements


_SHARED_SESSION: Optional[Session] = None


def shared_session() -> Session:
    """The module-wide session used when no explicit session is passed.

    One long-lived solver across every benchmark is exactly how Figure 6
    runs are amortised."""
    global _SHARED_SESSION
    if _SHARED_SESSION is None:
        _SHARED_SESSION = Session(CheckConfig())
    return _SHARED_SESSION


def check_benchmark(name: str, session: Optional[Session] = None,
                    programs_dir: Optional[pathlib.Path] = None) -> BenchmarkRow:
    source = source_of(name, programs_dir)
    session = session or shared_session()
    result = session.check_source(source, filename=f"{name}.rsc")
    trivial, mut, refs = count_annotations(source)
    solve = result.solve_stats
    return BenchmarkRow(name=name, loc=count_loc(source), trivial=trivial,
                        mutability=mut, refinements=refs,
                        time_seconds=result.time_seconds,
                        errors=len(result.errors), safe=result.ok,
                        queries=result.stats.queries if result.stats else 0,
                        solve_rounds=solve.rounds if solve else 0,
                        queries_pruned=solve.queries_pruned if solve else 0,
                        cache_hits=result.stats.cache_hits if result.stats else 0)


def figure6_rows(names: Optional[List[str]] = None,
                 session: Optional[Session] = None,
                 programs_dir: Optional[pathlib.Path] = None
                 ) -> List[BenchmarkRow]:
    session = session or shared_session()
    return [check_benchmark(name, session, programs_dir)
            for name in (names or BENCHMARKS)]


def figure6_with_comparison(names: Optional[List[str]] = None,
                            programs_dir: Optional[pathlib.Path] = None
                            ) -> tuple:
    """Run Figure 6 under both fixpoint strategies.

    Returns ``(rows, comparisons)``: the worklist-engine benchmark rows plus
    a per-benchmark :class:`FixpointComparison` against the naive
    global-round engine.  Each strategy gets its own fresh session so the
    query counts are not distorted by the other strategy's solver cache.
    """
    names = list(names or BENCHMARKS)
    worklist = Session(CheckConfig(fixpoint_strategy="worklist"))
    naive = Session(CheckConfig(fixpoint_strategy="naive"))
    rows: List[BenchmarkRow] = []
    comparisons: List[FixpointComparison] = []
    for name in names:
        source = source_of(name, programs_dir)
        filename = f"{name}.rsc"
        naive_result = naive.check_source(source, filename=filename)
        worklist_result = worklist.check_source(source, filename=filename)
        trivial, mut, refs = count_annotations(source)
        solve = worklist_result.solve_stats
        stats = worklist_result.stats
        rows.append(BenchmarkRow(
            name=name, loc=count_loc(source), trivial=trivial,
            mutability=mut, refinements=refs,
            time_seconds=worklist_result.time_seconds,
            errors=len(worklist_result.errors), safe=worklist_result.ok,
            queries=stats.queries if stats else 0,
            solve_rounds=solve.rounds if solve else 0,
            queries_pruned=solve.queries_pruned if solve else 0,
            cache_hits=stats.cache_hits if stats else 0))
        naive_solve = naive_result.solve_stats
        comparisons.append(FixpointComparison(
            name=name,
            naive_queries=naive_solve.queries_issued if naive_solve else 0,
            worklist_queries=solve.queries_issued if solve else 0,
            naive_time_seconds=naive_result.time_seconds,
            worklist_time_seconds=worklist_result.time_seconds,
            rounds=solve.rounds if solve else 0,
            queries_pruned=solve.queries_pruned if solve else 0,
            cache_hits=solve.cache_hits if solve else 0,
            safe=worklist_result.ok and naive_result.ok))
    return rows, comparisons


def format_fixpoint_comparison(comparisons: List[FixpointComparison]) -> str:
    """The before/after table printed under the Figure 6 results."""
    lines = [
        "Fixpoint engine: naive global rounds vs dependency-directed worklist",
        "Benchmark        Queries(naive)  Queries(worklist)  Saved%  "
        "Time(naive)  Time(worklist)",
        "-" * 86,
    ]
    tot_nq = tot_wq = 0
    tot_nt = tot_wt = 0.0
    for cmp in comparisons:
        lines.append(
            f"{cmp.name:15s} {cmp.naive_queries:14d} {cmp.worklist_queries:18d} "
            f"{100 * cmp.query_reduction:6.1f} {cmp.naive_time_seconds:12.2f} "
            f"{cmp.worklist_time_seconds:15.2f}")
        tot_nq += cmp.naive_queries
        tot_wq += cmp.worklist_queries
        tot_nt += cmp.naive_time_seconds
        tot_wt += cmp.worklist_time_seconds
    lines.append("-" * 86)
    saved = 100 * (1.0 - tot_wq / tot_nq) if tot_nq else 0.0
    lines.append(f"{'TOTAL':15s} {tot_nq:14d} {tot_wq:18d} {saved:6.1f} "
                 f"{tot_nt:12.2f} {tot_wt:15.2f}")
    return "\n".join(lines)


#: Schema identifier stamped into fixpoint reports (bump on layout changes).
FIXPOINT_REPORT_SCHEMA = "repro-bench-fixpoint/1"


def fixpoint_report(rows: List[BenchmarkRow],
                    comparisons: List[FixpointComparison]) -> dict:
    """The machine-readable report dumped as ``BENCH_fixpoint.json``."""
    benchmarks = {}
    by_name = {row.name: row for row in rows}
    for cmp in comparisons:
        entry = cmp.to_dict()
        row = by_name.get(cmp.name)
        if row is not None:
            entry["figure6"] = row.to_dict()
        benchmarks[cmp.name] = entry
    return {
        "schema": FIXPOINT_REPORT_SCHEMA,
        "benchmarks": benchmarks,
        "totals": {
            "naive_queries": sum(c.naive_queries for c in comparisons),
            "worklist_queries": sum(c.worklist_queries for c in comparisons),
            "naive_time_seconds": sum(c.naive_time_seconds
                                      for c in comparisons),
            "worklist_time_seconds": sum(c.worklist_time_seconds
                                         for c in comparisons),
        },
    }


def format_figure6(rows: List[BenchmarkRow]) -> str:
    lines = ["Benchmark        LOC    T    M    R   Time(s)  Errors  "
             "Queries  Pruned",
             "-" * 74]
    total_loc = total_t = total_m = total_r = 0
    total_q = total_p = 0
    for row in rows:
        lines.append(f"{row.name:15s} {row.loc:4d} {row.trivial:4d} "
                     f"{row.mutability:4d} {row.refinements:4d} "
                     f"{row.time_seconds:8.2f} {row.errors:6d} "
                     f"{row.queries:8d} {row.queries_pruned:7d}")
        total_loc += row.loc
        total_t += row.trivial
        total_m += row.mutability
        total_r += row.refinements
        total_q += row.queries
        total_p += row.queries_pruned
    lines.append("-" * 74)
    lines.append(f"{'TOTAL':15s} {total_loc:4d} {total_t:4d} {total_m:4d} "
                 f"{total_r:4d} {'':8s} {'':6s} {total_q:8d} {total_p:7d}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# SMT-mode comparison (`repro bench smt`)
# ---------------------------------------------------------------------------


@dataclass
class SmtModeRow:
    """Fresh-solver vs incremental-context numbers for one benchmark.

    ``identical`` asserts the differential property the incremental engine
    must preserve: byte-identical diagnostics and kappa solutions under both
    modes.  ``sat_calls`` is the comparison metric — SAT search episodes —
    while the context counters explain *why* incremental wins (persistent
    contexts, replayed theory lemmas, propagation-evident refutations).
    """

    name: str
    fresh_sat_calls: int
    incremental_sat_calls: int
    fresh_theory_checks: int
    incremental_theory_checks: int
    fresh_time_seconds: float
    incremental_time_seconds: float
    queries: int
    contexts_created: int
    contexts_reused: int
    clauses_learned: int
    lemmas_reused: int
    identical: bool
    safe: bool

    @property
    def sat_call_reduction(self) -> float:
        """Fraction of the fresh engine's SAT searches incremental avoided."""
        if self.fresh_sat_calls == 0:
            return 0.0
        return 1.0 - self.incremental_sat_calls / self.fresh_sat_calls

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "fresh": {
                "sat_calls": self.fresh_sat_calls,
                "theory_checks": self.fresh_theory_checks,
                "time_seconds": self.fresh_time_seconds,
            },
            "incremental": {
                "sat_calls": self.incremental_sat_calls,
                "theory_checks": self.incremental_theory_checks,
                "time_seconds": self.incremental_time_seconds,
                "contexts_created": self.contexts_created,
                "contexts_reused": self.contexts_reused,
                "clauses_learned": self.clauses_learned,
                "lemmas_reused": self.lemmas_reused,
            },
            "queries": self.queries,
            "sat_call_reduction": self.sat_call_reduction,
            "identical": self.identical,
            "safe": self.safe,
        }


def _comparable_verdict(result) -> tuple:
    """The parts of a :class:`CheckResult` that must match across SMT modes:
    every diagnostic (code, message, span, severity) and the solved kappa
    refinements, rendered to strings so the comparison is byte-level."""
    return (
        [d.to_dict() for d in result.diagnostics],
        {name: [str(q) for q in quals]
         for name, quals in sorted(result.kappa_solution.items())},
    )


def smt_mode_rows(names: Optional[List[str]] = None,
                  programs_dir: Optional[pathlib.Path] = None
                  ) -> List[SmtModeRow]:
    """Check every benchmark under both SMT modes and compare.

    Each mode gets its own fresh session (and solver) per benchmark, so the
    counters are not distorted by the other mode's result cache or by
    earlier benchmarks' contexts.
    """
    rows: List[SmtModeRow] = []
    for name in (names or BENCHMARKS):
        source = source_of(name, programs_dir)
        filename = f"{name}.rsc"
        fresh = Session(CheckConfig(smt_mode="fresh")).check_source(
            source, filename=filename)
        incremental = Session(CheckConfig(smt_mode="incremental")).check_source(
            source, filename=filename)
        fs, inc = fresh.stats, incremental.stats
        rows.append(SmtModeRow(
            name=name,
            fresh_sat_calls=fs.sat_calls if fs else 0,
            incremental_sat_calls=inc.sat_calls if inc else 0,
            fresh_theory_checks=fs.theory_checks if fs else 0,
            incremental_theory_checks=inc.theory_checks if inc else 0,
            fresh_time_seconds=fresh.time_seconds,
            incremental_time_seconds=incremental.time_seconds,
            queries=inc.queries if inc else 0,
            contexts_created=inc.contexts_created if inc else 0,
            contexts_reused=inc.contexts_reused if inc else 0,
            clauses_learned=inc.clauses_learned if inc else 0,
            lemmas_reused=inc.lemmas_reused if inc else 0,
            identical=_comparable_verdict(fresh) == _comparable_verdict(
                incremental),
            safe=fresh.ok and incremental.ok))
    return rows


#: Schema identifier stamped into SMT-mode reports.
SMT_REPORT_SCHEMA = "repro-bench-smt/1"


def smt_report(rows: List[SmtModeRow]) -> dict:
    """The machine-readable report dumped as ``BENCH_smt.json``."""
    return {
        "schema": SMT_REPORT_SCHEMA,
        "benchmarks": {row.name: row.to_dict() for row in rows},
        "totals": {
            "fresh_sat_calls": sum(r.fresh_sat_calls for r in rows),
            "incremental_sat_calls": sum(r.incremental_sat_calls
                                         for r in rows),
            "fresh_time_seconds": sum(r.fresh_time_seconds for r in rows),
            "incremental_time_seconds": sum(r.incremental_time_seconds
                                            for r in rows),
        },
    }


def format_smt(rows: List[SmtModeRow]) -> str:
    """The table printed by ``repro bench smt``."""
    lines = [
        "SMT engine: fresh solver per query vs persistent assumption-based "
        "contexts",
        "Benchmark        Sat(fresh)  Sat(incr)  Saved%  Ctx(new/reuse)  "
        "Lemmas  Same  Time(f)  Time(i)",
        "-" * 92,
    ]
    tot_f = tot_i = 0
    tot_ft = tot_it = 0.0
    for row in rows:
        ctx = f"{row.contexts_created}/{row.contexts_reused}"
        lines.append(
            f"{row.name:15s} {row.fresh_sat_calls:11d} "
            f"{row.incremental_sat_calls:10d} "
            f"{100 * row.sat_call_reduction:6.1f} {ctx:>14s} "
            f"{row.lemmas_reused:7d} {'yes' if row.identical else 'NO':>5s} "
            f"{row.fresh_time_seconds:8.2f} "
            f"{row.incremental_time_seconds:8.2f}")
        tot_f += row.fresh_sat_calls
        tot_i += row.incremental_sat_calls
        tot_ft += row.fresh_time_seconds
        tot_it += row.incremental_time_seconds
    lines.append("-" * 92)
    saved = 100 * (1.0 - tot_i / tot_f) if tot_f else 0.0
    lines.append(f"{'TOTAL':15s} {tot_f:11d} {tot_i:10d} {saved:6.1f} "
                 f"{'':14s} {'':7s} {'':5s} {tot_ft:8.2f} {tot_it:8.2f}")
    return "\n".join(lines)


#: Function edited by the scripted ``incremental`` scenario, per benchmark.
#: The edit inserts a harmless statement at the top of this function's body,
#: dirtying exactly one declaration while the program keeps verifying.
EDIT_TARGETS: Dict[str, str] = {
    "navier-stokes": "diffuse",
    "splay": "findMax",
    "richards": "runnableCount",
    "raytrace": "closestHit",
    "transducers": "sum",
    "d3-arrays": "min",
    "tsc-checker": "countMembers",
}


def edit_function_body(source: str, name: str, marker: int = 0) -> str:
    """Insert a no-op statement at the start of function ``name``'s body.

    Distinct ``marker`` values produce distinct program texts (and so
    distinct content hashes) that still dirty exactly the same declaration
    — how the serve bench fabricates fresh superseding edits.
    """
    pattern = re.compile(rf"(function\s+{re.escape(name)}\s*\([^)]*\)\s*\{{)")
    edited, count = pattern.subn(rf"\1 var __bench_edit = {marker};",
                                 source, count=1)
    if count != 1:
        raise ValueError(f"cannot find function {name!r} to edit")
    return edited


def scripted_edits(name: str, source: str) -> List[tuple]:
    """The ``(label, text)`` edit sequence the incremental bench replays.

    * ``comment`` — whitespace/comment-only change: the AST is unchanged, so
      every declaration's artifacts must be reused (0 solve queries).
    * ``body`` — one declaration's body changes: only that partition is
      re-solved, warm-started from the previous solution.
    * ``revert`` — back to the original text: served from the per-document
      content-hash artifact cache without running the pipeline at all.
    """
    return [
        ("comment", source + "\n// bench: comment-only edit\n"),
        ("body", edit_function_body(source, EDIT_TARGETS[name])),
        ("revert", source),
    ]


@dataclass
class IncrementalEdit:
    """Counters for one replayed edit of the incremental scenario."""

    label: str
    queries: int
    time_seconds: float
    warm: bool
    declarations_rechecked: int
    declarations_reused: int
    safe: bool

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "queries": self.queries,
            "time_seconds": self.time_seconds,
            "warm": self.warm,
            "declarations_rechecked": self.declarations_rechecked,
            "declarations_reused": self.declarations_reused,
            "safe": self.safe,
        }


@dataclass
class IncrementalRow:
    """Cold-check vs. edit-replay numbers for one benchmark."""

    name: str
    cold_queries: int
    cold_time_seconds: float
    edits: List[IncrementalEdit] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        return all(edit.safe for edit in self.edits)

    @property
    def body_edit(self) -> Optional[IncrementalEdit]:
        for edit in self.edits:
            if edit.label == "body":
                return edit
        return None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cold": {
                "queries": self.cold_queries,
                "time_seconds": self.cold_time_seconds,
            },
            "edits": [edit.to_dict() for edit in self.edits],
            "safe": self.safe,
        }


def incremental_rows(names: Optional[List[str]] = None,
                     programs_dir: Optional[pathlib.Path] = None
                     ) -> List[IncrementalRow]:
    """Replay the scripted edit sequence per benchmark through a workspace.

    Each benchmark gets a fresh :class:`repro.Workspace` (cold solver) so
    the cold-open numbers are comparable across runs; the per-edit numbers
    then show what the incremental machinery saves inside one editing loop.
    """
    rows: List[IncrementalRow] = []
    for name in (names or BENCHMARKS):
        source = source_of(name, programs_dir)
        uri = f"{name}.rsc"
        workspace = Workspace(CheckConfig())
        cold = workspace.open(uri, source)
        row = IncrementalRow(
            name=name,
            cold_queries=cold.stats.queries if cold.stats else 0,
            cold_time_seconds=cold.time_seconds)
        for label, text in scripted_edits(name, source):
            result = workspace.update(uri, text)
            solve = result.solve_stats
            row.edits.append(IncrementalEdit(
                label=label,
                queries=result.stats.queries if result.stats else 0,
                time_seconds=result.time_seconds,
                warm=bool(solve and solve.warm_starts),
                declarations_rechecked=(solve.declarations_rechecked
                                        if solve else 0),
                declarations_reused=solve.declarations_reused if solve else 0,
                safe=result.ok))
        rows.append(row)
    return rows


#: Schema identifier stamped into incremental reports.
INCREMENTAL_REPORT_SCHEMA = "repro-bench-incremental/1"


def incremental_report(rows: List[IncrementalRow]) -> dict:
    """The machine-readable report dumped as ``BENCH_incremental.json``."""
    body_total = sum(r.body_edit.queries for r in rows if r.body_edit)
    return {
        "schema": INCREMENTAL_REPORT_SCHEMA,
        "benchmarks": {row.name: row.to_dict() for row in rows},
        "totals": {
            "cold_queries": sum(r.cold_queries for r in rows),
            "body_edit_queries": body_total,
        },
    }


def format_incremental(rows: List[IncrementalRow]) -> str:
    """The edit-recheck table printed by ``repro bench incremental``."""
    lines = [
        "Incremental re-check: cold open vs scripted edits "
        "(comment-only / one body / revert)",
        "Benchmark        Cold-q  Comment-q  Body-q  Saved%  Re/Reused  "
        "Cold(s)  Body(s)",
        "-" * 82,
    ]
    tot_cold = tot_body = 0
    for row in rows:
        by_label = {edit.label: edit for edit in row.edits}
        comment = by_label.get("comment")
        body = by_label.get("body")
        saved = (100 * (1 - body.queries / row.cold_queries)
                 if body and row.cold_queries else 0.0)
        rechecked = body.declarations_rechecked if body else 0
        reused = body.declarations_reused if body else 0
        lines.append(
            f"{row.name:15s} {row.cold_queries:7d} "
            f"{comment.queries if comment else 0:10d} "
            f"{body.queries if body else 0:7d} {saved:6.1f} "
            f"{rechecked:4d}/{reused:<4d} "
            f"{row.cold_time_seconds:8.2f} "
            f"{body.time_seconds if body else 0.0:8.2f}")
        tot_cold += row.cold_queries
        tot_body += body.queries if body else 0
    lines.append("-" * 82)
    saved = 100 * (1 - tot_body / tot_cold) if tot_cold else 0.0
    lines.append(f"{'TOTAL':15s} {tot_cold:7d} {'':10s} {tot_body:7d} "
                 f"{saved:6.1f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# module-split benchmarks (`repro bench modules`)
# ---------------------------------------------------------------------------

#: Benchmark ports that exist as multi-module splits under
#: ``benchmarks/modules/<name>/``.
MODULE_BENCHMARKS = ["d3-arrays", "splay"]

#: Body-only edit per module benchmark: (module file, function to edit).
#: Must re-check exactly one module — the edit stops at the module boundary.
MODULE_BODY_EDITS: Dict[str, tuple] = {
    "d3-arrays": ("extrema.rsc", "min"),
    "splay": ("stats.rsc", "findMax"),
}

#: Signature edit per module benchmark: (module file, old line, new line).
#: Rewrites an exported alias to an equivalent-but-different refinement, so
#: the interface fingerprint moves, every transitive dependent re-checks,
#: and the project still verifies.
MODULE_SIG_EDITS: Dict[str, tuple] = {
    "d3-arrays": ("types.rsc",
                  "export type NEArray<T> = {v: T[] | 0 < len(v)};",
                  "export type NEArray<T> = {v: T[] | 1 <= len(v)};"),
    "splay": ("types.rsc",
              "export type nat = {v: number | 0 <= v};",
              "export type nat = {v: number | v >= 0};"),
}


def default_modules_dir() -> pathlib.Path:
    """Locate ``benchmarks/modules`` (env override, cwd, then repo root)."""
    env = os.environ.get("RSC_BENCH_MODULES")
    candidates = [pathlib.Path(env)] if env else []
    candidates.append(pathlib.Path.cwd() / "benchmarks" / "modules")
    candidates.append(pathlib.Path(__file__).resolve().parents[2]
                      / "benchmarks" / "modules")
    for candidate in candidates:
        if candidate.is_dir():
            return candidate
    raise FileNotFoundError(
        "cannot locate the module benchmarks directory; set "
        "RSC_BENCH_MODULES or run from the repository root")


@dataclass
class ModulesRow:
    """Cold project build vs scripted module edits for one split port."""

    name: str
    modules: int
    batches: int
    cold_queries: int
    cold_time_seconds: float
    body_module: str = ""
    body_rechecked: int = 0
    body_queries: int = 0
    body_warm: bool = False
    sig_module: str = ""
    sig_rechecked: int = 0
    sig_queries: int = 0
    safe: bool = True

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "modules": self.modules,
            "batches": self.batches,
            "cold": {
                "queries": self.cold_queries,
                "time_seconds": self.cold_time_seconds,
            },
            "body_edit": {
                "module": self.body_module,
                "rechecked": self.body_rechecked,
                "queries": self.body_queries,
                "warm": self.body_warm,
            },
            "sig_edit": {
                "module": self.sig_module,
                "rechecked": self.sig_rechecked,
                "queries": self.sig_queries,
            },
            "safe": self.safe,
        }


def modules_rows(names: Optional[List[str]] = None,
                 modules_dir: Optional[pathlib.Path] = None
                 ) -> List[ModulesRow]:
    """Replay the module-edit scenario per split benchmark.

    For each project: a cold build through a fresh
    :class:`repro.project.ProjectWorkspace`, then a body-only edit of one
    leaf dependency (must re-check exactly that module, warm-started) and a
    signature edit of the shared types module (must re-check its transitive
    dependents, still verifying).
    """
    from repro.project.workspace import ProjectWorkspace

    directory = modules_dir or default_modules_dir()
    rows: List[ModulesRow] = []
    for name in (names or MODULE_BENCHMARKS):
        root = directory / name
        if not root.is_dir():
            raise FileNotFoundError(f"no module benchmark at {root}")
        workspace = ProjectWorkspace(root=root)
        cold = workspace.check()
        row = ModulesRow(
            name=name, modules=cold.num_modules, batches=cold.num_batches,
            cold_queries=cold.stats.queries,
            cold_time_seconds=cold.time_seconds,
            safe=cold.ok)

        body_file, function = MODULE_BODY_EDITS[name]
        body_path = root / body_file
        edited = edit_function_body(body_path.read_text(), function)
        update = workspace.update(body_path, edited)
        edited_result = update.results[str(body_path.resolve())]
        solve = edited_result.solve_stats
        row.body_module = body_file
        row.body_rechecked = len(update.rechecked)
        row.body_queries = update.queries
        row.body_warm = bool(solve and solve.warm_starts)
        row.safe = row.safe and update.ok

        sig_file, old_line, new_line = MODULE_SIG_EDITS[name]
        sig_path = root / sig_file
        source = sig_path.read_text()
        if old_line not in source:
            raise ValueError(f"{name}: signature-edit anchor not found "
                             f"in {sig_file}")
        update = workspace.update(sig_path, source.replace(old_line, new_line))
        row.sig_module = sig_file
        row.sig_rechecked = len(update.rechecked)
        row.sig_queries = update.queries
        row.safe = row.safe and update.ok and update.summary_changed
        rows.append(row)
    return rows


#: Schema identifier stamped into module-bench reports.
MODULES_REPORT_SCHEMA = "repro-bench-modules/1"


def modules_report(rows: List[ModulesRow]) -> dict:
    """The machine-readable report dumped as ``BENCH_modules.json``."""
    return {
        "schema": MODULES_REPORT_SCHEMA,
        "benchmarks": {row.name: row.to_dict() for row in rows},
        "totals": {
            "cold_queries": sum(r.cold_queries for r in rows),
            "body_edit_queries": sum(r.body_queries for r in rows),
            "sig_edit_queries": sum(r.sig_queries for r in rows),
        },
    }


def format_modules(rows: List[ModulesRow]) -> str:
    """The table printed by ``repro bench modules``."""
    lines = [
        "Module-graph re-check: cold build vs body-only and signature edits",
        "Project          Mods  Batches  Cold-q  Body-re  Body-q  Warm  "
        "Sig-re  Sig-q",
        "-" * 78,
    ]
    for row in rows:
        lines.append(
            f"{row.name:15s} {row.modules:5d} {row.batches:8d} "
            f"{row.cold_queries:7d} {row.body_rechecked:8d} "
            f"{row.body_queries:7d} {'yes' if row.body_warm else 'no':>5s} "
            f"{row.sig_rechecked:7d} {row.sig_queries:6d}")
    lines.append("-" * 78)
    lines.append(
        f"{'TOTAL':15s} {sum(r.modules for r in rows):5d} {'':8s} "
        f"{sum(r.cold_queries for r in rows):7d} "
        f"{sum(r.body_rechecked for r in rows):8d} "
        f"{sum(r.body_queries for r in rows):7d} {'':5s} "
        f"{sum(r.sig_rechecked for r in rows):7d} "
        f"{sum(r.sig_queries for r in rows):6d}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# persistent-store benchmarks (`repro bench store`)
# ---------------------------------------------------------------------------


@dataclass
class StoreRow:
    """Cold-process vs store-warm numbers for one benchmark.

    ``kind`` is ``"file"`` (single-file port through a fresh
    :class:`Session` per run) or ``"project"`` (module split through
    :func:`repro.project.build.check_project`).  The warm run is a *fresh*
    session/build against the store the cold run populated — exactly the
    cross-process replay scenario — and must issue **zero** SMT queries and
    zero SAT searches while producing byte-identical diagnostics and kappa
    solutions (``identical``).
    """

    name: str
    kind: str
    cold_queries: int
    cold_sat_calls: int
    cold_time_seconds: float
    warm_queries: int
    warm_sat_calls: int
    warm_time_seconds: float
    identical: bool
    safe: bool

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "cold": {
                "queries": self.cold_queries,
                "sat_calls": self.cold_sat_calls,
                "time_seconds": self.cold_time_seconds,
            },
            "warm": {
                "queries": self.warm_queries,
                "sat_calls": self.warm_sat_calls,
                "time_seconds": self.warm_time_seconds,
            },
            "identical": self.identical,
            "safe": self.safe,
        }


def _project_verdicts(result) -> list:
    return [_comparable_verdict(r) for r in result.results]


def store_rows(names: Optional[List[str]] = None,
               programs_dir: Optional[pathlib.Path] = None,
               modules_dir: Optional[pathlib.Path] = None,
               store_dir: Optional[pathlib.Path] = None) -> List[StoreRow]:
    """Run every port cold then store-warm against one persistent store.

    Each benchmark's cold run populates a store (a throwaway temporary
    directory unless ``store_dir`` pins one), then a completely fresh
    session — new solver, new caches, nothing shared but the store —
    re-checks the identical sources.  The module splits go through the
    project build the same way.
    """
    import shutil
    import tempfile
    from repro.project.build import check_project

    root = pathlib.Path(store_dir) if store_dir else \
        pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    rows: List[StoreRow] = []
    try:
        config = CheckConfig(store_path=str(root))
        for name in (names or BENCHMARKS):
            source = source_of(name, programs_dir)
            filename = f"{name}.rsc"
            cold = Session(config).check_source(source, filename=filename)
            warm = Session(config).check_source(source, filename=filename)
            rows.append(StoreRow(
                name=name, kind="file",
                cold_queries=cold.stats.queries if cold.stats else 0,
                cold_sat_calls=cold.stats.sat_calls if cold.stats else 0,
                cold_time_seconds=cold.time_seconds,
                warm_queries=warm.stats.queries if warm.stats else 0,
                warm_sat_calls=warm.stats.sat_calls if warm.stats else 0,
                warm_time_seconds=warm.time_seconds,
                identical=_comparable_verdict(cold)
                == _comparable_verdict(warm),
                safe=cold.ok and warm.ok))
        module_names = [n for n in (names or MODULE_BENCHMARKS)
                        if n in MODULE_BENCHMARKS]
        for name in module_names:
            project_root = (modules_dir or default_modules_dir()) / name
            if not project_root.is_dir():
                raise FileNotFoundError(f"no module benchmark at "
                                        f"{project_root}")
            cold = check_project(project_root, config=config)
            warm = check_project(project_root, config=config)
            rows.append(StoreRow(
                name=f"{name}-modules", kind="project",
                cold_queries=cold.stats.queries,
                cold_sat_calls=cold.stats.sat_calls,
                cold_time_seconds=cold.time_seconds,
                warm_queries=warm.stats.queries,
                warm_sat_calls=warm.stats.sat_calls,
                warm_time_seconds=warm.time_seconds,
                identical=_project_verdicts(cold) == _project_verdicts(warm),
                safe=cold.ok and warm.ok))
    finally:
        if store_dir is None:
            shutil.rmtree(root, ignore_errors=True)
    return rows


#: Schema identifier stamped into persistent-store reports.
STORE_REPORT_SCHEMA = "repro-bench-store/1"


def store_report(rows: List[StoreRow]) -> dict:
    """The machine-readable report dumped as ``BENCH_store.json``."""
    return {
        "schema": STORE_REPORT_SCHEMA,
        "benchmarks": {row.name: row.to_dict() for row in rows},
        "totals": {
            "cold_queries": sum(r.cold_queries for r in rows),
            "cold_sat_calls": sum(r.cold_sat_calls for r in rows),
            "warm_queries": sum(r.warm_queries for r in rows),
            "warm_sat_calls": sum(r.warm_sat_calls for r in rows),
            "cold_time_seconds": sum(r.cold_time_seconds for r in rows),
            "warm_time_seconds": sum(r.warm_time_seconds for r in rows),
        },
    }


def format_store(rows: List[StoreRow]) -> str:
    """The table printed by ``repro bench store``."""
    lines = [
        "Persistent store: cold process vs store-warm fresh process",
        "Benchmark            Kind     Cold-q  Cold-sat  Warm-q  Warm-sat  "
        "Same  Cold(s)  Warm(s)",
        "-" * 88,
    ]
    tot_cq = tot_cs = tot_wq = tot_ws = 0
    tot_ct = tot_wt = 0.0
    for row in rows:
        lines.append(
            f"{row.name:20s} {row.kind:8s} {row.cold_queries:6d} "
            f"{row.cold_sat_calls:9d} {row.warm_queries:7d} "
            f"{row.warm_sat_calls:9d} "
            f"{'yes' if row.identical else 'NO':>5s} "
            f"{row.cold_time_seconds:8.2f} {row.warm_time_seconds:8.2f}")
        tot_cq += row.cold_queries
        tot_cs += row.cold_sat_calls
        tot_wq += row.warm_queries
        tot_ws += row.warm_sat_calls
        tot_ct += row.cold_time_seconds
        tot_wt += row.warm_time_seconds
    lines.append("-" * 88)
    lines.append(f"{'TOTAL':20s} {'':8s} {tot_cq:6d} {tot_cs:9d} "
                 f"{tot_wq:7d} {tot_ws:9d} {'':5s} {tot_ct:8.2f} "
                 f"{tot_wt:8.2f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# check-service load generator (`repro bench serve`)
# ---------------------------------------------------------------------------

#: Benchmark ports the serve load-generator replays; client ``i`` edits
#: ``SERVE_BENCHMARKS[i % len]`` under its own tenant.
SERVE_BENCHMARKS = ["splay", "d3-arrays", "richards", "transducers"]


@dataclass
class ServeClientResult:
    """What one concurrent editing client observed."""

    tenant: str
    benchmark: str
    requests: int = 0
    checks_ok: int = 0
    cancelled: int = 0
    backpressure: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    identical: bool = False
    safe: bool = False
    error: Optional[str] = None

    def to_dict(self) -> dict:
        from repro.obs.metrics import percentile
        return {
            "tenant": self.tenant,
            "benchmark": self.benchmark,
            "requests": self.requests,
            "checks_ok": self.checks_ok,
            "cancelled": self.cancelled,
            "backpressure": self.backpressure,
            "p50_ms": percentile(self.latencies_ms, 50.0),
            "p99_ms": percentile(self.latencies_ms, 99.0),
            "identical": self.identical,
            "safe": self.safe,
            "error": self.error,
        }


@dataclass
class ServeLoadResult:
    """The aggregate of one ``repro bench serve`` run."""

    clients: int
    edit_rate: float
    wall_seconds: float
    rows: List[ServeClientResult] = field(default_factory=list)
    server_stats: dict = field(default_factory=dict)

    @property
    def latencies_ms(self) -> List[float]:
        return [ms for row in self.rows for ms in row.latencies_ms]

    @property
    def checks_ok(self) -> int:
        return sum(row.checks_ok for row in self.rows)

    @property
    def cancelled_queued(self) -> int:
        return int(self.server_stats.get("totals", {})
                   .get("cancelled_queued", 0))

    @property
    def cancelled_inflight(self) -> int:
        return int(self.server_stats.get("totals", {})
                   .get("cancelled_inflight", 0))

    @property
    def cancelled(self) -> int:
        return self.cancelled_queued + self.cancelled_inflight

    @property
    def throughput_cps(self) -> float:
        return self.checks_ok / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def identical(self) -> bool:
        return all(row.identical for row in self.rows)

    @property
    def safe(self) -> bool:
        return all(row.safe for row in self.rows)

    @property
    def ok(self) -> bool:
        """Load run acceptance: every client's diagnostics byte-identical
        to its sequential replay, every verdict safe, and at least one
        check observably cancelled by a superseding edit."""
        return self.identical and self.safe and self.cancelled >= 1


def _replay_sequentially(uri: str, transcript: List[tuple],
                         config: Optional[CheckConfig] = None) -> bool:
    """Re-run one client's successful edit texts through a fresh sequential
    workspace; True iff every diagnostics list matches byte-for-byte."""
    workspace = Workspace(config or CheckConfig())
    for index, (text, diagnostics) in enumerate(transcript):
        if index == 0:
            result = workspace.open(uri, text)
        else:
            result = workspace.update(uri, text)
        if [d.to_dict() for d in result.diagnostics] != diagnostics:
            return False
    return True


def _run_serve_client(host: str, port: int, name: str, source: str,
                      edit_rate: float, row: ServeClientResult,
                      config: Optional[CheckConfig] = None) -> None:
    """One editing client: cold check, paced scripted edits, then a
    pipelined superseding pair, then a sequential-replay comparison."""
    import time as _time

    from repro.client import Client
    from repro.service.protocol import ProtocolError

    uri = f"{name}.rsc"
    period = 1.0 / edit_rate
    transcript: List[tuple] = []  # (text, diagnostics) of served checks
    safe = True
    try:
        with Client.connect(host, port, tenant=row.tenant,
                            timeout=600) as client:
            def timed(method: str, text: str) -> None:
                nonlocal safe
                row.requests += 1
                start = _time.perf_counter()
                payload = getattr(client, method)(uri, text)
                row.latencies_ms.append(
                    (_time.perf_counter() - start) * 1000.0)
                row.checks_ok += 1
                safe = safe and payload.ok
                transcript.append((text, payload.diagnostics))

            timed("check", source)
            for _label, text in scripted_edits(name, source):
                _time.sleep(period)
                timed("update", text)

            # The superseding pair: two pipelined updates of the same URI.
            # The second obsoletes the first — queued (removed before it
            # starts) or in-flight (cancellation token fired mid-check).
            probe = edit_function_body(source, EDIT_TARGETS[name], marker=1)
            first = client.submit("update", uri=uri, text=probe)
            second = client.submit("update", uri=uri, text=source)
            row.requests += 2
            for request_id, text in ((first, probe), (second, source)):
                response = client.wait(request_id)
                if response.ok:
                    row.checks_ok += 1
                    payload = response.result or {}
                    safe = safe and bool(payload.get("ok"))
                    transcript.append((text, payload.get("diagnostics", [])))
                elif response.error_code == "cancelled":
                    row.cancelled += 1
                elif response.error_code == "backpressure":
                    row.backpressure += 1
                else:
                    raise ProtocolError(response.error_code or "?",
                                        response.error_message or "?")
        row.identical = _replay_sequentially(uri, transcript, config)
        row.safe = safe
    except Exception as exc:  # noqa: BLE001 — one client's failure must
        # surface in the report, not kill the other load threads.
        row.error = f"{type(exc).__name__}: {exc}"
        row.identical = False
        row.safe = False


def serve_load(clients: int = 4, edit_rate: float = 2.0,
               programs_dir: Optional[pathlib.Path] = None,
               config: Optional[CheckConfig] = None) -> ServeLoadResult:
    """Load-test the socket server with concurrent editing clients.

    Starts an in-process :class:`repro.service.server.ServerThread`, points
    ``clients`` threads at it (each under its own tenant, replaying its
    benchmark's scripted edit sequence at ``edit_rate`` edits/second, plus
    one pipelined superseding pair), then collects the server's ``stats``
    and compares every client's served diagnostics against a sequential
    single-client replay.
    """
    import threading
    import time as _time

    from repro.client import Client
    from repro.service.server import ServerThread

    config = config or CheckConfig()
    rows = [ServeClientResult(
                tenant=f"client-{index}",
                benchmark=SERVE_BENCHMARKS[index % len(SERVE_BENCHMARKS)])
            for index in range(clients)]
    sources = {row.benchmark: source_of(row.benchmark, programs_dir)
               for row in rows}
    start = _time.perf_counter()
    with ServerThread(config) as server:
        threads = [
            threading.Thread(
                target=_run_serve_client,
                args=(server.host, server.port, row.benchmark,
                      sources[row.benchmark], edit_rate, row, config),
                name=row.tenant)
            for row in rows]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = _time.perf_counter() - start
        with Client.connect(server.host, server.port) as control:
            stats = control.stats()
            control.shutdown()
    return ServeLoadResult(clients=clients, edit_rate=edit_rate,
                           wall_seconds=wall, rows=rows,
                           server_stats=stats.to_json())


#: Schema identifier stamped into serve-load reports.
SERVE_REPORT_SCHEMA = "repro-bench-serve/1"


def serve_report(load: ServeLoadResult) -> dict:
    """The machine-readable report dumped as ``BENCH_serve.json``."""
    from repro.obs.metrics import percentile
    return {
        "schema": SERVE_REPORT_SCHEMA,
        "clients": load.clients,
        "edit_rate": load.edit_rate,
        "wall_seconds": load.wall_seconds,
        "checks_ok": load.checks_ok,
        "cancelled_queued": load.cancelled_queued,
        "cancelled_inflight": load.cancelled_inflight,
        "p50_ms": percentile(load.latencies_ms, 50.0),
        "p99_ms": percentile(load.latencies_ms, 99.0),
        "throughput_cps": load.throughput_cps,
        "identical": load.identical,
        "safe": load.safe,
        "tenants": {row.tenant: row.to_dict() for row in load.rows},
        "server": load.server_stats.get("totals", {}),
    }


def format_serve(load: ServeLoadResult) -> str:
    """The table printed by ``repro bench serve``."""
    from repro.obs.metrics import percentile
    lines = [
        f"Check service: {load.clients} concurrent clients x "
        f"{load.edit_rate:g} edits/s (supersede pair per client)",
        "Tenant       Benchmark        Reqs  OK  Cancel  p50(ms)  p99(ms)  "
        "Same  Safe",
        "-" * 78,
    ]
    for row in load.rows:
        lines.append(
            f"{row.tenant:12s} {row.benchmark:15s} {row.requests:5d} "
            f"{row.checks_ok:3d} {row.cancelled:7d} "
            f"{percentile(row.latencies_ms, 50.0):8.1f} "
            f"{percentile(row.latencies_ms, 99.0):8.1f} "
            f"{'yes' if row.identical else 'NO':>5s} "
            f"{'yes' if row.safe else 'NO':>5s}"
            + (f"  [{row.error}]" if row.error else ""))
    lines.append("-" * 78)
    lines.append(
        f"{'TOTAL':12s} {'':15s} {sum(r.requests for r in load.rows):5d} "
        f"{load.checks_ok:3d} {load.cancelled:7d} "
        f"{percentile(load.latencies_ms, 50.0):8.1f} "
        f"{percentile(load.latencies_ms, 99.0):8.1f}")
    lines.append(
        f"cancelled: {load.cancelled_queued} queued + "
        f"{load.cancelled_inflight} in-flight; throughput "
        f"{load.throughput_cps:.2f} checks/s over {load.wall_seconds:.2f}s; "
        f"diagnostics identical to sequential replay: "
        f"{'yes' if load.identical else 'NO'}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# shared cache fleet (`repro bench cache`)
# ---------------------------------------------------------------------------

#: Fast subset the fault-injection phase replays (the point is exercising
#: the degraded paths, not re-timing the whole suite).
FAULT_BENCHMARKS = ["tsc-checker", "d3-arrays"]


@dataclass
class CacheWorkerRow:
    """One fleet worker: a fresh ``repro check`` subprocess sharing the
    cache server.  ``role`` is ``"cold"`` (first worker, populates the
    server) or ``"warm-N"`` (must replay with zero queries and zero SAT
    searches)."""

    role: str
    queries: int = 0
    sat_calls: int = 0
    time_seconds: float = 0.0
    identical: bool = False
    safe: bool = False
    store: dict = field(default_factory=dict)
    error: str = ""

    def to_dict(self) -> dict:
        return {
            "role": self.role,
            "queries": self.queries,
            "sat_calls": self.sat_calls,
            "time_seconds": self.time_seconds,
            "identical": self.identical,
            "safe": self.safe,
            "store": self.store,
            "error": self.error,
        }


@dataclass
class CacheFleetResult:
    """What ``repro bench cache`` measured and asserted.

    The contract: N fresh worker processes sharing one cache server are
    byte-identical to an in-process sequential replay, the warm workers
    issue zero fixpoint queries and zero SAT searches, and the whole
    fleet's SAT total equals the one cold worker's — shared caching makes
    fleet cost independent of fleet size.  The fault phase re-runs two
    workers against a server that drops, delays and corrupts responses
    and requires the same verdicts with the degradation *counted*.
    """

    workers: int
    names: List[str]
    rows: List[CacheWorkerRow] = field(default_factory=list)
    server: dict = field(default_factory=dict)
    fault: Optional[dict] = None

    @property
    def cold_row(self) -> Optional[CacheWorkerRow]:
        return next((r for r in self.rows if r.role == "cold"), None)

    @property
    def identical(self) -> bool:
        return bool(self.rows) and all(r.identical and not r.error
                                       for r in self.rows)

    @property
    def safe(self) -> bool:
        return bool(self.rows) and all(r.safe for r in self.rows)

    @property
    def warm_zero(self) -> bool:
        warm = [r for r in self.rows if r.role != "cold"]
        return bool(warm) and all(r.queries == 0 and r.sat_calls == 0
                                  for r in warm)

    @property
    def fleet_sat_calls(self) -> int:
        return sum(r.sat_calls for r in self.rows)

    @property
    def sat_budget_ok(self) -> bool:
        """The fleet's entire SAT spend is exactly one cold worker's."""
        cold = self.cold_row
        return cold is not None and self.fleet_sat_calls == cold.sat_calls

    @property
    def fault_ok(self) -> bool:
        if self.fault is None:
            return True
        return bool(self.fault.get("identical")
                    and self.fault.get("safe")
                    and self.fault.get("degraded_ops", 0) > 0
                    and self.fault.get("injected_ops", 0) > 0)

    @property
    def ok(self) -> bool:
        return (self.identical and self.safe and self.warm_zero
                and self.sat_budget_ok and self.fault_ok)


def _sequential_verdicts(paths: List[str]) -> list:
    """The reference: one fresh in-process session, no store, JSON-shaped
    so it compares byte-for-byte with a worker subprocess's report."""
    import json as _json
    batch = Session(CheckConfig()).check_files(paths)
    return _json.loads(_json.dumps(
        [_comparable_verdict(r) for r in batch.results]))


def _worker_verdicts(report: dict) -> list:
    return [[f.get("diagnostics", []), f.get("kappas", {})]
            for f in report.get("files", [])]


def _run_cache_worker(role: str, paths: List[str], store_url: str,
                      reference: list) -> CacheWorkerRow:
    """One fresh ``repro check --format json`` subprocess against the
    shared server; nothing but the store URL connects it to this process."""
    import json as _json
    import subprocess
    import sys

    src_dir = str(pathlib.Path(__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_STORE", None)
    # A fleet run under REPRO_TRACE=dir/ pins the parent's trace id on
    # every worker, so their per-pid dumps (and this process's own spans)
    # merge into one trace: `repro trace merge dir/trace-*.json`.
    from repro.obs.trace import current_trace_id
    trace_id = current_trace_id()
    if env.get("REPRO_TRACE") and trace_id and "REPRO_TRACE_ID" not in env:
        env["REPRO_TRACE_ID"] = trace_id
    row = CacheWorkerRow(role=role)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "check", "--format", "json",
         "--store", store_url, *paths],
        capture_output=True, text=True, env=env, timeout=600)
    if proc.returncode not in (0, 1):
        row.error = (f"worker exited {proc.returncode}: "
                     f"{proc.stderr.strip()[:200]}")
        return row
    try:
        report = _json.loads(proc.stdout)
    except ValueError as exc:
        row.error = f"unparseable worker output: {exc}"
        return row
    stats = report.get("solver_stats") or {}
    row.queries = int(stats.get("queries", 0))
    row.sat_calls = int(stats.get("sat_calls", 0))
    row.time_seconds = float(report.get("time_seconds", 0.0))
    row.safe = bool(report.get("ok"))
    row.store = report.get("store") or {}
    row.identical = _worker_verdicts(report) == reference
    return row


def _bench_paths(names: List[str],
                 programs_dir: Optional[pathlib.Path]) -> List[str]:
    base = programs_dir or default_programs_dir()
    paths = [str(base / f"{name}.rsc") for name in names]
    for path in paths:
        if not pathlib.Path(path).is_file():
            raise FileNotFoundError(f"no benchmark program at {path}")
    return paths


def cache_fleet(workers: int = 3, names: Optional[List[str]] = None,
                programs_dir: Optional[pathlib.Path] = None,
                fault_names: Optional[List[str]] = None) -> CacheFleetResult:
    """Run the shared-cache fleet scenario end to end.

    Phase 1: start a cache server over a throwaway store, run one cold
    worker subprocess (populates the server), then ``workers - 1`` warm
    worker subprocesses concurrently — every one a fresh process whose only
    connection to the others is ``remote://`` pointing at the server.

    Phase 2 (fault injection): a fresh server configured to drop every 3rd,
    delay every 4th and corrupt every 5th data response serves two workers
    over a fast benchmark subset; their verdicts must still match the
    sequential reference, with the degradation visible in the counters.
    """
    import shutil
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from repro.store.remote import RemoteStoreBackend
    from repro.store.server import FaultPlan, StoreServerThread

    names = list(names or BENCHMARKS)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise ValueError(f"unknown benchmark(s): {', '.join(unknown)}")
    paths = _bench_paths(names, programs_dir)
    reference = _sequential_verdicts(paths)
    result = CacheFleetResult(workers=workers, names=names)

    root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        with StoreServerThread(root=root) as server:
            url = f"remote://127.0.0.1:{server.port}"
            result.rows.append(
                _run_cache_worker("cold", paths, url, reference))
            warm_count = max(0, workers - 1)
            with ThreadPoolExecutor(max_workers=max(1, warm_count)) as pool:
                futures = [
                    pool.submit(_run_cache_worker, f"warm-{i + 1}", paths,
                                url, reference)
                    for i in range(warm_count)]
                result.rows.extend(f.result() for f in futures)
            probe = RemoteStoreBackend(f"127.0.0.1:{server.port}")
            result.server = probe.ping()
            probe.shutdown()

        fault_names = [n for n in (fault_names or FAULT_BENCHMARKS)
                       if n in names] or names[:1]
        fault_paths = _bench_paths(fault_names, programs_dir)
        fault_reference = _sequential_verdicts(fault_paths)
        plan = FaultPlan(drop_every=3, delay_every=4, corrupt_every=5,
                         delay_seconds=0.02)
        fault_root = tempfile.mkdtemp(prefix="repro-bench-cache-fault-")
        try:
            with StoreServerThread(root=fault_root, faults=plan) as server:
                url = (f"remote://127.0.0.1:{server.port}"
                       "?retries=1&timeout=10")
                fault_rows = [
                    _run_cache_worker("fault-cold", fault_paths, url,
                                      fault_reference),
                    _run_cache_worker("fault-warm", fault_paths, url,
                                      fault_reference),
                ]
                probe = RemoteStoreBackend(f"127.0.0.1:{server.port}")
                fault_server = probe.ping()
                probe.shutdown()
        finally:
            shutil.rmtree(fault_root, ignore_errors=True)
        degraded = 0
        for row in fault_rows:
            backend = row.store.get("backend", {})
            degraded += int(backend.get("remote_errors", 0))
            degraded += int(backend.get("degraded_gets", 0))
            degraded += int(backend.get("degraded_puts", 0))
        injected = fault_server.get("faults") or {}
        result.fault = {
            "benchmarks": fault_names,
            "plan": {"drop_every": plan.drop_every,
                     "delay_every": plan.delay_every,
                     "corrupt_every": plan.corrupt_every},
            "workers": [row.to_dict() for row in fault_rows],
            "identical": all(r.identical and not r.error
                             for r in fault_rows),
            "safe": all(r.safe for r in fault_rows),
            "degraded_ops": degraded,
            "injected_ops": (int(injected.get("dropped", 0))
                             + int(injected.get("delayed", 0))
                             + int(injected.get("corrupted", 0))),
            "server_faults": injected,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return result


#: Schema identifier stamped into shared-cache fleet reports.
CACHE_REPORT_SCHEMA = "repro-bench-cache/1"


def cache_report(fleet: CacheFleetResult) -> dict:
    """The machine-readable report dumped as ``BENCH_cache.json``."""
    cold = fleet.cold_row
    return {
        "schema": CACHE_REPORT_SCHEMA,
        "workers": fleet.workers,
        "benchmarks": fleet.names,
        "rows": [row.to_dict() for row in fleet.rows],
        "totals": {
            "cold_queries": cold.queries if cold else 0,
            "cold_sat_calls": cold.sat_calls if cold else 0,
            "fleet_sat_calls": fleet.fleet_sat_calls,
            "warm_queries": sum(r.queries for r in fleet.rows
                                if r.role != "cold"),
            "warm_sat_calls": sum(r.sat_calls for r in fleet.rows
                                  if r.role != "cold"),
        },
        "identical": fleet.identical,
        "warm_zero": fleet.warm_zero,
        "sat_budget_ok": fleet.sat_budget_ok,
        "safe": fleet.safe,
        "server": {"requests_served":
                   fleet.server.get("requests_served", 0)},
        "fault": fleet.fault,
        "ok": fleet.ok,
    }


def format_cache(fleet: CacheFleetResult) -> str:
    """The table printed by ``repro bench cache``."""
    lines = [
        f"Shared cache fleet: {fleet.workers} fresh worker processes over "
        f"one cache server ({len(fleet.names)} benchmarks)",
        "Worker      Queries  SAT-calls  Time(s)  Same  Safe",
        "-" * 56,
    ]
    for row in fleet.rows:
        lines.append(
            f"{row.role:11s} {row.queries:7d} {row.sat_calls:10d} "
            f"{row.time_seconds:8.2f} "
            f"{'yes' if row.identical else 'NO':>5s} "
            f"{'yes' if row.safe else 'NO':>5s}"
            + (f"  [{row.error}]" if row.error else ""))
    lines.append("-" * 56)
    cold = fleet.cold_row
    lines.append(
        f"fleet SAT total {fleet.fleet_sat_calls} vs cold worker "
        f"{cold.sat_calls if cold else 0} "
        f"({'within' if fleet.sat_budget_ok else 'OVER'} budget); "
        f"warm workers zero-query: {'yes' if fleet.warm_zero else 'NO'}")
    if fleet.fault is not None:
        fault = fleet.fault
        lines.append(
            f"fault injection over {', '.join(fault['benchmarks'])}: "
            f"verdicts identical: {'yes' if fault['identical'] else 'NO'}; "
            f"degraded ops counted: {fault['degraded_ops']} "
            f"(server injected: {fault['server_faults']})")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# tracing overhead (`repro bench obs`)
# ---------------------------------------------------------------------------

#: Fast subset the overhead measurement replays (the point is the cost of
#: the tracing seams, not re-timing the whole suite).
OBS_BENCHMARKS = ["tsc-checker", "navier-stokes"]

#: No-op span calls timed by the disabled-path microbenchmark.
OBS_NOOP_CALLS = 200_000

#: Schema identifier stamped into tracing-overhead reports.
OBS_REPORT_SCHEMA = "repro-bench-obs/1"


@dataclass
class ObsRow:
    """One benchmark checked twice: tracer disabled, then enabled."""

    name: str
    off_seconds: float = 0.0
    on_seconds: float = 0.0
    events: int = 0
    safe: bool = False
    identical: bool = False

    @property
    def on_overhead_pct(self) -> float:
        """Measured enabled-tracer overhead (noisy; reported, not gated)."""
        if self.off_seconds <= 0.0:
            return 0.0
        return (self.on_seconds - self.off_seconds) / self.off_seconds * 100.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "off_seconds": self.off_seconds,
            "on_seconds": self.on_seconds,
            "events": self.events,
            "on_overhead_pct": self.on_overhead_pct,
            "safe": self.safe,
            "identical": self.identical,
        }


def noop_span_cost(calls: int = OBS_NOOP_CALLS) -> dict:
    """Time the disabled fast path: one ``span()`` call, tracer off.

    This is the only cost an untraced check pays per instrumentation seam,
    so ``per_call_ns`` × the span count of a traced run bounds the
    disabled-tracer overhead — the number CI gates below 2%."""
    import time as _time

    from repro.obs.trace import span, tracer
    t = tracer()
    was_enabled = t.enabled
    t.enabled = False
    start = _time.perf_counter()
    for _ in range(calls):
        with span("bench.noop", "bench"):
            pass
    elapsed = _time.perf_counter() - start
    t.enabled = was_enabled
    return {"calls": calls, "seconds": elapsed,
            "per_call_ns": elapsed / calls * 1e9}


def obs_rows(names: Optional[List[str]] = None,
             programs_dir: Optional[pathlib.Path] = None) -> List[ObsRow]:
    """Check each benchmark twice — tracer off, then on — in fresh
    sessions, asserting byte-identical verdicts."""
    import time as _time

    from repro.obs.trace import tracer
    rows: List[ObsRow] = []
    t = tracer()
    for name in (names or OBS_BENCHMARKS):
        source = source_of(name, programs_dir)
        filename = f"{name}.rsc"
        t.reset()
        start = _time.perf_counter()
        off_result = Session(CheckConfig()).check_source(source,
                                                         filename=filename)
        off_seconds = _time.perf_counter() - start
        t.enable()
        start = _time.perf_counter()
        on_result = Session(CheckConfig()).check_source(source,
                                                        filename=filename)
        on_seconds = _time.perf_counter() - start
        events = len(t.drain()["events"])
        t.reset()
        rows.append(ObsRow(
            name=name, off_seconds=off_seconds, on_seconds=on_seconds,
            events=events, safe=off_result.ok and on_result.ok,
            identical=(_comparable_verdict(off_result)
                       == _comparable_verdict(on_result))))
    return rows


def obs_report(rows: List[ObsRow]) -> dict:
    """The machine-readable report dumped as ``BENCH_obs.json``.

    ``totals.off_overhead_pct`` is the gated number: the no-op span cost
    times the span count of a traced run, as a fraction of the untraced
    wall-clock — what tracing costs every user who never turns it on."""
    noop = noop_span_cost()
    off_total = sum(row.off_seconds for row in rows)
    on_total = sum(row.on_seconds for row in rows)
    events_total = sum(row.events for row in rows)
    off_overhead_pct = 0.0
    if off_total > 0.0:
        off_overhead_pct = (events_total * noop["per_call_ns"] / 1e9
                            / off_total * 100.0)
    return {
        "schema": OBS_REPORT_SCHEMA,
        "noop": noop,
        "rows": [row.to_dict() for row in rows],
        "totals": {
            "off_seconds": off_total,
            "on_seconds": on_total,
            "events": events_total,
            "off_overhead_pct": off_overhead_pct,
            "on_overhead_pct": ((on_total - off_total) / off_total * 100.0
                                if off_total > 0.0 else 0.0),
        },
        "safe": all(row.safe for row in rows),
        "identical": all(row.identical for row in rows),
    }


def format_obs(rows: List[ObsRow]) -> str:
    """The table printed by ``repro bench obs``."""
    report = obs_report(rows)
    noop = report["noop"]
    lines = [
        "Tracing overhead: each benchmark checked with the tracer "
        "disabled, then enabled",
        "Benchmark        Off(s)    On(s)   Spans  On-ovh%  Same  Safe",
        "-" * 62,
    ]
    for row in rows:
        lines.append(
            f"{row.name:15s} {row.off_seconds:7.2f} {row.on_seconds:8.2f} "
            f"{row.events:7d} {row.on_overhead_pct:8.1f} "
            f"{'yes' if row.identical else 'NO':>5s} "
            f"{'yes' if row.safe else 'NO':>5s}")
    lines.append("-" * 62)
    lines.append(
        f"no-op span: {noop['per_call_ns']:.0f} ns/call over "
        f"{noop['calls']} calls; disabled-tracer overhead "
        f"{report['totals']['off_overhead_pct']:.3f}% of untraced "
        f"wall-clock (CI gates < 2%)")
    return "\n".join(lines)


def format_figure7(names: Optional[List[str]] = None,
                   programs_dir: Optional[pathlib.Path] = None) -> str:
    lines = ["Benchmark        LOC  ImpDiff  AllDiff",
             "-" * 40]
    for name in (names or BENCHMARKS):
        loc = count_loc(source_of(name, programs_dir))
        imp, all_diff = CODE_CHANGES[name]
        lines.append(f"{name:15s} {loc:4d} {imp:8d} {all_diff:8d}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# raw-speed benchmarks (`repro bench speed`)
# ---------------------------------------------------------------------------


@dataclass
class SpeedRow:
    """Memoisation-off vs memoisation-on numbers for one benchmark.

    The *baseline* phase checks in the previous engine's configuration:
    :func:`repro.logic.terms.set_memoisation` disabled — every traversal
    (``simplify``, ``free_vars``, ``substitute``, CNF conversion, theory
    verdicts) recomputes from scratch — and
    :func:`repro.smt.lia.set_exact_ints` disabled, running Fourier–Motzkin
    elimination on the historical ``fractions.Fraction`` arithmetic.  The
    *speed* phase re-checks the same source with memoisation on (cold memo
    tables) and integer LIA arithmetic; the reference configuration doubles
    as a differential oracle, since both phases must produce byte-identical
    diagnostics and kappa solutions.

    ``baseline_allocations`` counts term-constructor invocations during the
    baseline phase — exactly the number of fresh objects the pre-hash-cons
    engine allocated, since back then every construction allocated.
    ``speed_allocations`` counts the term objects actually created (intern
    misses) during the speed phase; the acceptance gate requires it to be
    strictly smaller.

    ``kind`` is ``"file"`` (single-file port, fresh :class:`Session` per
    phase) or ``"project"`` (module split through a fresh
    :class:`repro.project.ProjectWorkspace` per phase).  File rows also
    re-check under every worker count in the jobs sweep and assert the
    rank-parallel fixpoint's verdict is byte-identical (``jobs_identical``).
    """

    name: str
    kind: str
    baseline_time_seconds: float
    speed_time_seconds: float
    baseline_allocations: int
    speed_allocations: int
    intern_hit_rate: float
    queries: int
    identical: bool
    jobs_identical: bool
    safe: bool

    @property
    def speedup(self) -> float:
        if self.speed_time_seconds <= 0:
            return 0.0
        return self.baseline_time_seconds / self.speed_time_seconds

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "baseline": {
                "time_seconds": self.baseline_time_seconds,
                "allocations": self.baseline_allocations,
            },
            "speed": {
                "time_seconds": self.speed_time_seconds,
                "allocations": self.speed_allocations,
                "intern_hit_rate": self.intern_hit_rate,
            },
            "speedup": self.speedup,
            "queries": self.queries,
            "identical": self.identical,
            "jobs_identical": self.jobs_identical,
            "safe": self.safe,
        }


def _project_verdict(project) -> list:
    """Byte-level comparable verdict of a whole project build."""
    return sorted((result.filename, _comparable_verdict(result))
                  for result in project.results)


#: Worker counts the speed bench sweeps for the rank-parallel fixpoint
#: identity check (jobs=1 is the speed phase itself).
SPEED_JOBS_SWEEP = (2, 3, 4)


def speed_rows(names: Optional[List[str]] = None,
               programs_dir: Optional[pathlib.Path] = None,
               modules_dir: Optional[pathlib.Path] = None,
               jobs_sweep: tuple = SPEED_JOBS_SWEEP) -> List[SpeedRow]:
    """Check every port twice — reference configuration, then fast — and
    compare.

    Phase order matters for the allocation counters: the baseline phase
    counts constructor *invocations* (what the engine allocated before
    hash-consing existed — memoisation off makes every traversal recompute
    exactly as the old code did), while the speed phase counts intern
    *misses* (objects actually created).  Verdicts must be byte-identical
    between the phases, and — for the single-file ports — across every
    worker count in ``jobs_sweep``.  Both module-split projects run the same
    two phases through fresh project workspaces.

    The fast configuration is always restored on exit, even if a check
    raises.
    """
    from repro.logic.terms import (
        intern_stats,
        reset_intern_stats,
        set_memoisation,
    )
    from repro.project.workspace import ProjectWorkspace
    from repro.smt.lia import set_exact_ints

    rows: List[SpeedRow] = []
    try:
        for name in (names or BENCHMARKS):
            source = source_of(name, programs_dir)
            filename = f"{name}.rsc"
            set_memoisation(False)
            set_exact_ints(False)
            reset_intern_stats()
            baseline = Session(CheckConfig()).check_source(
                source, filename=filename)
            base_stats = intern_stats()
            set_memoisation(True)   # also clears the memo tables
            set_exact_ints(True)
            reset_intern_stats()
            speed = Session(CheckConfig()).check_source(
                source, filename=filename)
            fast_stats = intern_stats()
            verdict = _comparable_verdict(speed)
            jobs_identical = True
            for jobs in jobs_sweep:
                parallel = Session(CheckConfig(jobs=jobs)).check_source(
                    source, filename=filename)
                jobs_identical = (jobs_identical and parallel.ok == speed.ok
                                  and _comparable_verdict(parallel) == verdict)
            rows.append(SpeedRow(
                name=name, kind="file",
                baseline_time_seconds=baseline.time_seconds,
                speed_time_seconds=speed.time_seconds,
                baseline_allocations=base_stats["constructions"],
                speed_allocations=fast_stats["misses"],
                intern_hit_rate=fast_stats["hit_rate"],
                queries=speed.stats.queries if speed.stats else 0,
                identical=_comparable_verdict(baseline) == verdict,
                jobs_identical=jobs_identical,
                safe=baseline.ok and speed.ok))

        directory = modules_dir or default_modules_dir()
        wanted = [n for n in MODULE_BENCHMARKS
                  if names is None or n in names]
        for name in wanted:
            root = directory / name
            if not root.is_dir():
                raise FileNotFoundError(f"no module benchmark at {root}")
            set_memoisation(False)
            set_exact_ints(False)
            reset_intern_stats()
            baseline_build = ProjectWorkspace(root=root).check()
            base_stats = intern_stats()
            set_memoisation(True)
            set_exact_ints(True)
            reset_intern_stats()
            speed_build = ProjectWorkspace(root=root).check()
            fast_stats = intern_stats()
            rows.append(SpeedRow(
                name=f"{name} (project)", kind="project",
                baseline_time_seconds=baseline_build.time_seconds,
                speed_time_seconds=speed_build.time_seconds,
                baseline_allocations=base_stats["constructions"],
                speed_allocations=fast_stats["misses"],
                intern_hit_rate=fast_stats["hit_rate"],
                queries=speed_build.stats.queries,
                identical=(_project_verdict(baseline_build)
                           == _project_verdict(speed_build)),
                jobs_identical=True,
                safe=baseline_build.ok and speed_build.ok))
    finally:
        set_memoisation(True)
        set_exact_ints(True)
    return rows


#: Schema identifier stamped into raw-speed reports.
SPEED_REPORT_SCHEMA = "repro-bench-speed/1"


def speed_report(rows: List[SpeedRow]) -> dict:
    """The machine-readable report dumped as ``BENCH_speed.json``."""
    baseline_time = sum(r.baseline_time_seconds for r in rows)
    speed_time = sum(r.speed_time_seconds for r in rows)
    return {
        "schema": SPEED_REPORT_SCHEMA,
        "benchmarks": {row.name: row.to_dict() for row in rows},
        "totals": {
            "baseline_time_seconds": baseline_time,
            "speed_time_seconds": speed_time,
            "speedup": baseline_time / speed_time if speed_time else 0.0,
            "baseline_allocations": sum(r.baseline_allocations for r in rows),
            "speed_allocations": sum(r.speed_allocations for r in rows),
            "fewer_allocations": all(
                r.speed_allocations < r.baseline_allocations for r in rows),
            "identical": all(r.identical for r in rows),
            "jobs_identical": all(r.jobs_identical for r in rows),
            "safe": all(r.safe for r in rows),
        },
    }


def format_speed(rows: List[SpeedRow]) -> str:
    """The table printed by ``repro bench speed``."""
    lines = [
        "Raw speed: reference engine (no memos, Fraction LIA) vs fast "
        "(memoised, integer LIA)",
        "Benchmark            Base(s)  Fast(s)  Speedup     Alloc(base)  "
        "Alloc(fast)  Hit%  Same  Jobs",
        "-" * 95,
    ]
    for row in rows:
        lines.append(
            f"{row.name:20s} {row.baseline_time_seconds:7.2f} "
            f"{row.speed_time_seconds:8.2f} {row.speedup:7.2f}x "
            f"{row.baseline_allocations:14d} {row.speed_allocations:12d} "
            f"{100 * row.intern_hit_rate:5.1f} "
            f"{'yes' if row.identical else 'NO':>5s} "
            f"{'yes' if row.jobs_identical else 'NO':>5s}")
    lines.append("-" * 95)
    report = speed_report(rows)
    totals = report["totals"]
    lines.append(
        f"{'TOTAL':20s} {totals['baseline_time_seconds']:7.2f} "
        f"{totals['speed_time_seconds']:8.2f} {totals['speedup']:7.2f}x "
        f"{totals['baseline_allocations']:14d} "
        f"{totals['speed_allocations']:12d}")
    return "\n".join(lines)
