"""Benchmark support: regenerating the paper's evaluation tables.

Figure 6 reports, per benchmark: LOC, the number of trivial (T), mutability
(M) and refinement (R) annotations, and the checking time.  Figure 7 reports
the number of changed lines needed to port each benchmark (ImpDiff/AllDiff).

Our ports are written directly in nanoTS, so the annotation counts are
measured from the sources by the same classification the paper uses:

* **T** — trivial annotations: plain TypeScript-style types (no refinement,
  no mutability qualifier),
* **M** — annotations that carry a mutability qualifier (``immutable``,
  ``IArray``/``Array<IM, _>``, ``@Mutable``-style method annotations),
* **R** — annotations whose type mentions a refinement (``{v: ... | ...}``,
  a refined alias such as ``idx<a>``/``grid<w,h>``, or a ghost ``declare``).

The ImpDiff/AllDiff columns of Figure 7 describe the effort of porting the
original JavaScript to RSC; for our nanoTS ports these were recorded while
the ports were written and are stored in :data:`CODE_CHANGES`.

All checking goes through one shared :class:`repro.Session`, so a Figure 6
run amortises a single solver (and its query cache) across all seven
benchmarks — pass an explicit session to :func:`check_benchmark` to control
the lifetime yourself.
"""

from __future__ import annotations

import os
import pathlib
import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import CheckConfig
from repro.core.session import Session

#: Paper's Figure 6 numbers: benchmark -> (LOC, T, M, R, time seconds)
PAPER_FIGURE6: Dict[str, tuple] = {
    "navier-stokes": (366, 3, 18, 39, 473),
    "splay": (206, 18, 2, 0, 6),
    "richards": (304, 61, 5, 17, 7),
    "raytrace": (576, 68, 14, 2, 15),
    "transducers": (588, 138, 13, 11, 12),
    "d3-arrays": (189, 36, 4, 10, 37),
    "tsc-checker": (293, 10, 48, 12, 62),
}

#: Paper's Figure 7 numbers: benchmark -> (LOC, ImpDiff, AllDiff)
PAPER_FIGURE7: Dict[str, tuple] = {
    "navier-stokes": (366, 79, 160),
    "splay": (206, 58, 64),
    "richards": (304, 52, 108),
    "raytrace": (576, 93, 145),
    "transducers": (588, 170, 418),
    "d3-arrays": (189, 8, 110),
    "tsc-checker": (293, 9, 47),
}

#: Code-change counts recorded while porting the benchmarks to nanoTS
#: (important restructurings vs. all changed lines), mirroring Figure 7.
CODE_CHANGES: Dict[str, tuple] = {
    "navier-stokes": (14, 36),
    "splay": (9, 15),
    "richards": (8, 21),
    "raytrace": (10, 22),
    "transducers": (11, 27),
    "d3-arrays": (3, 14),
    "tsc-checker": (4, 16),
}

BENCHMARKS = list(PAPER_FIGURE6.keys())

_REFINEMENT_MARKERS = re.compile(
    r"\{\s*v\s*:|idx<|grid<|okW|okH|len\(|mask\(|impl\(|flagsT|rgb\b|nat\b|pos\b")
_MUTABILITY_MARKERS = re.compile(
    r"\bimmutable\b|\bIArray\b|\bROArray\b|\bUArray\b|Array<\s*(IM|MU|RO|UQ)")


def default_programs_dir() -> pathlib.Path:
    """Locate ``benchmarks/programs`` (env override, cwd, then repo root)."""
    env = os.environ.get("RSC_BENCH_PROGRAMS")
    candidates = [pathlib.Path(env)] if env else []
    candidates.append(pathlib.Path.cwd() / "benchmarks" / "programs")
    candidates.append(pathlib.Path(__file__).resolve().parents[2]
                      / "benchmarks" / "programs")
    for candidate in candidates:
        if candidate.is_dir():
            return candidate
    raise FileNotFoundError(
        "cannot locate the benchmark programs directory; set "
        "RSC_BENCH_PROGRAMS or run from the repository root")


@dataclass
class BenchmarkRow:
    name: str
    loc: int
    trivial: int
    mutability: int
    refinements: int
    time_seconds: float
    errors: int
    safe: bool

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "loc": self.loc,
            "trivial": self.trivial,
            "mutability": self.mutability,
            "refinements": self.refinements,
            "time_seconds": self.time_seconds,
            "errors": self.errors,
            "safe": self.safe,
        }


def source_of(name: str,
              programs_dir: Optional[pathlib.Path] = None) -> str:
    directory = programs_dir or default_programs_dir()
    return (directory / f"{name}.rsc").read_text()


def count_loc(source: str) -> int:
    """Non-comment, non-blank lines (the paper uses cloc the same way)."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            count += 1
    return count


def count_annotations(source: str) -> tuple:
    """Classify every annotation site into (trivial, mutability, refinement).

    Annotation sites are: ``spec``/``declare`` signatures, type alias
    definitions, field declarations, and parameter/return annotations on
    class methods."""
    trivial = mutability = refinements = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        is_annotation = (
            stripped.startswith(("spec ", "declare ", "type "))
            or re.match(r"^(immutable\s+|mutable\s+)?\w+\s*:\s*\S+;?\s*$", stripped)
            or re.search(r"\)\s*:\s*\w+", stripped)
        )
        if not is_annotation:
            continue
        has_refinement = bool(_REFINEMENT_MARKERS.search(stripped))
        has_mutability = bool(_MUTABILITY_MARKERS.search(stripped))
        if stripped.startswith("declare ") or has_refinement:
            refinements += 1
        elif has_mutability:
            mutability += 1
        else:
            trivial += 1
    return trivial, mutability, refinements


_SHARED_SESSION: Optional[Session] = None


def shared_session() -> Session:
    """The module-wide session used when no explicit session is passed.

    One long-lived solver across every benchmark is exactly how Figure 6
    runs are amortised."""
    global _SHARED_SESSION
    if _SHARED_SESSION is None:
        _SHARED_SESSION = Session(CheckConfig())
    return _SHARED_SESSION


def check_benchmark(name: str, session: Optional[Session] = None,
                    programs_dir: Optional[pathlib.Path] = None) -> BenchmarkRow:
    source = source_of(name, programs_dir)
    session = session or shared_session()
    result = session.check_source(source, filename=f"{name}.rsc")
    trivial, mut, refs = count_annotations(source)
    return BenchmarkRow(name=name, loc=count_loc(source), trivial=trivial,
                        mutability=mut, refinements=refs,
                        time_seconds=result.time_seconds,
                        errors=len(result.errors), safe=result.ok)


def figure6_rows(names: Optional[List[str]] = None,
                 session: Optional[Session] = None,
                 programs_dir: Optional[pathlib.Path] = None
                 ) -> List[BenchmarkRow]:
    session = session or shared_session()
    return [check_benchmark(name, session, programs_dir)
            for name in (names or BENCHMARKS)]


def format_figure6(rows: List[BenchmarkRow]) -> str:
    lines = ["Benchmark        LOC    T    M    R   Time(s)  Errors",
             "-" * 58]
    total_loc = total_t = total_m = total_r = 0
    for row in rows:
        lines.append(f"{row.name:15s} {row.loc:4d} {row.trivial:4d} "
                     f"{row.mutability:4d} {row.refinements:4d} "
                     f"{row.time_seconds:8.2f} {row.errors:6d}")
        total_loc += row.loc
        total_t += row.trivial
        total_m += row.mutability
        total_r += row.refinements
    lines.append("-" * 58)
    lines.append(f"{'TOTAL':15s} {total_loc:4d} {total_t:4d} {total_m:4d} "
                 f"{total_r:4d}")
    return "\n".join(lines)


def format_figure7(names: Optional[List[str]] = None,
                   programs_dir: Optional[pathlib.Path] = None) -> str:
    lines = ["Benchmark        LOC  ImpDiff  AllDiff",
             "-" * 40]
    for name in (names or BENCHMARKS):
        loc = count_loc(source_of(name, programs_dir))
        imp, all_diff = CODE_CHANGES[name]
        lines.append(f"{name:15s} {loc:4d} {imp:8d} {all_diff:8d}")
    return "\n".join(lines)
