"""Error and diagnostic types shared across the RSC pipeline.

Every stage of the checker (parsing, SSA conversion, well-formedness,
refinement checking, liquid inference) reports problems through the classes
defined here so that callers get a uniform, location-carrying diagnostic
stream instead of ad-hoc exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class SourceSpan:
    """A region of source text: 1-based line/column of start and end."""

    line: int = 0
    col: int = 0
    end_line: int = 0
    end_col: int = 0
    filename: str = "<input>"

    def __str__(self) -> str:
        if self.line == 0:
            return self.filename
        return f"{self.filename}:{self.line}:{self.col}"

    @staticmethod
    def unknown() -> "SourceSpan":
        return SourceSpan()


class Severity(Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


class ErrorKind(Enum):
    """Classification of diagnostics, used by tests and the bench harness."""

    PARSE = "parse"
    RESOLUTION = "resolution"
    WELLFORMED = "wellformedness"
    SUBTYPE = "subtyping"
    MUTABILITY = "mutability"
    OVERLOAD = "overload"
    CAST = "cast"
    BOUNDS = "bounds"
    INITIALIZATION = "initialization"
    INTERNAL = "internal"


@dataclass
class Diagnostic:
    """A single problem discovered by some phase of the checker."""

    kind: ErrorKind
    message: str
    span: SourceSpan = field(default_factory=SourceSpan.unknown)
    severity: Severity = Severity.ERROR

    def __str__(self) -> str:
        return f"{self.span}: {self.severity.value}: [{self.kind.value}] {self.message}"


class RscError(Exception):
    """Base class for exceptions raised by the RSC implementation."""


class ParseError(RscError):
    """Raised by the lexer/parser on malformed input."""

    def __init__(self, message: str, span: Optional[SourceSpan] = None):
        super().__init__(message)
        self.message = message
        self.span = span or SourceSpan.unknown()

    def __str__(self) -> str:
        return f"{self.span}: parse error: {self.message}"


class SsaError(RscError):
    """Raised when a program cannot be converted to SSA/IRSC form."""


class TypeError_(RscError):
    """Raised for unrecoverable typing problems (most are reported as Diagnostics)."""


class SolverError(RscError):
    """Raised by the SMT substrate on malformed queries."""


class InternalError(RscError):
    """A bug in the checker itself."""


class DiagnosticBag:
    """Accumulates diagnostics produced while checking a program."""

    def __init__(self) -> None:
        self._items: List[Diagnostic] = []

    def add(self, diag: Diagnostic) -> None:
        self._items.append(diag)

    def error(self, kind: ErrorKind, message: str,
              span: Optional[SourceSpan] = None) -> None:
        self.add(Diagnostic(kind, message, span or SourceSpan.unknown(), Severity.ERROR))

    def warning(self, kind: ErrorKind, message: str,
                span: Optional[SourceSpan] = None) -> None:
        self.add(Diagnostic(kind, message, span or SourceSpan.unknown(), Severity.WARNING))

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        for d in diags:
            self.add(d)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self._items if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self._items if d.severity is Severity.WARNING]

    def has_errors(self) -> bool:
        return bool(self.errors)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __str__(self) -> str:
        return "\n".join(str(d) for d in self._items)
