"""Error and diagnostic types shared across the RSC pipeline.

Every stage of the checker (parsing, SSA conversion, well-formedness,
refinement checking, liquid inference) reports problems through the classes
defined here so that callers get a uniform, location-carrying diagnostic
stream instead of ad-hoc exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class SourceSpan:
    """A region of source text: 1-based line/column of start and end."""

    line: int = 0
    col: int = 0
    end_line: int = 0
    end_col: int = 0
    filename: str = "<input>"

    def __str__(self) -> str:
        if self.line == 0:
            return self.filename
        return f"{self.filename}:{self.line}:{self.col}"

    @staticmethod
    def unknown() -> "SourceSpan":
        return SourceSpan()

    def with_filename(self, filename: str) -> "SourceSpan":
        return SourceSpan(self.line, self.col, self.end_line, self.end_col,
                          filename)

    def to_dict(self) -> dict:
        return {"file": self.filename, "line": self.line, "col": self.col,
                "end_line": self.end_line, "end_col": self.end_col}


class Severity(Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


class ErrorKind(Enum):
    """Classification of diagnostics, used by tests and the bench harness."""

    PARSE = "parse"
    RESOLUTION = "resolution"
    WELLFORMED = "wellformedness"
    SUBTYPE = "subtyping"
    MUTABILITY = "mutability"
    OVERLOAD = "overload"
    CAST = "cast"
    BOUNDS = "bounds"
    INITIALIZATION = "initialization"
    MODULE = "module"
    INTERNAL = "internal"


#: Fallback diagnostic code for each :class:`ErrorKind` (used when a call
#: site does not attach a more specific code).
DEFAULT_CODES: Dict[ErrorKind, str] = {
    ErrorKind.PARSE: "RSC-PARSE-001",
    ErrorKind.RESOLUTION: "RSC-RES-001",
    ErrorKind.WELLFORMED: "RSC-WF-001",
    ErrorKind.SUBTYPE: "RSC-SUB-001",
    ErrorKind.MUTABILITY: "RSC-MUT-001",
    ErrorKind.OVERLOAD: "RSC-OVR-001",
    ErrorKind.CAST: "RSC-CAST-001",
    ErrorKind.BOUNDS: "RSC-BND-001",
    ErrorKind.INITIALIZATION: "RSC-INIT-001",
    ErrorKind.MODULE: "RSC-MOD-001",
    ErrorKind.INTERNAL: "RSC-INT-001",
}

#: Stable error-code catalog: code -> (one-line summary, longer explanation).
#: Codes are part of the public API: tools may match on them, so existing
#: codes must never be renumbered (add new ones instead).
ERROR_CATALOG: Dict[str, tuple] = {
    "RSC-PARSE-001": (
        "syntax error",
        "The source file is not well-formed nanoTS and could not be parsed. "
        "The span points at the offending token."),
    "RSC-RES-001": (
        "name resolution failed",
        "A name, member or type could not be resolved in the current scope."),
    "RSC-RES-002": (
        "unbound variable",
        "A variable is used that is neither a parameter, a local, a declared "
        "global nor a known function."),
    "RSC-RES-003": (
        "unknown member",
        "The receiver's type has no field or method with this name."),
    "RSC-RES-004": (
        "unknown class or interface",
        "A `new` expression or type annotation refers to a class that is not "
        "defined (or instantiates an interface)."),
    "RSC-RES-005": (
        "missing signature",
        "A function has no `spec` signature and none could be inferred; its "
        "body is skipped."),
    "RSC-WF-001": (
        "ill-formed type",
        "A type annotation is not well-formed (e.g. a refinement mentions "
        "variables that are not in scope)."),
    "RSC-SUB-001": (
        "subtyping obligation failed",
        "A value flows into a context whose refinement type it cannot be "
        "proven to satisfy."),
    "RSC-SUB-002": (
        "argument does not satisfy parameter type",
        "At a call site, an argument could not be proven to satisfy the "
        "declared (possibly dependent) parameter type."),
    "RSC-SUB-003": (
        "returned expression does not satisfy return type",
        "The value returned by a function body could not be proven to "
        "satisfy the declared return type."),
    "RSC-SUB-004": (
        "initialiser/assignment violates declared type",
        "The right-hand side of a declaration or assignment could not be "
        "proven to satisfy the annotated type."),
    "RSC-SUB-005": (
        "loop or join invariant not preserved",
        "A phi variable at a control-flow join (including loop back-edges) "
        "does not preserve the inferred invariant template."),
    "RSC-MUT-001": (
        "write to immutable field",
        "An `immutable` field may only be assigned inside its class's "
        "constructor."),
    "RSC-MUT-002": (
        "mutation through a non-mutable reference",
        "A field or array element is written through a reference whose "
        "mutability qualifier does not permit writes."),
    "RSC-MUT-003": (
        "receiver mutability violation",
        "A method that requires a mutable (or unique) receiver was invoked "
        "on a reference with weaker mutability."),
    "RSC-OVR-001": (
        "dead-code obligation failed (two-phase overloading)",
        "Under the selected overload this program point must be unreachable, "
        "but the environment could not be proven inconsistent."),
    "RSC-OVR-002": (
        "assertion not provable",
        "The argument of `assert(...)` could not be proven from the current "
        "environment."),
    "RSC-CAST-001": (
        "unsafe downcast",
        "A `<T> e` cast could not be proven safe from the guarding tests on "
        "the value's tag or flag bits."),
    "RSC-BND-001": (
        "array bounds violation",
        "An array index could not be proven to satisfy 0 <= i < len(a)."),
    "RSC-BND-002": (
        "possibly undefined or null access",
        "A member access has a receiver whose type admits undefined/null and "
        "that case could not be ruled out."),
    "RSC-BND-003": (
        "operation on a non-indexable value",
        "An indexing or call operation is applied to a value that is not an "
        "array/function under the current typing."),
    "RSC-INIT-001": (
        "initialization error",
        "A field is read before the constructor has definitely assigned it."),
    "RSC-MOD-001": (
        "unresolved import",
        "An `import ... from \"./mod\"` refers to a module file that does "
        "not exist under the project root (module specifiers are resolved "
        "relative to the importing file, with `.rsc` appended)."),
    "RSC-MOD-002": (
        "import cycle",
        "The module graph contains an import cycle, so no dependency order "
        "exists in which each module could be checked against its "
        "dependencies' interfaces.  Every module on the cycle reports this "
        "diagnostic and is skipped; break the cycle by moving the shared "
        "declarations into a common dependency."),
    "RSC-MOD-003": (
        "unknown export",
        "An import names a binding that the target module does not export. "
        "Only declarations marked with `export` are part of a module's "
        "interface summary."),
    "RSC-INT-001": (
        "internal checker error",
        "The checker hit an unexpected state; please report this as a bug."),
}


#: Every stable diagnostic code, sorted — the public list tools may rely on.
CODES: tuple = tuple(sorted(ERROR_CATALOG))


def explain_code(code: str) -> Optional[tuple]:
    """Catalog entry ``(summary, detail)`` for ``code``, or None."""
    return ERROR_CATALOG.get(code.strip().upper())


@dataclass
class Diagnostic:
    """A single problem discovered by some phase of the checker.

    Every diagnostic carries a stable machine-readable ``code`` (see
    :data:`ERROR_CATALOG`); when a call site does not supply one the family
    default for its :class:`ErrorKind` is used.
    """

    kind: ErrorKind
    message: str
    span: SourceSpan = field(default_factory=SourceSpan.unknown)
    severity: Severity = Severity.ERROR
    code: str = ""

    def __post_init__(self) -> None:
        if not self.code:
            self.code = DEFAULT_CODES[self.kind]

    def __str__(self) -> str:
        return (f"{self.span}: {self.severity.value}: {self.code} "
                f"[{self.kind.value}] {self.message}")

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "kind": self.kind.value,
            "severity": self.severity.value,
            "message": self.message,
            "span": self.span.to_dict(),
        }


class RscError(Exception):
    """Base class for exceptions raised by the RSC implementation."""


class ParseError(RscError):
    """Raised by the lexer/parser on malformed input."""

    def __init__(self, message: str, span: Optional[SourceSpan] = None):
        super().__init__(message)
        self.message = message
        self.span = span or SourceSpan.unknown()

    def __str__(self) -> str:
        return f"{self.span}: parse error: {self.message}"


class SsaError(RscError):
    """Raised when a program cannot be converted to SSA/IRSC form."""


class TypeError_(RscError):
    """Raised for unrecoverable typing problems (most are reported as Diagnostics)."""


class SolverError(RscError):
    """Raised by the SMT substrate on malformed queries."""


class InternalError(RscError):
    """A bug in the checker itself."""


class DiagnosticBag:
    """Accumulates diagnostics produced while checking a program."""

    def __init__(self) -> None:
        self._items: List[Diagnostic] = []

    def add(self, diag: Diagnostic) -> None:
        self._items.append(diag)

    def error(self, kind: ErrorKind, message: str,
              span: Optional[SourceSpan] = None, code: str = "") -> None:
        self.add(Diagnostic(kind, message, span or SourceSpan.unknown(),
                            Severity.ERROR, code))

    def warning(self, kind: ErrorKind, message: str,
                span: Optional[SourceSpan] = None, code: str = "") -> None:
        self.add(Diagnostic(kind, message, span or SourceSpan.unknown(),
                            Severity.WARNING, code))

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        for d in diags:
            self.add(d)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self._items if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self._items if d.severity is Severity.WARNING]

    def has_errors(self) -> bool:
        return bool(self.errors)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __str__(self) -> str:
        return "\n".join(str(d) for d in self._items)
