"""``repro watch`` — re-check files whenever their mtime changes.

A :class:`Watcher` holds a :class:`repro.core.workspace.Workspace` with one
open document per watched path.  Each :meth:`Watcher.scan` polls the
filesystem once and re-checks (incrementally) every path whose modification
time moved since the previous scan, printing a one-line verdict with the
per-edit timing delta::

    a.rsc: SAFE: 0 error(s) ... 0.41s  (warm, 1/9 declarations re-checked, -1.23s vs last)

The CLI drives scans in a sleep loop; tests drive them directly.
"""

from __future__ import annotations

import pathlib
import sys
import time
from typing import IO, List, Optional, Sequence

from repro.core.config import CheckConfig
from repro.core.result import CheckResult
from repro.core.workspace import Workspace


class Watcher:
    """Poll a fixed set of paths, re-checking through one workspace."""

    def __init__(self, paths: Sequence[str],
                 config: Optional[CheckConfig] = None,
                 out: Optional[IO[str]] = None) -> None:
        self.paths = [str(p) for p in paths]
        self.workspace = Workspace(config or CheckConfig())
        self.out = out if out is not None else sys.stdout
        self._mtimes: dict = {}
        self._last_time: dict = {}
        self._unreadable: set = set()

    def scan(self) -> List[CheckResult]:
        """One poll: check every path that changed since the last scan.

        The first scan checks everything (cold).  An unreadable path is
        reported once (including on the very first scan) and retried every
        poll until it becomes readable again — the mtime is only recorded
        after a successful check, so a read racing an editor's write is
        picked up by the next scan rather than skipped forever.
        """
        results: List[CheckResult] = []
        for path in self.paths:
            try:
                mtime = pathlib.Path(path).stat().st_mtime_ns
            except OSError as exc:
                self._mtimes.pop(path, None)
                self._note_unreadable(path, exc)
                continue
            if self._mtimes.get(path) == mtime:
                continue
            try:
                result = self.workspace.open(path)
            except (OSError, UnicodeDecodeError) as exc:
                self._note_unreadable(path, exc)
                continue
            self._mtimes[path] = mtime
            self._unreadable.discard(path)
            self._report(path, result)
            results.append(result)
        self.out.flush()
        return results

    def _note_unreadable(self, path: str, exc: Exception) -> None:
        if path not in self._unreadable:
            self._unreadable.add(path)
            self.out.write(f"{path}: unreadable ({exc})\n")

    def run(self, poll_seconds: float = 0.5,
            max_scans: Optional[int] = None) -> int:
        """Scan in a sleep loop until interrupted (or ``max_scans``)."""
        scans = 0
        try:
            while max_scans is None or scans < max_scans:
                self.scan()
                scans += 1
                if max_scans is not None and scans >= max_scans:
                    break
                time.sleep(poll_seconds)
        except KeyboardInterrupt:
            self.out.write("\nstopped\n")
        return 0

    def _report(self, path: str, result: CheckResult) -> None:
        solve = result.solve_stats
        notes = []
        if solve is not None and solve.warm_starts:
            total = solve.declarations_rechecked + solve.declarations_reused
            notes.append(f"warm, {solve.declarations_rechecked}/{total} "
                         f"declarations re-checked")
        previous = self._last_time.get(path)
        if previous is not None:
            notes.append(f"{result.time_seconds - previous:+.2f}s vs last")
        self._last_time[path] = result.time_seconds
        suffix = f"  ({', '.join(notes)})" if notes else ""
        self.out.write(f"{path}: {result.summary()}{suffix}\n")


def watch(paths: Sequence[str], config: Optional[CheckConfig] = None,
          poll_seconds: float = 0.5, max_scans: Optional[int] = None,
          out: Optional[IO[str]] = None) -> int:
    """Entry point used by ``repro watch``."""
    return Watcher(paths, config, out=out).run(poll_seconds, max_scans)
