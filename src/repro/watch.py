"""``repro watch`` — re-check files whenever their mtime changes.

A :class:`Watcher` polls a fixed set of paths and re-checks each changed
one through a :class:`repro.client.Client` — the same protocol code path
the serve tests and ``repro bench serve`` use — backed by an in-process
service core by default (no sockets).  Each :meth:`Watcher.scan` polls the
filesystem once, sends a ``check`` request per changed path and prints a
one-line verdict with the per-edit timing delta::

    a.rsc: SAFE: 0 error(s) ... 0.41s  (warm, 1/9 declarations re-checked, -1.23s vs last)

Because every check crosses the protocol boundary, a checker crash comes
back as an ``internal-error`` *response* instead of an exception: the
watcher reports it as a one-line error and keeps watching — one
pathological file can no longer take down the loop.

The CLI drives scans in a sleep loop; tests drive them directly.
"""

from __future__ import annotations

import pathlib
import sys
import time
from typing import IO, List, Optional, Sequence

from repro.client import Client
from repro.core.config import CheckConfig
from repro.service.protocol import CheckPayload, ProtocolError


class Watcher:
    """Poll a fixed set of paths, re-checking through one service client."""

    def __init__(self, paths: Sequence[str],
                 config: Optional[CheckConfig] = None,
                 out: Optional[IO[str]] = None,
                 client: Optional[Client] = None) -> None:
        self.paths = [str(p) for p in paths]
        self.client = client or Client.local(config or CheckConfig())
        self.out = out if out is not None else sys.stdout
        self.errors_reported = 0
        self._mtimes: dict = {}
        self._unreadable: set = set()

    @property
    def workspace(self):
        """The underlying workspace (in-process transports only)."""
        core = self.client.transport.core
        return core.manager.get(core.default_tenant).workspace

    def scan(self) -> List[CheckPayload]:
        """One poll: check every path that changed since the last scan.

        The first scan checks everything (cold).  An unreadable path is
        reported once (including on the very first scan) and retried every
        poll until it becomes readable again — the mtime is only recorded
        after a served check, so a read racing an editor's write is picked
        up by the next scan rather than skipped forever.  A checker crash
        (``internal-error`` response) is reported and the path parked until
        its mtime moves again.
        """
        results: List[CheckPayload] = []
        for path in self.paths:
            try:
                mtime = pathlib.Path(path).stat().st_mtime_ns
            except OSError as exc:
                self._mtimes.pop(path, None)
                self._note_unreadable(path, exc)
                continue
            if self._mtimes.get(path) == mtime:
                continue
            try:
                payload = self.client.check(path)
            except ProtocolError as exc:
                if exc.code == "io-error":
                    self._note_unreadable(path, exc.message)
                    continue
                # Degraded mode: the checker crashed on this content.  Park
                # the path (recording the mtime) so the loop does not spin
                # hot re-crashing on the same bytes.
                self._mtimes[path] = mtime
                self.errors_reported += 1
                self.out.write(f"{path}: checker error "
                               f"({exc.code}: {exc.message})\n")
                continue
            self._mtimes[path] = mtime
            self._unreadable.discard(path)
            self._report(path, payload)
            results.append(payload)
        self.out.flush()
        return results

    def _note_unreadable(self, path: str, exc) -> None:
        if path not in self._unreadable:
            self._unreadable.add(path)
            self.out.write(f"{path}: unreadable ({exc})\n")

    def run(self, poll_seconds: float = 0.5,
            max_scans: Optional[int] = None) -> int:
        """Scan in a sleep loop until interrupted (or ``max_scans``)."""
        scans = 0
        try:
            while max_scans is None or scans < max_scans:
                self.scan()
                scans += 1
                if max_scans is not None and scans >= max_scans:
                    break
                time.sleep(poll_seconds)
        except KeyboardInterrupt:
            self.out.write("\nstopped\n")
        return 0

    def _report(self, path: str, payload: CheckPayload) -> None:
        solve = payload.solve_stats
        notes = []
        if payload.warm and solve:
            rechecked = solve.get("declarations_rechecked", 0)
            total = rechecked + solve.get("declarations_reused", 0)
            notes.append(f"warm, {rechecked}/{total} "
                         f"declarations re-checked")
        if payload.delta_seconds is not None:
            notes.append(f"{payload.delta_seconds:+.2f}s vs last")
        # Stage numbers come from the service's span tree (the same
        # StageTimings ``repro check`` prints), not a client-side clock —
        # watch/serve/check therefore report identical figures.
        timings = payload.timings or {}
        seconds = timings.get("total", payload.time_seconds)
        stages = ", ".join(f"{stage} {timings[stage]:.2f}s"
                           for stage in ("parse", "ssa", "constraints",
                                         "solve", "verify")
                           if timings.get(stage))
        if stages:
            notes.append(stages)
        suffix = f"  ({', '.join(notes)})" if notes else ""
        errors = sum(1 for d in payload.diagnostics
                     if d.get("severity") == "error")
        warnings = sum(1 for d in payload.diagnostics
                       if d.get("severity") == "warning")
        self.out.write(f"{path}: {payload.status}: {errors} error(s), "
                       f"{warnings} warning(s), "
                       f"{seconds:.2f}s{suffix}\n")


def watch(paths: Sequence[str], config: Optional[CheckConfig] = None,
          poll_seconds: float = 0.5, max_scans: Optional[int] = None,
          out: Optional[IO[str]] = None) -> int:
    """Entry point used by ``repro watch``."""
    return Watcher(paths, config, out=out).run(poll_seconds, max_scans)
