"""The synchronous service core: tenants, dispatch, counters.

A :class:`TenantSession` is one tenant's isolated state — its own
:class:`repro.core.workspace.Workspace` (documents, solver, store handle),
optional :class:`repro.project.workspace.ProjectWorkspace`, per-URI timing
history and the counters the ``stats`` method reports.  Tenants never share
mutable state, so two tenants can never observe each other's diagnostics.

A :class:`SessionManager` holds many tenants keyed by name, LRU-ordered;
past ``CheckConfig.service.max_tenants`` the least-recently-used *idle*
tenant is evicted (its documents close, its solver is dropped — the next
request under that name starts cold).

A :class:`ServiceCore` is the typed dispatcher both servers share: the
stdio ``repro-serve/2`` shim (:mod:`repro.serve`) and the asyncio socket
server (:mod:`repro.service.server`) decode with
:func:`repro.service.protocol.decode_request` and execute here, so the
business logic has exactly one code path.  The core itself is synchronous
and single-threaded per tenant — concurrency (queues, supersession,
executors) lives in the async server, which guarantees at most one request
per tenant is executing at a time.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from repro.core.cancel import CancelToken, CheckCancelled
from repro.core.config import CheckConfig
from repro.core.result import CheckResult
from repro.core.workspace import Workspace
# ``percentile`` is re-exported here for callers that predate repro.obs —
# the one nearest-rank implementation now lives in repro.obs.metrics.
from repro.obs.metrics import (Histogram, MetricsRegistry, percentile,
                               registry_from_stats)
from repro.service.protocol import (PROTOCOLS, CancelPayload, CheckPayload,
                                    ClosePayload, DiagnosticsPayload,
                                    HelloPayload, MetricsPayload,
                                    ModulePayload, ProjectBuildPayload,
                                    ProjectUpdatePayload, ProtocolError,
                                    Request, Response, ShutdownPayload,
                                    StatsPayload, decode_request,
                                    method_names)

#: Methods whose wall-clock enters the tenant's latency window.
TIMED_METHODS = frozenset(
    {"check", "update", "project_open", "project_update"})


class TenantSession:
    """One tenant's isolated workspace, project and counters."""

    def __init__(self, name: str, config: CheckConfig,
                 workspace: Optional[Workspace] = None) -> None:
        self.name = name
        self.config = workspace.config if workspace is not None else config
        self.workspace = workspace or Workspace(self.config)
        self.project = None  # lazily created by project_open
        self.requests = 0
        self.cancelled_queued = 0
        self.cancelled_inflight = 0
        #: maintained by the async server's lane; 0 under the stdio shim
        self.queue_depth = 0
        #: the ``stats``/``metrics`` latency window (an obs histogram; the
        #: hand-rolled deque it replaced kept the same bounded shape)
        self.latencies_ms = Histogram(
            window=self.config.service.latency_window)
        self._last_time: Dict[str, float] = {}

    # -- document methods --------------------------------------------------

    def check(self, params, token: Optional[CancelToken] = None
              ) -> CheckPayload:
        result = self.workspace.open(params.uri, params.text, token=token)
        return self._check_payload(params.uri, result)

    def update(self, params, token: Optional[CancelToken] = None
               ) -> CheckPayload:
        if params.uri not in self.workspace.documents():
            raise ProtocolError("not-open",
                                f"document not open: {params.uri!r}")
        result = self.workspace.update(params.uri, params.text, token=token)
        return self._check_payload(params.uri, result)

    def diagnostics(self, params, token=None) -> DiagnosticsPayload:
        try:
            result = self.workspace.result(params.uri)
        except KeyError:
            raise ProtocolError("not-open",
                                f"document not open: {params.uri!r}")
        return DiagnosticsPayload(
            uri=params.uri, status=result.status, ok=result.ok,
            diagnostics=[d.to_dict() for d in result.diagnostics])

    def close(self, params, token=None) -> ClosePayload:
        try:
            self.workspace.close(params.uri)
        except KeyError:
            raise ProtocolError("not-open",
                                f"document not open: {params.uri!r}")
        self._last_time.pop(params.uri, None)
        return ClosePayload(uri=params.uri, closed=True)

    # -- project methods ---------------------------------------------------

    def project_open(self, params, token: Optional[CancelToken] = None
                     ) -> ProjectBuildPayload:
        import pathlib

        from repro.project.workspace import ProjectWorkspace
        if not pathlib.Path(params.root).is_dir():
            raise ProtocolError("io-error",
                                f"not a directory: {params.root!r}")
        self.project = ProjectWorkspace(root=params.root, config=self.config)
        result = self.project.check()
        return ProjectBuildPayload(
            status="SAFE" if result.ok else "UNSAFE", ok=result.ok,
            num_modules=result.num_modules,
            ranks=dict(sorted(result.ranks.items())),
            cyclic=list(result.cyclic),
            modules=[self._module_payload(r).to_json()
                     for r in result.results])

    def project_update(self, params, token: Optional[CancelToken] = None
                       ) -> ProjectUpdatePayload:
        import pathlib
        project = self._require_project()
        # The library's update() deliberately adds unknown paths as new
        # modules; over the protocol that would turn a typo'd or relative
        # URI into a phantom module, so membership is checked first.
        if str(pathlib.Path(params.uri).resolve()) not in project.modules():
            raise ProtocolError("not-open",
                                f"module not in the project: {params.uri!r}")
        update = project.update(params.uri, params.text, token=token)
        return ProjectUpdatePayload(
            path=update.path, rechecked=list(update.rechecked),
            reused=list(update.reused),
            summary_changed=update.summary_changed, ok=update.ok,
            queries=update.queries,
            modules=[self._module_payload(update.results[path]).to_json()
                     for path in update.rechecked])

    def project_diagnostics(self, params, token=None) -> ModulePayload:
        project = self._require_project()
        try:
            result = project.result(params.uri)
        except KeyError:
            raise ProtocolError("not-open", f"module not in the project: "
                                            f"{params.uri!r}")
        return self._module_payload(result)

    def _require_project(self):
        if self.project is None:
            raise ProtocolError("not-open",
                                "no project open (send project_open first)")
        return self.project

    # -- payload helpers ---------------------------------------------------

    @staticmethod
    def _module_payload(result: CheckResult) -> ModulePayload:
        return ModulePayload(
            uri=result.filename, status=result.status, ok=result.ok,
            diagnostics=[d.to_dict() for d in result.diagnostics])

    def _check_payload(self, uri: str, result: CheckResult) -> CheckPayload:
        previous = self._last_time.get(uri)
        self._last_time[uri] = result.time_seconds
        solve = result.solve_stats
        return CheckPayload(
            uri=uri, status=result.status, ok=result.ok,
            diagnostics=[d.to_dict() for d in result.diagnostics],
            time_seconds=result.time_seconds,
            delta_seconds=(result.time_seconds - previous
                           if previous is not None else None),
            queries=result.stats.queries if result.stats else 0,
            warm=bool(solve and solve.warm_starts),
            solve_stats=solve.to_dict() if solve else None,
            timings=(result.timings.to_dict()
                     if result.timings is not None else None))

    # -- counters ----------------------------------------------------------

    @property
    def checks_cancelled(self) -> int:
        return self.cancelled_queued + self.cancelled_inflight

    def stats_entry(self) -> dict:
        window = self.latencies_ms.values()
        return {
            "open_documents": len(self.workspace.documents()),
            "checks_run": self.workspace.checks_run,
            "requests": self.requests,
            "queue_depth": self.queue_depth,
            "cancelled_queued": self.cancelled_queued,
            "cancelled_inflight": self.cancelled_inflight,
            "latency": {
                "count": len(window),
                "p50_ms": percentile(window, 50.0),
                "p99_ms": percentile(window, 99.0),
            },
        }

    def metrics_entry(self) -> dict:
        """This tenant's registry snapshot for the ``metrics`` method."""
        workspace = self.workspace
        registry = registry_from_stats(
            solver=workspace.solver.stats,
            store=(workspace.store.counters()
                   if workspace.store is not None else None))
        registry.counter("service.requests").value = self.requests
        registry.counter("service.checks_run").value = workspace.checks_run
        registry.counter("service.cancelled_queued").value = \
            self.cancelled_queued
        registry.counter("service.cancelled_inflight").value = \
            self.cancelled_inflight
        registry.attach_histogram("service.latency_ms", self.latencies_ms)
        return registry.to_dict()


class SessionManager:
    """Tenant sessions keyed by name, LRU-evicted past the configured cap."""

    def __init__(self, config: CheckConfig) -> None:
        self.config = config
        self.tenants: "OrderedDict[str, TenantSession]" = OrderedDict()
        self.tenants_evicted = 0
        #: overridden by the async server so an executing tenant (queued or
        #: in-flight work) is never evicted out from under its own check
        self.busy: Callable[[str], bool] = lambda name: False

    def get(self, name: str) -> TenantSession:
        """The named tenant, created on first use and LRU-touched."""
        session = self.tenants.get(name)
        if session is None:
            session = TenantSession(name, self.config)
            self.tenants[name] = session
        self.tenants.move_to_end(name)
        self._evict(keep=name)
        return session

    def peek(self, name: str) -> Optional[TenantSession]:
        """The named tenant without creating or LRU-touching it."""
        return self.tenants.get(name)

    def install(self, name: str, session: TenantSession) -> None:
        """Pre-install a tenant (the stdio shim's injected workspace)."""
        self.tenants[name] = session
        self.tenants.move_to_end(name)

    def _evict(self, keep: str) -> None:
        limit = self.config.service.max_tenants
        if len(self.tenants) <= limit:
            return
        for candidate in list(self.tenants):  # oldest first
            if len(self.tenants) <= limit:
                break
            if candidate == keep or self.busy(candidate):
                continue
            del self.tenants[candidate]
            self.tenants_evicted += 1


class ServiceCore:
    """The typed dispatcher shared by the stdio shim and the async server."""

    def __init__(self, config: Optional[CheckConfig] = None,
                 workspace: Optional[Workspace] = None,
                 default_tenant: str = "default") -> None:
        # An injected workspace's config governs *all* operations (any
        # `config` argument is superseded), so single-file and project
        # checks of the same text always agree.
        if workspace is not None:
            config = workspace.config
        self.config = config or CheckConfig()
        self.default_tenant = default_tenant
        self.manager = SessionManager(self.config)
        if workspace is not None:
            self.manager.install(
                default_tenant,
                TenantSession(default_tenant, self.config, workspace))
        self.requests_served = 0
        self.shutting_down = False
        #: installed by the async server: (tenant, uri) -> CancelPayload
        self.cancel_hook: Optional[Callable[[str, str], CancelPayload]] = None

    # -- entry points ------------------------------------------------------

    def count_request(self) -> None:
        """Every received request counts, even ones that fail to decode
        (the v2 server counted before validating)."""
        self.requests_served += 1

    def handle_raw(self, obj: Any, version: int = 3) -> Response:
        """Count, decode and execute one request object."""
        self.count_request()
        request_id = obj.get("id") if isinstance(obj, dict) else None
        try:
            request = decode_request(obj, version)
        except ProtocolError as exc:
            return Response.failure(request_id, exc.code, exc.message)
        return self.execute(request, version)

    def execute(self, request: Request, version: int = 3,
                token: Optional[CancelToken] = None) -> Response:
        """Execute one decoded (and already counted) request."""
        try:
            return Response.success(
                request.id, self._dispatch(request, version, token),
                version)
        except ProtocolError as exc:
            return Response.failure(request.id, exc.code, exc.message)
        except CheckCancelled as exc:
            return Response.failure(request.id, "cancelled", str(exc))
        except (OSError, UnicodeDecodeError) as exc:
            # An undecodable file is as unreadable as a missing one.
            return Response.failure(request.id, "io-error", str(exc))
        except Exception as exc:  # noqa: BLE001 — one request must never
            # take down the loop; the contract is one response per line.
            return Response.failure(request.id, "internal-error",
                                    f"{type(exc).__name__}: {exc}")

    # -- dispatch ----------------------------------------------------------

    def tenant_name(self, request: Request) -> str:
        return request.tenant or self.default_tenant

    def _dispatch(self, request: Request, version: int,
                  token: Optional[CancelToken]):
        method = request.method
        if method == "hello":
            return HelloPayload(protocol=PROTOCOLS[version],
                                methods=list(method_names(version)),
                                tenant=self.tenant_name(request))
        if method == "stats":
            return self.stats(version)
        if method == "metrics":
            return self.metrics(version)
        if method == "shutdown":
            return self.shutdown(version)
        if method == "cancel":
            return self.cancel(self.tenant_name(request), request.params.uri)
        tenant = self.manager.get(self.tenant_name(request))
        tenant.requests += 1
        handler = getattr(tenant, method)
        start = time.perf_counter()
        try:
            payload = handler(request.params, token)
        except CheckCancelled:
            tenant.cancelled_inflight += 1
            raise
        if method in TIMED_METHODS:
            tenant.latencies_ms.observe(
                (time.perf_counter() - start) * 1000.0)
        return payload

    # -- service-level methods ---------------------------------------------

    def cancel(self, tenant_name: str, uri: str) -> CancelPayload:
        if self.cancel_hook is not None:
            return self.cancel_hook(tenant_name, uri)
        # The synchronous core runs one request at a time; there is never
        # anything in flight to cancel by the time a cancel is dispatched.
        return CancelPayload(uri=uri, cancelled=False, state="idle")

    def stats(self, version: int = 3) -> StatsPayload:
        tenants = {name: session.stats_entry()
                   for name, session in self.manager.tenants.items()}
        return StatsPayload(
            protocol=PROTOCOLS[version], tenants=tenants,
            totals={
                "requests_served": self.requests_served,
                "checks_run": self.checks_run,
                "tenants": len(self.manager.tenants),
                "tenants_evicted": self.manager.tenants_evicted,
                "cancelled_queued": sum(s.cancelled_queued for s in
                                        self.manager.tenants.values()),
                "cancelled_inflight": sum(s.cancelled_inflight for s in
                                          self.manager.tenants.values()),
            })

    def metrics(self, version: int = 3) -> MetricsPayload:
        """The unified registry snapshot: totals plus one per tenant."""
        totals = MetricsRegistry()
        totals.counter("service.requests_served").value = \
            self.requests_served
        totals.counter("service.checks_run").value = self.checks_run
        totals.counter("service.tenants").value = len(self.manager.tenants)
        totals.counter("service.tenants_evicted").value = \
            self.manager.tenants_evicted
        tenants = {name: session.metrics_entry()
                   for name, session in self.manager.tenants.items()}
        return MetricsPayload(protocol=PROTOCOLS[version],
                              totals=totals.to_dict(), tenants=tenants)

    def shutdown(self, version: int = 3) -> ShutdownPayload:
        self.shutting_down = True
        default = self.manager.peek(self.default_tenant)
        store = default.workspace.store if default is not None else None
        return ShutdownPayload(
            shutdown=True, protocol=PROTOCOLS[version],
            requests_served=self.requests_served,
            checks_run=self.checks_run,
            store=store.counters() if store is not None else None)

    # -- aggregates --------------------------------------------------------

    @property
    def checks_run(self) -> int:
        return sum(session.workspace.checks_run
                   for session in self.manager.tenants.values())
