"""The multi-tenant check service (``repro serve`` v3).

This package splits the former monolithic ``repro.serve`` module into three
layers:

* :mod:`repro.service.protocol` — the typed wire protocol: request /
  response envelopes, per-method params and payload dataclasses with
  versioned JSON codecs, and the exhaustive :data:`~repro.service.protocol.METHODS`
  registry shared by the server, the client and the docs.
* :mod:`repro.service.core` — the synchronous service core: a
  :class:`~repro.service.core.SessionManager` holding many isolated tenant
  workspaces (LRU-evicted past ``CheckConfig.service.max_tenants``) and the
  typed dispatcher :class:`~repro.service.core.ServiceCore` used by both the
  stdio compatibility server and the asyncio socket server.
* :mod:`repro.service.server` — the asyncio TCP server: per-tenant request
  lanes with bounded queues (backpressure), superseding-edit cancellation
  through :class:`repro.core.cancel.CancelToken`, and a thread pool running
  the CPU-bound checks off the event loop.

The stdio ``repro serve`` loop (:mod:`repro.serve`) remains the
``repro-serve/2`` compatibility shim: it is now a thin adapter over
:class:`~repro.service.core.ServiceCore` and replays v2 NDJSON transcripts
byte-identically.  The synchronous :class:`repro.client.Client` speaks the
v3 protocol over either a socket or an in-process core.
"""

from repro.service.core import ServiceCore, SessionManager, TenantSession
from repro.service.protocol import (METHODS, PROTOCOL_V2, PROTOCOL_V3,
                                    ProtocolError, Request, Response,
                                    method_names)
from repro.service.server import AsyncCheckServer, ServerThread

__all__ = [
    "AsyncCheckServer",
    "METHODS",
    "PROTOCOL_V2",
    "PROTOCOL_V3",
    "ProtocolError",
    "Request",
    "Response",
    "ServerThread",
    "ServiceCore",
    "SessionManager",
    "TenantSession",
    "method_names",
]
