"""The asyncio TCP check server (``repro serve --tcp``).

One process serves many concurrent clients and many isolated tenants.  The
event loop only parses, schedules and writes; the CPU-bound checks run on a
:class:`~concurrent.futures.ThreadPoolExecutor`
(``CheckConfig.service.workers`` threads).  Requests are scheduled through
**per-tenant lanes**:

* a lane executes at most one request at a time, so a tenant's workspace is
  never touched concurrently (the isolation the sync core relies on);
* a ``check``/``update`` arriving for a URI that already has one queued
  **supersedes** it — the stale request is answered immediately with a
  ``cancelled`` error; if the stale check is already executing its
  :class:`repro.core.cancel.CancelToken` is fired and the pipeline unwinds
  at its next stage boundary (fixpoint round, SSA/constraint seams),
  leaving the artifact store untouched;
* a lane whose queue is full (``CheckConfig.service.queue_limit``) answers
  new work with a ``backpressure`` error instead of buffering without
  bound.

Lane state is only ever mutated on the event-loop thread (enqueue,
supersede, the ``cancel`` method's hook, completion), so no locks are
needed beyond the thread-safe cancellation token itself.

:class:`ServerThread` hosts the server on a background thread for tests,
the watch loop and ``repro bench serve``; :func:`run_server` is the
blocking CLI entry point.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.cancel import CancelToken
from repro.core.config import CheckConfig
from repro.obs.trace import span as trace_span
from repro.service.core import ServiceCore
from repro.service.protocol import (CancelPayload, ProtocolError, Request,
                                    Response, decode_request,
                                    parse_error_response)

#: Methods a later edit of the same URI supersedes.
SUPERSEDABLE = frozenset({"check", "update"})

#: NDJSON line limit for the stream reader (sources are whole lines).
LINE_LIMIT = 16 * 1024 * 1024


@dataclass
class _Job:
    """One queued request plus how to answer it."""

    request: Request
    respond: Callable  # async (Response) -> None
    token: CancelToken = field(default_factory=CancelToken)


@dataclass
class _Lane:
    """One tenant's serialized request stream."""

    queue: deque = field(default_factory=deque)
    current: Optional[_Job] = None
    task: Optional[asyncio.Task] = None

    @property
    def active(self) -> bool:
        return self.current is not None or bool(self.queue)


class AsyncCheckServer:
    """The asyncio TCP server fronting one :class:`ServiceCore`."""

    def __init__(self, config: Optional[CheckConfig] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        from concurrent.futures import ThreadPoolExecutor
        self.config = config or CheckConfig()
        self.core = ServiceCore(self.config)
        self.core.cancel_hook = self._cancel_uri
        self.core.manager.busy = self._tenant_busy
        self.host = host
        self.port = port
        self.lanes: Dict[str, _Lane] = {}
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.service.workers,
            thread_name_prefix="repro-check")
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop: Optional[asyncio.Event] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port, limit=LINE_LIMIT)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`request_stop`)."""
        assert self._stop is not None, "call start() first"
        await self._stop.wait()
        await self._drain()

    def request_stop(self) -> None:
        """Stop the server from the event-loop thread."""
        if self._stop is not None:
            self._stop.set()

    async def _drain(self) -> None:
        """Stop accepting, flush queued work as cancelled, finish in-flight
        checks (their clients may still be reading), release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for name, lane in self.lanes.items():
            tenant = self.core.manager.peek(name)
            while lane.queue:
                job = lane.queue.popleft()
                if tenant is not None:
                    tenant.cancelled_queued += 1
                await job.respond(Response.failure(
                    job.request.id, "cancelled", "server shutting down"))
            if lane.task is not None:
                with contextlib.suppress(asyncio.CancelledError):
                    await lane.task
        self.executor.shutdown(wait=True)

    # -- connection handling -----------------------------------------------

    async def _on_client(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        lock = asyncio.Lock()

        async def send(response: Response) -> None:
            line = json.dumps(response.to_json()) + "\n"
            try:
                async with lock:
                    writer.write(line.encode("utf-8"))
                    await writer.drain()
            except (ConnectionError, RuntimeError):
                pass  # the client went away; the check result is dropped

        try:
            while not self.core.shutting_down:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await send(parse_error_response("request line too long"))
                    break
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except ValueError as exc:
                    await send(parse_error_response(
                        f"malformed request: {exc}"))
                    continue
                if not isinstance(obj, dict):
                    await send(parse_error_response(
                        "request must be a JSON object"))
                    continue
                self.core.count_request()
                try:
                    request = decode_request(obj, version=3)
                except ProtocolError as exc:
                    await send(Response.failure(obj.get("id"), exc.code,
                                                exc.message))
                    continue
                if request.method in ("hello", "stats", "metrics",
                                      "cancel"):
                    # Control methods answer inline on the event loop; they
                    # never touch a workspace, so they cannot race a check.
                    await send(self.core.execute(request, version=3))
                    continue
                if request.method == "shutdown":
                    await send(self.core.execute(request, version=3))
                    self.request_stop()
                    break
                self._route(request, send)
        finally:
            with contextlib.suppress(ConnectionError):
                writer.close()

    # -- scheduling --------------------------------------------------------

    def _route(self, request: Request, send) -> None:
        """Enqueue one tenant-level request on its lane."""
        name = self.core.tenant_name(request)
        lane = self.lanes.setdefault(name, _Lane())
        if request.method in SUPERSEDABLE and request.uri:
            self._supersede(name, lane, request)
        if len(lane.queue) >= self.config.service.queue_limit:
            asyncio.ensure_future(send(Response.failure(
                request.id, "backpressure",
                f"tenant {name!r} queue is full "
                f"({self.config.service.queue_limit} requests pending)")))
            return
        lane.queue.append(_Job(request=request, respond=send))
        self._sync_depth(name, lane)
        if lane.task is None:
            lane.task = asyncio.ensure_future(self._drain_lane(name, lane))

    def _supersede(self, name: str, lane: _Lane, request: Request) -> None:
        """A newer edit of a URI obsoletes older pending checks of it."""
        reason = f"superseded by request {request.id!r}"
        tenant = self.core.manager.get(name)
        for job in [j for j in lane.queue
                    if j.request.method in SUPERSEDABLE
                    and j.request.uri == request.uri]:
            lane.queue.remove(job)
            tenant.cancelled_queued += 1
            asyncio.ensure_future(job.respond(Response.failure(
                job.request.id, "cancelled", reason)))
        current = lane.current
        if (current is not None and current.request.method in SUPERSEDABLE
                and current.request.uri == request.uri):
            current.token.cancel(reason)

    async def _drain_lane(self, name: str, lane: _Lane) -> None:
        loop = asyncio.get_event_loop()
        while lane.queue:
            job = lane.queue.popleft()
            self._sync_depth(name, lane)
            lane.current = job
            try:
                response = await loop.run_in_executor(
                    self.executor, self._execute_traced, name, job)
            finally:
                lane.current = None
            await job.respond(response)
        lane.task = None

    def _execute_traced(self, name: str, job: _Job) -> Response:
        """One lane job on an executor thread, wrapped in a service span
        carrying the tenant/method breakdown (and the client's trace id)."""
        request = job.request
        extra = {"trace": request.trace} if request.trace else {}
        with trace_span(f"service.{request.method}", "service",
                        tenant=name, **extra):
            return self.core.execute(request, 3, job.token)

    def _sync_depth(self, name: str, lane: _Lane) -> None:
        tenant = self.core.manager.peek(name)
        if tenant is not None:
            tenant.queue_depth = len(lane.queue)

    def _tenant_busy(self, name: str) -> bool:
        lane = self.lanes.get(name)
        return lane is not None and lane.active

    def _cancel_uri(self, name: str, uri: str) -> CancelPayload:
        """The ``cancel`` method: explicit client-driven cancellation."""
        reason = "cancelled by request"
        lane = self.lanes.get(name)
        if lane is None:
            return CancelPayload(uri=uri, cancelled=False, state="idle")
        stale = [job for job in lane.queue
                 if job.request.method in SUPERSEDABLE
                 and job.request.uri == uri]
        if stale:
            tenant = self.core.manager.get(name)
            for job in stale:
                lane.queue.remove(job)
                tenant.cancelled_queued += 1
                asyncio.ensure_future(job.respond(Response.failure(
                    job.request.id, "cancelled", reason)))
            self._sync_depth(name, lane)
            return CancelPayload(uri=uri, cancelled=True, state="queued")
        current = lane.current
        if (current is not None and current.request.method in SUPERSEDABLE
                and current.request.uri == uri):
            current.token.cancel(reason)
            return CancelPayload(uri=uri, cancelled=True, state="inflight")
        return CancelPayload(uri=uri, cancelled=False, state="idle")


class ServerThread:
    """Host an :class:`AsyncCheckServer` on a background thread.

    Usage::

        with ServerThread(config) as server:
            client = Client.connect(server.host, server.port)
            ...

    ``port`` is the bound port (an ephemeral one unless pinned) once the
    context is entered / :meth:`start` returns.
    """

    def __init__(self, config: Optional[CheckConfig] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.server = AsyncCheckServer(config, host=host, port=port)
        self.host = host
        self.port = port
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("check server failed to start in time")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface bind errors to start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_event_loop()
        await self.server.start()
        self.port = self.server.port
        self._ready.set()
        await self.server.serve_until_shutdown()

    def stop(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            return
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_server(config: Optional[CheckConfig] = None,
               host: str = "127.0.0.1", port: int = 0) -> int:
    """Blocking entry point for ``repro serve --tcp``."""
    import sys

    async def main() -> None:
        server = AsyncCheckServer(config, host=host, port=port)
        await server.start()
        print(json.dumps({"listening": {"host": server.host,
                                        "port": server.port},
                          "protocol": "repro-serve/3"}), flush=True)
        await server.serve_until_shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("stopped", file=sys.stderr)
    return 0
