"""The typed serve protocol: envelopes, params/payload codecs, registry.

Every method the check service speaks is declared **once**, in
:data:`METHODS` — a name-ordered registry of :class:`MethodSpec` entries
binding the method name to its params dataclass, its result payload
dataclass and the protocol version that introduced it.  The stdio server,
the asyncio socket server, the synchronous client and the rendered method
docs (:func:`describe_methods`) all consult the same registry, so a method
cannot exist half-way: adding one here is what adds it everywhere.

Versioning
----------

Two protocol versions share the registry:

* ``repro-serve/2`` — the original stdio NDJSON protocol.  Decoding with
  ``version=2`` accepts exactly the original eight methods, produces the
  original error messages verbatim, and ignores v3-only envelope fields, so
  recorded v2 transcripts replay byte-identically through the shim.
* ``repro-serve/3`` — adds the ``tenant`` envelope field (many isolated
  workspaces behind one server) and the ``hello``, ``cancel`` and ``stats``
  methods.

Codecs are **unknown-field tolerant** in both directions: decoding ignores
JSON keys it does not know (so a v3 client can talk to a shim that predates
a field) and encoding emits only the fields a dataclass declares.  Type
errors, by contrast, are strict and produce ``bad-params`` errors with the
same messages the v2 server used (``"params.uri must be a string"``).

Wire shapes (one JSON object per NDJSON line)::

    -> {"id": 7, "method": "update", "tenant": "alice",
        "params": {"uri": "a.rsc", "text": "..."}}
    <- {"id": 7, "ok": true,  "result": {...}}
    <- {"id": 8, "ok": false, "error": {"code": "cancelled",
                                        "message": "superseded by request 9"}}
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

#: Protocol identifier of the stdio compatibility shim.
PROTOCOL_V2 = "repro-serve/2"

#: Protocol identifier of the multi-tenant async service.
PROTOCOL_V3 = "repro-serve/3"

#: Version number -> protocol identifier.
PROTOCOLS: Dict[int, str] = {2: PROTOCOL_V2, 3: PROTOCOL_V3}

#: Error codes a response may carry (exhaustive; the client maps unknown
#: codes to ``internal-error`` rather than crashing).
ERROR_CODES: Tuple[str, ...] = (
    "parse-error",      # the request line is not a JSON object
    "unknown-method",   # method absent from the registry (at this version)
    "bad-params",       # params missing, mistyped or not an object
    "not-open",         # document/module/project not open
    "io-error",         # the server could not read a file
    "cancelled",        # the check was superseded or explicitly cancelled
    "backpressure",     # the tenant's request queue is full
    "internal-error",   # the checker crashed; the loop survives
)


class ProtocolError(Exception):
    """A request that cannot be served (unknown method, bad params, ...)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


# ---------------------------------------------------------------------------
# field extraction helpers (strict types, v2-exact messages)
# ---------------------------------------------------------------------------


def _require_str(obj: dict, name: str, where: str = "params") -> str:
    value = obj.get(name)
    if not isinstance(value, str) or not value:
        raise ProtocolError("bad-params", f"{where}.{name} must be a string")
    return value


def _optional_str(obj: dict, name: str, where: str = "params"
                  ) -> Optional[str]:
    value = obj.get(name)
    if value is not None and not isinstance(value, str):
        raise ProtocolError("bad-params", f"{where}.{name} must be a string")
    return value


# ---------------------------------------------------------------------------
# params codecs (client -> server)
# ---------------------------------------------------------------------------


@dataclass
class EmptyParams:
    """Params for methods that take none (extra fields are ignored)."""

    @classmethod
    def from_json(cls, obj: dict) -> "EmptyParams":
        return cls()

    def to_json(self) -> dict:
        return {}


@dataclass
class HelloParams:
    """``hello``: optional protocol identifier the client prefers."""

    protocol: Optional[str] = None

    @classmethod
    def from_json(cls, obj: dict) -> "HelloParams":
        return cls(protocol=_optional_str(obj, "protocol"))

    def to_json(self) -> dict:
        return {} if self.protocol is None else {"protocol": self.protocol}


@dataclass
class CheckParams:
    """``check``/``update``/``project_update``: a URI plus optional text.

    With ``text`` omitted the URI is read as a file path server-side.
    """

    uri: str
    text: Optional[str] = None

    @classmethod
    def from_json(cls, obj: dict) -> "CheckParams":
        return cls(uri=_require_str(obj, "uri"),
                   text=_optional_str(obj, "text"))

    def to_json(self) -> dict:
        payload: dict = {"uri": self.uri}
        if self.text is not None:
            payload["text"] = self.text
        return payload


@dataclass
class UriParams:
    """``diagnostics``/``close``/``cancel``/``project_diagnostics``."""

    uri: str

    @classmethod
    def from_json(cls, obj: dict) -> "UriParams":
        return cls(uri=_require_str(obj, "uri"))

    def to_json(self) -> dict:
        return {"uri": self.uri}


@dataclass
class ProjectOpenParams:
    """``project_open``: the project root directory."""

    root: str

    @classmethod
    def from_json(cls, obj: dict) -> "ProjectOpenParams":
        return cls(root=_require_str(obj, "root"))

    def to_json(self) -> dict:
        return {"root": self.root}


# ---------------------------------------------------------------------------
# payload codecs (server -> client)
# ---------------------------------------------------------------------------
#
# Field declaration order *is* the JSON key order (``to_json`` walks the
# dataclass fields), which keeps v2 transcript replays byte-identical.


class _Payload:
    """Shared to_json/from_json over the dataclass fields."""

    #: Fields added after a payload first shipped, keyed by the protocol
    #: version that introduced them; ``to_json(version)`` omits fields
    #: newer than the requested version, so growing a v2 payload (e.g.
    #: ``CheckPayload.timings``) keeps v2 transcripts byte-identical.
    FIELDS_SINCE: Dict[str, int] = {}

    def to_json(self, version: int = 3) -> dict:
        since = self.FIELDS_SINCE
        return {f.name: getattr(self, f.name) for f in fields(self)
                if since.get(f.name, 2) <= version}

    @classmethod
    def from_json(cls, obj: dict):
        if not isinstance(obj, dict):
            raise ProtocolError("parse-error",
                                f"{cls.__name__} payload must be an object")
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in obj.items() if k in known})


@dataclass
class CheckPayload(_Payload):
    """Result of ``check``/``update`` — the per-edit verdict and counters.

    ``timings`` (v3 only) is the per-stage second breakdown from the span
    tree (:class:`repro.core.result.StageTimings`), so watchers and shells
    report the same stage numbers the trace shows.
    """

    FIELDS_SINCE = {"timings": 3}

    uri: str = ""
    status: str = ""
    ok: bool = False
    diagnostics: List[dict] = field(default_factory=list)
    time_seconds: float = 0.0
    delta_seconds: Optional[float] = None
    queries: int = 0
    warm: bool = False
    solve_stats: Optional[dict] = None
    timings: Optional[dict] = None


@dataclass
class DiagnosticsPayload(_Payload):
    """Result of ``diagnostics`` — the current verdict, no re-check."""

    uri: str = ""
    status: str = ""
    ok: bool = False
    diagnostics: List[dict] = field(default_factory=list)


@dataclass
class ClosePayload(_Payload):
    uri: str = ""
    closed: bool = True


@dataclass
class HelloPayload(_Payload):
    """Result of ``hello`` — what the server speaks, rendered from the
    registry (so it can never disagree with what dispatch accepts)."""

    protocol: str = PROTOCOL_V3
    methods: List[str] = field(default_factory=list)
    tenant: str = ""


@dataclass
class CancelPayload(_Payload):
    """Result of ``cancel`` — whether anything was actually cancelled.

    ``state`` reports what the URI's latest check was doing when the cancel
    arrived: ``"queued"`` (removed before it started), ``"inflight"``
    (cancellation token fired; the check unwinds at its next stage
    boundary) or ``"idle"`` (nothing to cancel).
    """

    uri: str = ""
    cancelled: bool = False
    state: str = "idle"


@dataclass
class StatsPayload(_Payload):
    """Result of ``stats`` — per-tenant queue/latency/cancel counters."""

    protocol: str = PROTOCOL_V3
    tenants: Dict[str, dict] = field(default_factory=dict)
    totals: dict = field(default_factory=dict)


@dataclass
class MetricsPayload(_Payload):
    """Result of ``metrics`` — the unified registry snapshot
    (:class:`repro.obs.metrics.MetricsRegistry`), totals plus per-tenant."""

    protocol: str = PROTOCOL_V3
    totals: dict = field(default_factory=dict)
    tenants: Dict[str, dict] = field(default_factory=dict)


@dataclass
class ShutdownPayload(_Payload):
    shutdown: bool = True
    protocol: str = PROTOCOL_V2
    requests_served: int = 0
    checks_run: int = 0
    store: Optional[dict] = None


@dataclass
class ModulePayload(_Payload):
    """One module's verdict inside the project methods' results."""

    uri: str = ""
    status: str = ""
    ok: bool = False
    diagnostics: List[dict] = field(default_factory=list)


@dataclass
class ProjectBuildPayload(_Payload):
    """Result of ``project_open`` — the initial build of the module graph."""

    status: str = ""
    ok: bool = False
    num_modules: int = 0
    ranks: Dict[str, int] = field(default_factory=dict)
    cyclic: List[str] = field(default_factory=list)
    modules: List[dict] = field(default_factory=list)


@dataclass
class ProjectUpdatePayload(_Payload):
    """Result of ``project_update`` — what one module edit invalidated."""

    path: str = ""
    rechecked: List[str] = field(default_factory=list)
    reused: List[str] = field(default_factory=list)
    summary_changed: bool = False
    ok: bool = False
    queries: int = 0
    modules: List[dict] = field(default_factory=list)


# ---------------------------------------------------------------------------
# the method registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MethodSpec:
    """One protocol method: its codecs, introduction version and doc."""

    name: str
    since: int
    params: type
    payload: type
    doc: str


def _spec(name: str, since: int, params: type, payload: type,
          doc: str) -> Tuple[str, MethodSpec]:
    return name, MethodSpec(name, since, params, payload, doc)


#: The exhaustive method registry.  Insertion order is load-bearing: the
#: first eight entries reproduce the v2 ``METHODS`` tuple (error messages
#: enumerate them in this order), v3-only methods follow.
METHODS: Dict[str, MethodSpec] = dict([
    _spec("check", 2, CheckParams, CheckPayload,
          "Open (or replace) a document and check it."),
    _spec("update", 2, CheckParams, CheckPayload,
          "Re-check an open document incrementally."),
    _spec("diagnostics", 2, UriParams, DiagnosticsPayload,
          "An open document's current verdict (no re-check)."),
    _spec("close", 2, UriParams, ClosePayload,
          "Close an open document, dropping its artifacts."),
    _spec("shutdown", 2, EmptyParams, ShutdownPayload,
          "Stop the server after responding."),
    _spec("project_open", 2, ProjectOpenParams, ProjectBuildPayload,
          "Open a directory as a module graph and build it."),
    _spec("project_update", 2, CheckParams, ProjectUpdatePayload,
          "Replace one module's text and re-check the cut."),
    _spec("project_diagnostics", 2, UriParams, ModulePayload,
          "One module's current diagnostics (no re-check)."),
    _spec("hello", 3, HelloParams, HelloPayload,
          "Identify the protocol and list the methods it speaks."),
    _spec("cancel", 3, UriParams, CancelPayload,
          "Cancel the in-flight or queued check of a URI."),
    _spec("stats", 3, EmptyParams, StatsPayload,
          "Per-tenant queue depth, latency percentiles and counters."),
    _spec("metrics", 3, EmptyParams, MetricsPayload,
          "The unified metrics registry: counters, gauges, histograms."),
])


def method_names(version: int = 3) -> Tuple[str, ...]:
    """The methods available at ``version``, in registry order."""
    return tuple(name for name, spec in METHODS.items()
                 if spec.since <= version)


def spec_for(method: Any, version: int = 3) -> MethodSpec:
    """Resolve a method name, or raise the v2-exact unknown-method error."""
    spec = METHODS.get(method) if isinstance(method, str) else None
    if spec is None or spec.since > version:
        raise ProtocolError(
            "unknown-method",
            f"unknown method {method!r} "
            f"(expected one of {', '.join(method_names(version))})")
    return spec


def describe_methods(version: int = 3) -> List[dict]:
    """The registry rendered for docs and the ``hello`` response."""
    out = []
    for name in method_names(version):
        spec = METHODS[name]
        out.append({
            "method": name,
            "since": PROTOCOLS[spec.since],
            "params": [f.name for f in fields(spec.params)],
            "result": [f.name for f in fields(spec.payload)],
            "doc": spec.doc,
        })
    return out


# ---------------------------------------------------------------------------
# envelopes
# ---------------------------------------------------------------------------


@dataclass
class Request:
    """One decoded request: method + typed params (+ tenant/trace under v3).

    ``trace`` carries the client's active trace id (:mod:`repro.obs.trace`)
    so a fleet's service traffic can be stitched into one cross-process
    trace; like ``tenant`` it only exists on the wire at v3.
    """

    method: str
    id: Any = None
    params: Any = None
    tenant: Optional[str] = None
    trace: Optional[str] = None

    @property
    def uri(self) -> Optional[str]:
        """The target URI, when the params carry one (supersede matching)."""
        return getattr(self.params, "uri", None)

    def to_json(self, version: int = 3) -> dict:
        obj: dict = {"id": self.id, "method": self.method}
        if self.tenant is not None and version >= 3:
            obj["tenant"] = self.tenant
        if self.trace is not None and version >= 3:
            obj["trace"] = self.trace
        params = self.params.to_json() if self.params is not None else {}
        if params:
            obj["params"] = params
        return obj


def decode_request(obj: dict, version: int = 3) -> Request:
    """Decode one request object; raises :class:`ProtocolError`.

    Validation order matches the v2 server (method first, then the params
    shape), so error transcripts replay identically.
    """
    spec = spec_for(obj.get("method"), version)
    params = obj.get("params") or {}
    if not isinstance(params, dict):
        raise ProtocolError("bad-params", "params must be an object")
    tenant = None
    trace = None
    if version >= 3:
        tenant = _optional_str(obj, "tenant", where="request")
        trace = _optional_str(obj, "trace", where="request")
    return Request(method=spec.name, id=obj.get("id"),
                   params=spec.params.from_json(params), tenant=tenant,
                   trace=trace)


@dataclass
class Response:
    """One response: ``ok`` with a result payload, or an error."""

    id: Any = None
    ok: bool = True
    result: Optional[dict] = None
    error_code: Optional[str] = None
    error_message: Optional[str] = None

    @classmethod
    def success(cls, request_id: Any, payload: Any,
                version: int = 3) -> "Response":
        if isinstance(payload, _Payload):
            result = payload.to_json(version)
        elif hasattr(payload, "to_json"):
            result = payload.to_json()
        else:
            result = payload
        return cls(id=request_id, ok=True, result=result)

    @classmethod
    def failure(cls, request_id: Any, code: str,
                message: str) -> "Response":
        return cls(id=request_id, ok=False, error_code=code,
                   error_message=message)

    def raise_for_error(self) -> dict:
        """The result payload, or the error re-raised client-side."""
        if not self.ok:
            raise ProtocolError(self.error_code or "internal-error",
                                self.error_message or "unknown error")
        return self.result if self.result is not None else {}

    def to_json(self) -> dict:
        if self.ok:
            return {"id": self.id, "ok": True, "result": self.result}
        return {"id": self.id, "ok": False,
                "error": {"code": self.error_code,
                          "message": self.error_message}}

    @classmethod
    def from_json(cls, obj: dict) -> "Response":
        if not isinstance(obj, dict):
            raise ProtocolError("parse-error",
                                "response must be a JSON object")
        if obj.get("ok"):
            return cls(id=obj.get("id"), ok=True, result=obj.get("result"))
        error = obj.get("error") or {}
        if not isinstance(error, dict):
            error = {}
        return cls(id=obj.get("id"), ok=False,
                   error_code=error.get("code") or "internal-error",
                   error_message=error.get("message") or "unknown error")


def parse_error_response(message: str) -> Response:
    """The ``id: null`` response for an undecodable input line."""
    return Response.failure(None, "parse-error", message)
