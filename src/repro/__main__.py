"""Command-line interface: ``python -m repro <subcommand> ...``.

Subcommands:

* ``check FILES...`` — check nanoTS source files (the classic mode); exits
  non-zero if any file fails to verify.  ``--format json`` emits structured
  diagnostics with stable error codes; ``--jobs N`` checks in parallel.
* ``bench figure6|figure7|incremental|modules|smt`` — regenerate the
  paper's evaluation tables, the edit-recheck and module-graph scenarios,
  and the fresh-vs-incremental SMT engine comparison.
* ``serve`` — a newline-delimited JSON check/update/diagnostics/shutdown
  loop over stdin/stdout backed by an incremental workspace.
* ``watch FILES...`` — re-check files on mtime change, printing per-edit
  timing deltas.
* ``cache stats|gc|clear|serve|shutdown`` — inspect, maintain and serve
  the persistent artifact store (``--store PATH``, the ``REPRO_STORE``
  environment variable, or the XDG default ``~/.cache/repro/store``).
  ``cache serve --tcp`` runs the fleet cache server; the admin actions
  also accept ``--store remote://host:port`` to manage one remotely.
* ``trace summarize|merge|validate FILES...`` — post-process the Chrome
  trace-event files written by ``check --trace`` / ``REPRO_TRACE``.
* ``explain CODE`` — describe a diagnostic code (e.g. ``RSC-SUB-003``).

The checking subcommands (``check``, ``serve``, ``watch``) take
``--store PATH`` to persist interface summaries, kappa solutions and SMT
verdict memos across processes; with the flag unset the ``REPRO_STORE``
environment variable is consulted, and with neither set no store is used.

For backwards compatibility a bare file list (``python -m repro a.rsc``)
is treated as ``check a.rsc``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import CheckConfig, Session
from repro.errors import ERROR_CATALOG, explain_code

SUBCOMMANDS = ("check", "bench", "cache", "explain", "serve", "trace",
               "watch")

#: Process exit codes of the CLI (stable, part of the public interface).
EXIT_OK = 0
EXIT_UNSAFE = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Refined TypeScript (RSC): refinement type checking "
                    "for nanoTS")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check", help="check nanoTS source files (*.rsc) or a project "
                      "directory (module graph)")
    check.add_argument("files", nargs="+",
                       help="nanoTS source files, or one project directory")
    check.add_argument("--format", choices=("text", "json"), default="text",
                       help="output format (default: text)")
    check.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="check files (or independent modules) with N "
                            "parallel workers; unset defers to the "
                            "config's jobs setting")
    check.add_argument("--show-kappas", action="store_true",
                       help="print the refinements inferred by liquid fixpoint")
    check.add_argument("--quiet", action="store_true",
                       help="only print the per-file verdict")
    check.add_argument("--warnings-as-errors", action="store_true",
                       help="treat warnings as errors in the verdict")
    check.add_argument("--max-iterations", type=int, default=40, metavar="N",
                       help="liquid fixpoint iteration budget (default: 40)")
    check.add_argument("--fixpoint", choices=("worklist", "naive"),
                       default="worklist",
                       help="fixpoint scheduler: dependency-directed worklist "
                            "(default) or the naive global-round sweep")
    check.add_argument("--qualifiers", choices=("default", "harvested"),
                       default="default",
                       help="qualifier pool: built-ins plus harvested "
                            "(default) or program-harvested only")
    check.add_argument("--trace", metavar="FILE", default=None,
                       help="collect hierarchical spans from every "
                            "subsystem and write a Chrome trace-event JSON "
                            "file (load it in Perfetto, or run `repro "
                            "trace summarize FILE`)")
    check.add_argument("--slow-queries", type=int, default=None, metavar="N",
                       help="with --trace: keep the N slowest SMT "
                            "implications in the trace's slow-query log "
                            "(default: 10)")
    _store_flags(check)

    bench = sub.add_parser(
        "bench", help="regenerate the paper's evaluation tables")
    bench.add_argument("table",
                       choices=("figure6", "figure7", "incremental",
                                "modules", "smt", "store", "serve", "cache",
                                "obs", "speed"),
                       help="which table to regenerate (incremental replays "
                            "a scripted edit sequence per benchmark; modules "
                            "replays project edits over the module-split "
                            "ports; smt compares the fresh-solver and "
                            "incremental-context SMT engines; store measures "
                            "cold vs store-warm fresh-process re-checks; "
                            "serve load-tests the multi-tenant socket "
                            "server with concurrent editing clients; cache "
                            "spawns a cache server plus a fleet of fresh "
                            "worker processes sharing it, then re-runs "
                            "under fault injection; obs measures the "
                            "overhead of the tracing layer, disabled vs "
                            "enabled; speed re-checks every port under the "
                            "reference engine configuration and the fast "
                            "one, asserting byte-identical verdicts)")
    bench.add_argument("--only", metavar="NAME", action="append",
                       help="restrict to the named benchmark(s)")
    bench.add_argument("--programs-dir", metavar="DIR", default=None,
                       help="directory holding the benchmark .rsc ports "
                            "(or, for modules, the per-project module "
                            "directories)")
    bench.add_argument("--format", choices=("text", "json"), default="text",
                       help="output format (default: text)")
    bench.add_argument("--out", metavar="FILE", default=None,
                       help="where to write the machine-readable report "
                            "(default: BENCH_fixpoint.json for figure6, "
                            "BENCH_incremental.json for incremental, in the "
                            "current directory, i.e. the repo root in CI)")
    bench.add_argument("--no-compare", action="store_true",
                       help="figure6: skip the naive-engine comparison run "
                            "and the report dump")
    bench.add_argument("--clients", type=int, default=4, metavar="N",
                       help="serve: number of concurrent editing clients "
                            "(default: 4)")
    bench.add_argument("--edit-rate", type=float, default=2.0, metavar="R",
                       help="serve: edits per second each client replays "
                            "(default: 2.0)")
    bench.add_argument("--workers", type=int, default=3, metavar="N",
                       help="cache: fleet worker processes sharing the "
                            "cache server (default: 3)")

    serve = sub.add_parser(
        "serve", help="check service: stdio NDJSON loop (repro-serve/2 "
                      "compatible) or, with --tcp, the multi-tenant "
                      "asyncio socket server (repro-serve/3)")
    serve.add_argument("--tcp", action="store_true",
                       help="serve the repro-serve/3 protocol over TCP "
                            "instead of the stdio v2 loop")
    serve.add_argument("--host", default="127.0.0.1", metavar="HOST",
                       help="TCP bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0, metavar="PORT",
                       help="TCP port (default: 0 = ephemeral; the bound "
                            "port is printed as a JSON line on startup)")
    serve.add_argument("--tenants", type=int, default=None, metavar="N",
                       help="max tenant workspaces kept alive before LRU "
                            "eviction (default: 8)")
    serve.add_argument("--queue-limit", type=int, default=None, metavar="N",
                       help="per-tenant pending-request bound; above it "
                            "requests get a backpressure error "
                            "(default: 16)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="checker thread pool size (default: 4)")
    _workspace_flags(serve)

    watchp = sub.add_parser(
        "watch", help="re-check files whenever their mtime changes")
    watchp.add_argument("files", nargs="+", help="nanoTS source files")
    watchp.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                        help="polling interval (default: 0.5s)")
    watchp.add_argument("--max-scans", type=int, default=None, metavar="N",
                        help="stop after N filesystem scans (default: run "
                             "until interrupted)")
    _workspace_flags(watchp)

    cache = sub.add_parser(
        "cache", help="inspect, maintain and serve the persistent "
                      "artifact store")
    cache.add_argument("action",
                       choices=("stats", "gc", "clear", "serve", "shutdown"),
                       help="stats: entry counts and bytes per artifact "
                            "kind; gc: evict oldest entries down to "
                            "--max-bytes; clear: delete every entry; "
                            "serve: run the TCP cache server over a local "
                            "store; shutdown: stop a running cache server "
                            "(--store remote://host:port)")
    cache.add_argument("--store", metavar="PATH", default=None,
                       help="store location: a path, remote://host:port or "
                            "tiered://PATH?remote=host:port (default: "
                            "$REPRO_STORE, then the XDG cache path "
                            "~/.cache/repro/store)")
    cache.add_argument("--max-bytes", type=int, default=None, metavar="N",
                       help="gc: target size in bytes (default: 256 MiB)")
    cache.add_argument("--format", choices=("text", "json"), default="text",
                       help="output format (default: text)")
    cache.add_argument("--tcp", action="store_true",
                       help="serve: required flag confirming the TCP "
                            "listener (mirrors `repro serve --tcp`)")
    cache.add_argument("--host", default="127.0.0.1", metavar="HOST",
                       help="serve: TCP bind address (default: 127.0.0.1)")
    cache.add_argument("--port", type=int, default=0, metavar="PORT",
                       help="serve: TCP port (default: 0 = ephemeral; the "
                            "bound port is printed as a JSON line on "
                            "startup)")
    cache.add_argument("--fault-drop", type=int, default=0, metavar="N",
                       help="serve: drop every Nth data response (fault "
                            "injection for degradation testing; 0 = off)")
    cache.add_argument("--fault-delay", type=int, default=0, metavar="N",
                       help="serve: delay every Nth data response (0 = off)")
    cache.add_argument("--fault-delay-seconds", type=float, default=0.05,
                       metavar="S",
                       help="serve: how long a --fault-delay response "
                            "sleeps (default: 0.05)")
    cache.add_argument("--fault-corrupt", type=int, default=0, metavar="N",
                       help="serve: corrupt every Nth get-hit payload "
                            "(0 = off)")

    trace = sub.add_parser(
        "trace", help="summarize, merge and validate exported Chrome "
                      "trace-event files (from `repro check --trace` or "
                      "the REPRO_TRACE environment variable)")
    trace.add_argument("action", choices=("summarize", "merge", "validate"),
                       help="summarize: per-subsystem / per-stage / "
                            "per-module / per-tenant breakdown tables; "
                            "merge: combine several per-process traces "
                            "(a fleet's REPRO_TRACE dumps) into one; "
                            "validate: check the trace-event schema")
    trace.add_argument("files", nargs="+",
                       help="trace JSON files (merge accepts several)")
    trace.add_argument("--out", metavar="FILE", default="trace-merged.json",
                       help="merge: where to write the merged trace "
                            "(default: trace-merged.json)")
    trace.add_argument("--format", choices=("text", "json"), default="text",
                       help="output format (default: text)")

    explain = sub.add_parser(
        "explain", help="describe a diagnostic code (e.g. RSC-SUB-003)")
    explain.add_argument("code", nargs="?", default=None,
                         help="the diagnostic code; omit to list all codes")
    return parser


def _store_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="persist interfaces, kappa solutions and SMT "
                             "verdicts under PATH and replay them on "
                             "re-checks (default: $REPRO_STORE; unset "
                             "disables the store)")
    parser.add_argument("--store-mode", choices=("readwrite", "readonly"),
                        default="readwrite",
                        help="readonly replays stored artifacts without "
                             "writing new ones (default: readwrite)")


def _store_path(args: argparse.Namespace) -> Optional[str]:
    """``--store`` beats ``REPRO_STORE``; neither means no store."""
    import os
    if getattr(args, "store", None):
        return args.store
    return os.environ.get("REPRO_STORE") or None


def _workspace_flags(parser: argparse.ArgumentParser) -> None:
    """Config flags shared by the workspace-backed subcommands."""
    parser.add_argument("--max-iterations", type=int, default=40, metavar="N",
                        help="liquid fixpoint iteration budget (default: 40)")
    parser.add_argument("--no-incremental", action="store_true",
                        help="disable artifact caching and warm-started "
                             "fixpoint (every update is a cold check)")
    parser.add_argument("--warnings-as-errors", action="store_true",
                        help="treat warnings as errors in the verdict")
    _store_flags(parser)


def _workspace_config(args: argparse.Namespace) -> CheckConfig:
    return CheckConfig(
        max_fixpoint_iterations=args.max_iterations,
        warnings_as_errors=args.warnings_as_errors,
        incremental=not args.no_incremental,
        store_path=_store_path(args),
        store_mode=getattr(args, "store_mode", "readwrite"),
    )


def cmd_check(args: argparse.Namespace) -> int:
    import pathlib
    try:
        config_kwargs = dict(
            max_fixpoint_iterations=args.max_iterations,
            fixpoint_strategy=args.fixpoint,
            warnings_as_errors=args.warnings_as_errors,
            qualifier_set=args.qualifiers,
            output_format=args.format,
            store_path=_store_path(args),
            store_mode=args.store_mode,
        )
        # An unset --jobs defers to CheckConfig.jobs instead of silently
        # overriding the config with argparse's former default of 1.
        if args.jobs is not None:
            config_kwargs["jobs"] = max(1, args.jobs)
        obs_kwargs = {}
        if args.trace:
            obs_kwargs["trace_path"] = args.trace
        if args.slow_queries is not None:
            obs_kwargs["slow_query_limit"] = args.slow_queries
        if obs_kwargs:
            from repro.core.config import ObsOptions
            config_kwargs["obs"] = ObsOptions(**obs_kwargs)
        config = CheckConfig(**config_kwargs)
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if config.obs.trace_path:
        from repro.obs.trace import tracer
        tracer().enable(slow_limit=config.obs.slow_query_limit)
    directories = [f for f in args.files if pathlib.Path(f).is_dir()]
    if directories:
        if len(args.files) != 1:
            print("repro: a project directory must be the only check "
                  "argument", file=sys.stderr)
            return EXIT_USAGE
        code = _check_project_dir(directories[0], config, args)
        _export_trace(config)
        return code
    session = Session(config)
    batch = session.check_files(args.files)

    if args.format == "json":
        payload = batch.to_dict()
        store_section = _store_section(session)
        if store_section is not None:
            payload["store"] = store_section
        payload["metrics"] = _metrics_section(
            batch.results, session.solver.stats, session.store)
        print(json.dumps(payload, indent=2))
    else:
        for result in batch.results:
            print(f"{result.filename}: {result.summary()}")
            if not args.quiet:
                for diag in result.diagnostics:
                    print(f"  {diag}")
            if args.show_kappas:
                for kappa, quals in sorted(result.kappa_solution.items()):
                    rendered = " && ".join(str(q) for q in quals) or "true"
                    print(f"  {kappa} := {rendered}")
        if len(batch.results) > 1:
            print(batch.summary())

    _export_trace(config)
    if any(d.kind.value == "internal"
           for r in batch.results for d in r.diagnostics):
        return EXIT_USAGE
    return EXIT_OK if batch.ok else EXIT_UNSAFE


def _export_trace(config: CheckConfig) -> None:
    """Write the spans collected under ``--trace`` and note it on stderr
    (stderr so ``--format json`` output stays parseable)."""
    path = config.obs.trace_path
    if not path:
        return
    from repro.obs.trace import tracer
    document = tracer().export(path)
    print(f"repro: trace with {len(document['traceEvents'])} event(s) "
          f"written to {path}", file=sys.stderr)


def _metrics_section(results, solver_stats, store) -> dict:
    """The ``"metrics"`` block of the JSON report: the unified registry
    snapshot built from the run's stats carriers."""
    from repro.core.result import STAGES, StageTimings
    from repro.obs.metrics import registry_from_stats
    timings = StageTimings()
    for result in results:
        if result.timings is not None:
            for stage in STAGES:
                timings.record(stage, getattr(result.timings, stage))
    backend = None
    if store is not None and hasattr(store.backend, "counters"):
        backend = store.backend.counters()
    registry = registry_from_stats(
        timings=timings, solver=solver_stats,
        store=store.counters() if store is not None else None,
        backend=backend)
    return registry.to_dict()


def _store_section(session) -> Optional[dict]:
    """The ``"store"`` block of the JSON report: this process's cache
    traffic plus, for networked backends, their degradation counters —
    how a fleet worker proves (or a bench asserts) it ran warm or ran
    degraded."""
    store = session.store
    if store is None:
        return None
    section = dict(store.counters())
    if hasattr(store.backend, "counters"):
        section["backend"] = store.backend.counters()
    return section


def _check_project_dir(root: str, config: CheckConfig,
                       args: argparse.Namespace) -> int:
    """``repro check <dir>``: check the directory as a module graph."""
    session = Session(config)
    project = session.check_project(root)
    if args.format == "json":
        payload = project.to_dict()
        store_section = _store_section(session)
        if store_section is not None:
            payload["store"] = store_section
        payload["metrics"] = _metrics_section(
            project.results, project.stats, session.store)
        print(json.dumps(payload, indent=2))
        return EXIT_OK if project.ok else EXIT_UNSAFE
    for result in project.results:
        rank = project.ranks.get(result.filename)
        where = ("cycle" if result.filename in project.cyclic
                 else f"rank {rank}")
        print(f"{result.filename} [{where}]: {result.summary()}")
        if not args.quiet:
            for diag in result.diagnostics:
                print(f"  {diag}")
        if args.show_kappas:
            for kappa, quals in sorted(result.kappa_solution.items()):
                rendered = " && ".join(str(q) for q in quals) or "true"
                print(f"  {kappa} := {rendered}")
    print(project.summary())
    return EXIT_OK if project.ok else EXIT_UNSAFE


def cmd_serve(args: argparse.Namespace) -> int:
    try:
        config = _workspace_config(args)
        service_changes = {
            key: value for key, value in (
                ("max_tenants", args.tenants),
                ("queue_limit", args.queue_limit),
                ("workers", args.workers),
            ) if value is not None}
        if service_changes:
            from dataclasses import replace
            config = config.with_options(
                service=replace(config.service, **service_changes))
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.tcp:
        from repro.service.server import run_server
        return run_server(config, host=args.host, port=args.port)
    from repro.serve import serve
    return serve(config=config)


def cmd_watch(args: argparse.Namespace) -> int:
    from repro.watch import watch
    try:
        config = _workspace_config(args)
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_USAGE
    return watch(args.files, config=config, poll_seconds=args.poll,
                 max_scans=args.max_scans)


def _emit_bench_report(args: argparse.Namespace, report: dict,
                       default_out: str, label: str, partial: bool,
                       render_text) -> None:
    """Dump and print a machine-readable bench report.

    A partial (--only) run would clobber a full report with one the
    regression gate reads as missing benchmarks, so it is only written for
    full runs unless the user redirected the output explicitly."""
    import pathlib
    out = args.out or default_out
    dump = not partial or args.out is not None
    if dump:
        pathlib.Path(out).write_text(json.dumps(report, indent=2) + "\n")
    if args.format == "json":
        print(json.dumps(report, indent=2))
        return
    print(render_text())
    if dump:
        print(f"\n{label} report written to {out}")
    else:
        print(f"\npartial run: {label} report not written "
              "(pass --out FILE to dump it)")


def cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench
    import pathlib
    programs_dir = pathlib.Path(args.programs_dir) if args.programs_dir else None
    try:
        if args.table == "serve":
            if args.clients < 1 or args.edit_rate <= 0:
                print("repro: --clients must be >= 1 and --edit-rate > 0",
                      file=sys.stderr)
                return EXIT_USAGE
            load = bench.serve_load(clients=args.clients,
                                    edit_rate=args.edit_rate,
                                    programs_dir=programs_dir)
            _emit_bench_report(
                args, bench.serve_report(load),
                "BENCH_serve.json", "serve", False,
                lambda: bench.format_serve(load))
            return EXIT_OK if load.ok else EXIT_UNSAFE
        if args.table == "cache":
            if args.workers < 2:
                print("repro: --workers must be >= 2 (one cold worker plus "
                      "warm fleet)", file=sys.stderr)
                return EXIT_USAGE
            unknown = [n for n in (args.only or [])
                       if n not in bench.BENCHMARKS]
            if unknown:
                print(f"repro: unknown benchmark(s): {', '.join(unknown)}",
                      file=sys.stderr)
                return EXIT_USAGE
            fleet = bench.cache_fleet(workers=args.workers,
                                      names=args.only,
                                      programs_dir=programs_dir)
            _emit_bench_report(
                args, bench.cache_report(fleet),
                "BENCH_cache.json", "cache", False,
                lambda: bench.format_cache(fleet))
            return EXIT_OK if fleet.ok else EXIT_UNSAFE
        if args.table == "obs":
            names = args.only or list(bench.OBS_BENCHMARKS)
            unknown = [n for n in names if n not in bench.BENCHMARKS]
            if unknown:
                print(f"repro: unknown benchmark(s): {', '.join(unknown)}",
                      file=sys.stderr)
                return EXIT_USAGE
            partial = set(names) != set(bench.OBS_BENCHMARKS)
            rows = bench.obs_rows(names, programs_dir=programs_dir)
            _emit_bench_report(
                args, bench.obs_report(rows),
                "BENCH_obs.json", "obs", partial,
                lambda: bench.format_obs(rows))
            return EXIT_OK if all(row.safe for row in rows) else EXIT_UNSAFE
        known = (bench.MODULE_BENCHMARKS if args.table == "modules"
                 else bench.BENCHMARKS)
        names = args.only or known
        unknown = [n for n in names if n not in known]
        if unknown:
            print(f"repro: unknown benchmark(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return EXIT_USAGE
        partial = set(names) != set(known)
        if args.table == "modules":
            rows = bench.modules_rows(names, modules_dir=programs_dir)
            _emit_bench_report(
                args, bench.modules_report(rows),
                "BENCH_modules.json", "modules", partial,
                lambda: bench.format_modules(rows))
            return EXIT_OK if all(row.safe for row in rows) else EXIT_UNSAFE
        if args.table == "store":
            rows = bench.store_rows(names if partial else None,
                                    programs_dir=programs_dir)
            _emit_bench_report(
                args, bench.store_report(rows),
                "BENCH_store.json", "store", partial,
                lambda: bench.format_store(rows))
            ok = all(row.safe and row.identical for row in rows)
            return EXIT_OK if ok else EXIT_UNSAFE
        if args.table == "speed":
            rows = bench.speed_rows(names if partial else None,
                                    programs_dir=programs_dir)
            _emit_bench_report(
                args, bench.speed_report(rows),
                "BENCH_speed.json", "speed", partial,
                lambda: bench.format_speed(rows))
            ok = all(row.safe and row.identical and row.jobs_identical
                     for row in rows)
            return EXIT_OK if ok else EXIT_UNSAFE
        if args.table == "smt":
            rows = bench.smt_mode_rows(names, programs_dir=programs_dir)
            _emit_bench_report(
                args, bench.smt_report(rows),
                "BENCH_smt.json", "smt", partial,
                lambda: bench.format_smt(rows))
            ok = all(row.safe and row.identical for row in rows)
            return EXIT_OK if ok else EXIT_UNSAFE
        if args.table == "incremental":
            rows = bench.incremental_rows(names, programs_dir=programs_dir)
            _emit_bench_report(
                args, bench.incremental_report(rows),
                "BENCH_incremental.json", "incremental", partial,
                lambda: bench.format_incremental(rows))
            return EXIT_OK if all(row.safe for row in rows) else EXIT_UNSAFE
        if args.table == "figure6":
            if args.no_compare:
                rows = bench.figure6_rows(names, programs_dir=programs_dir)
                if args.format == "json":
                    print(json.dumps([row.to_dict() for row in rows],
                                     indent=2))
                else:
                    print(bench.format_figure6(rows))
                return EXIT_OK if all(row.safe for row in rows) else EXIT_UNSAFE
            rows, comparisons = bench.figure6_with_comparison(
                names, programs_dir=programs_dir)
            _emit_bench_report(
                args, bench.fixpoint_report(rows, comparisons),
                "BENCH_fixpoint.json", "fixpoint", partial,
                lambda: "\n".join([bench.format_figure6(rows), "",
                                   bench.format_fixpoint_comparison(
                                       comparisons)]))
            return EXIT_OK if all(row.safe for row in rows) else EXIT_UNSAFE
        if args.format == "json":
            payload = [{"name": n, "loc": bench.count_loc(
                            bench.source_of(n, programs_dir)),
                        "imp_diff": bench.CODE_CHANGES[n][0],
                        "all_diff": bench.CODE_CHANGES[n][1]}
                       for n in names]
            print(json.dumps(payload, indent=2))
        else:
            print(bench.format_figure7(names, programs_dir=programs_dir))
        return EXIT_OK
    except FileNotFoundError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_USAGE


def cmd_cache(args: argparse.Namespace) -> int:
    import os
    from repro.store import (ArtifactStore, StoreUnavailableError,
                             default_store_path, resolve_store_backend)
    path = (args.store or os.environ.get("REPRO_STORE")
            or default_store_path())
    if args.action == "serve":
        if not args.tcp:
            print("repro: cache serve requires --tcp", file=sys.stderr)
            return EXIT_USAGE
        if "://" in path:
            print(f"repro: cache serve needs a local store path, not "
                  f"{path!r} (the server owns the store it fronts)",
                  file=sys.stderr)
            return EXIT_USAGE
        from repro.store.server import FaultPlan, run_store_server
        faults = None
        if args.fault_drop or args.fault_delay or args.fault_corrupt:
            faults = FaultPlan(drop_every=args.fault_drop,
                               delay_every=args.fault_delay,
                               corrupt_every=args.fault_corrupt,
                               delay_seconds=args.fault_delay_seconds)
        return run_store_server(path, host=args.host, port=args.port,
                                faults=faults)
    try:
        store = ArtifactStore(resolve_store_backend(path))
        if args.action == "shutdown":
            backend = store.backend
            if not hasattr(backend, "shutdown"):
                print(f"repro: cache shutdown needs a remote store "
                      f"(--store remote://host:port), got {path!r}",
                      file=sys.stderr)
                return EXIT_USAGE
            ack = backend.shutdown()
            if args.format == "json":
                print(json.dumps({"store": str(path), **ack}, indent=2))
            else:
                print(f"store: {path}")
                print(f"  server stopped after "
                      f"{ack.get('requests_served', 0)} requests")
            return EXIT_OK
        return _cache_admin(args, store, path)
    except StoreUnavailableError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_USAGE


def _cache_admin(args: argparse.Namespace, store, path: str) -> int:
    from repro.store import DEFAULT_MAX_BYTES
    if args.action == "stats":
        from repro.obs.metrics import registry_from_stats
        stats = store.stats()
        payload = {"store": str(path), **stats.to_dict()}
        backend = (store.backend.counters()
                   if hasattr(store.backend, "counters") else None)
        registry = registry_from_stats(store=store.counters(),
                                       backend=backend)
        for kind, entry in sorted(stats.kinds.items()):
            registry.counter(f"store.entries.{kind}").value = entry.entries
            registry.counter(f"store.bytes.{kind}").value = entry.bytes
        payload["metrics"] = registry.to_dict()
        if args.format == "json":
            print(json.dumps(payload, indent=2))
        else:
            print(f"store: {path}")
            for kind, entry in sorted(stats.kinds.items()):
                print(f"  {kind:10s} {entry.entries:6d} entries  "
                      f"{entry.bytes:10d} bytes")
            print(f"  {'total':10s} {stats.total_entries:6d} entries  "
                  f"{stats.total_bytes:10d} bytes")
            if stats.remote:
                rendered = "  ".join(f"{k}={v}"
                                     for k, v in stats.remote.items())
                print(f"  remote: {rendered}")
        return EXIT_OK
    if args.action == "gc":
        limit = args.max_bytes if args.max_bytes is not None \
            else DEFAULT_MAX_BYTES
        if limit < 0:
            print("repro: --max-bytes must be >= 0", file=sys.stderr)
            return EXIT_USAGE
        result = store.gc(limit)
        payload = {"store": str(path), **result.to_dict()}
        if args.format == "json":
            print(json.dumps(payload, indent=2))
        else:
            print(f"store: {path}")
            print(f"  evicted {result.evicted_entries} entries "
                  f"({result.evicted_bytes} bytes), kept "
                  f"{result.kept_entries} entries "
                  f"({result.kept_bytes} bytes)")
        return EXIT_OK
    removed = store.clear()
    if args.format == "json":
        print(json.dumps({"store": str(path), "removed": removed}, indent=2))
    else:
        print(f"store: {path}")
        print(f"  removed {removed} entries")
    return EXIT_OK


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import summary as obs
    try:
        documents = [obs.load_trace(path) for path in args.files]
    except OSError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ValueError as exc:
        print(f"repro: malformed trace: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.action == "validate":
        problems: List[str] = []
        for path, document in zip(args.files, documents):
            problems += [f"{path}: {p}" for p in
                         obs.validate_trace(document)]
            problems += [f"{path}: {p}" for p in
                         obs.check_nesting(document)]
        if args.format == "json":
            print(json.dumps({"ok": not problems, "problems": problems},
                             indent=2))
        elif problems:
            for problem in problems:
                print(problem)
        else:
            plural = "s" if len(documents) != 1 else ""
            print(f"{len(documents)} trace{plural} valid")
        return EXIT_OK if not problems else EXIT_UNSAFE
    if args.action == "merge":
        import pathlib
        merged = obs.merge_traces(documents)
        pathlib.Path(args.out).write_text(
            json.dumps(merged, indent=2) + "\n")
        note = {"out": args.out,
                "events": len(merged["traceEvents"]),
                "traces_merged": len(documents)}
        if args.format == "json":
            print(json.dumps(note, indent=2))
        else:
            print(f"merged {note['traces_merged']} trace(s), "
                  f"{note['events']} event(s), into {args.out}")
        return EXIT_OK
    document = documents[0] if len(documents) == 1 \
        else obs.merge_traces(documents)
    summary = obs.summarize(document)
    if args.format == "json":
        print(json.dumps(summary, indent=2))
    else:
        print(obs.format_summary(summary))
    return EXIT_OK


def cmd_explain(args: argparse.Namespace) -> int:
    if args.code is None:
        width = max(len(code) for code in ERROR_CATALOG)
        for code, (summary, _detail) in sorted(ERROR_CATALOG.items()):
            print(f"{code:{width}s}  {summary}")
        return EXIT_OK
    entry = explain_code(args.code)
    if entry is None:
        print(f"repro: unknown diagnostic code {args.code!r} "
              f"(try `repro explain` for the full list)", file=sys.stderr)
        return EXIT_USAGE
    summary, detail = entry
    print(f"{args.code.upper()}: {summary}")
    print()
    print(detail)
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # legacy invocation: `python -m repro [flags] file.rsc ...` (the old CLI
    # also accepted flags before the file list)
    if argv and argv[0] not in SUBCOMMANDS and \
            argv[0] not in ("-h", "--help"):
        argv.insert(0, "check")
    args = build_parser().parse_args(argv)
    if args.command == "check":
        return cmd_check(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "watch":
        return cmd_watch(args)
    if args.command == "cache":
        return cmd_cache(args)
    if args.command == "trace":
        return cmd_trace(args)
    return cmd_explain(args)


if __name__ == "__main__":
    raise SystemExit(main())
