"""Command-line interface: ``python -m repro program.rsc [more.rsc ...]``.

Checks each nanoTS source file and prints the diagnostics, mirroring how the
paper's ``rsc`` binary is used on the benchmark files.  Exits non-zero if any
file fails to verify.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro import check_source


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Refined TypeScript (RSC): refinement type checking for nanoTS")
    parser.add_argument("files", nargs="+", help="nanoTS source files (*.rsc)")
    parser.add_argument("--show-kappas", action="store_true",
                        help="print the refinements inferred by liquid fixpoint")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the per-file verdict")
    args = parser.parse_args(argv)

    exit_code = 0
    for name in args.files:
        path = pathlib.Path(name)
        try:
            source = path.read_text()
        except OSError as exc:
            print(f"{name}: cannot read: {exc}", file=sys.stderr)
            exit_code = 2
            continue
        result = check_source(source, filename=str(path))
        verdict = "SAFE" if result.ok else "UNSAFE"
        print(f"{name}: {verdict} ({result.summary()})")
        if not args.quiet:
            for diag in result.diagnostics:
                print(f"  {diag}")
        if args.show_kappas:
            for kappa, quals in sorted(result.kappa_solution.items()):
                rendered = " && ".join(str(q) for q in quals) or "true"
                print(f"  {kappa} := {rendered}")
        if not result.ok:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
