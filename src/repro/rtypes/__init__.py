"""Refinement types: representation, operations and the builtin prelude."""

from repro.rtypes.mutability import Mutability
from repro.rtypes.types import (
    RType,
    TPrim,
    TArray,
    TRef,
    TVar,
    TFun,
    TParam,
    TInter,
    TUnion,
    TExists,
    TObject,
    KVar,
    prim,
    number,
    boolean,
    string,
    void,
    undefined_t,
    null_t,
    array,
    refine,
    strengthen,
    selfify,
    base_of,
    embed,
    subst_types,
    subst_terms,
    free_kvars,
    fresh_name,
)

__all__ = [
    "Mutability",
    "RType", "TPrim", "TArray", "TRef", "TVar", "TFun", "TParam", "TInter",
    "TUnion", "TExists", "TObject", "KVar",
    "prim", "number", "boolean", "string", "void", "undefined_t", "null_t",
    "array", "refine", "strengthen", "selfify", "base_of", "embed",
    "subst_types", "subst_terms", "free_kvars", "fresh_name",
]
