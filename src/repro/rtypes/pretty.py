"""Pretty-printing of refinement types (used in diagnostics and tests)."""

from __future__ import annotations

from repro.rtypes import types as T


def type_to_str(t: "T.RType") -> str:
    base = _shape_str(t)
    if t.pred.is_true():
        return base
    return f"{{v: {base} | {t.pred}}}"


def _shape_str(t: "T.RType") -> str:
    if isinstance(t, T.TPrim):
        return t.name
    if isinstance(t, T.TVar):
        return t.name
    if isinstance(t, T.TArray):
        return f"Array<{t.mutability}, {type_to_str(t.elem)}>"
    if isinstance(t, T.TRef):
        args = ", ".join(type_to_str(a) for a in t.targs)
        suffix = f"<{args}>" if args else ""
        return f"{t.name}{suffix}[{t.mutability}]"
    if isinstance(t, T.TObject):
        fields = ", ".join(f"{name}: {type_to_str(ft)}"
                           for name, (_m, ft) in sorted(t.fields.items()))
        return "{" + fields + "}"
    if isinstance(t, T.TFun):
        tps = f"<{', '.join(t.tparams)}>" if t.tparams else ""
        params = ", ".join(f"{p.name}: {type_to_str(p.type)}" for p in t.params)
        return f"{tps}({params}) => {type_to_str(t.ret)}"
    if isinstance(t, T.TInter):
        return " /\\ ".join(type_to_str(m) for m in t.members)
    if isinstance(t, T.TUnion):
        return " + ".join(type_to_str(m) for m in t.members)
    if isinstance(t, T.TExists):
        return f"exists {t.var}: {type_to_str(t.bound)}. {type_to_str(t.body)}"
    return "value"
