"""Mutability qualifiers (section 4.4, adapted from Immutability Generic Java).

A reference's mutability parameter controls which operations are allowed and
which refinements may be trusted:

* ``IM`` (Immutable)  — no reference can mutate the object; refinements over
  its fields (and, for arrays, over ``len``) are sound.
* ``MU`` (Mutable)    — this (and other) references may mutate the object;
  field refinements must be re-established at every write and cannot be
  assumed to relate to the current value beyond the declared field type.
* ``RO`` (ReadOnly)   — this reference cannot mutate the object but others
  may; supertype of both ``IM`` and ``MU``.
* ``UQ`` (Unique)     — the only reference to the object (freshly
  constructed); may be mutated freely and later frozen to ``IM``.
"""

from __future__ import annotations

from enum import Enum


class Mutability(Enum):
    IMMUTABLE = "IM"
    MUTABLE = "MU"
    READONLY = "RO"
    UNIQUE = "UQ"

    def __str__(self) -> str:
        return self.value

    @property
    def allows_write(self) -> bool:
        """Can a field / element update go through a reference of this kind?"""
        return self in (Mutability.MUTABLE, Mutability.UNIQUE)

    @property
    def allows_length_refinement(self) -> bool:
        """Is ``len`` (or immutable-field) information stable through this
        reference?  Only when nobody can mutate the object underneath us."""
        return self in (Mutability.IMMUTABLE, Mutability.UNIQUE)

    def is_subtype_of(self, other: "Mutability") -> bool:
        """IGJ mutability subtyping: IM <: RO, MU <: RO, UQ <: anything."""
        if self == other:
            return True
        if self is Mutability.UNIQUE:
            return True
        return other is Mutability.READONLY

    @staticmethod
    def parse(text: str) -> "Mutability":
        table = {
            "IM": Mutability.IMMUTABLE, "Immutable": Mutability.IMMUTABLE,
            "MU": Mutability.MUTABLE, "Mutable": Mutability.MUTABLE,
            "RO": Mutability.READONLY, "ReadOnly": Mutability.READONLY,
            "UQ": Mutability.UNIQUE, "Unique": Mutability.UNIQUE,
        }
        if text not in table:
            raise ValueError(f"unknown mutability qualifier: {text!r}")
        return table[text]
