"""Refinement type representation and the core operations on types.

A refinement type pairs a *shape* (number, array, class reference, function,
union, ...) with a logical *refinement* predicate over the reserved value
variable ``v`` (written :data:`repro.logic.terms.VALUE_VAR`).  For example::

    {v: number | 0 <= v}                      TPrim("number", 0 <= v)
    {v: number[] | 0 < len(v)}                TArray(number(), IM, 0 < len(v))
    (a: T[], i: idx<a>) => T                  TFun([...], ...)

Liquid-type inference introduces *refinement variables* (kappas).  A kappa
occurrence is represented as an application of a reserved uninterpreted
function ``$kN(v, x1, ..., xm)`` whose arguments record the pending
substitution — this lets the ordinary term-substitution machinery apply
substitutions to kappas for free.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.logic import builtins
from repro.logic.sorts import BOOL
from repro.logic.terms import (
    App,
    Expr,
    Var,
    VALUE_VAR,
    conj,
    disj,
    eq,
    free_vars,
    substitute,
    true,
)
from repro.rtypes.mutability import Mutability

# ---------------------------------------------------------------------------
# Kappa (refinement variable) helpers
# ---------------------------------------------------------------------------

KVAR_PREFIX = "$k"


@dataclass(frozen=True)
class KVar:
    """A refinement variable identifier (its occurrences are App terms)."""

    name: str

    def __str__(self) -> str:
        return self.name


def kvar_occurrence(name: str, scope_vars: Sequence[str]) -> App:
    """Build the occurrence term ``name(v, x1, ..., xn)``."""
    args = (VALUE_VAR,) + tuple(Var(x) for x in scope_vars)
    return App(name, args, BOOL)


def is_kvar_app(e: Expr) -> bool:
    return isinstance(e, App) and e.fn.startswith(KVAR_PREFIX)


_counter = itertools.count()


def fresh_name(prefix: str = "t") -> str:
    return f"{prefix}_{next(_counter)}"


def fresh_kvar(scope_vars: Sequence[str]) -> App:
    return kvar_occurrence(f"{KVAR_PREFIX}{next(_counter)}", scope_vars)


# ---------------------------------------------------------------------------
# Type nodes
# ---------------------------------------------------------------------------


@dataclass
class RType:
    """Base class for all refinement types."""

    pred: Expr = field(default_factory=true)

    def with_pred(self, pred: Expr) -> "RType":
        return replace(self, pred=pred)

    # The helpers below are overridden where meaningful.
    def base_name(self) -> str:
        return "value"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        from repro.rtypes.pretty import type_to_str
        return type_to_str(self)


PRIM_NAMES = ("number", "boolean", "string", "void", "undefined", "null",
              "any", "top", "bot")


@dataclass
class TPrim(RType):
    """A refined primitive: ``{v: number | p}`` etc."""

    name: str = "number"

    def base_name(self) -> str:
        return self.name


@dataclass
class TVar(RType):
    """An occurrence of a generic type variable ``A``."""

    name: str = "A"

    def base_name(self) -> str:
        return self.name


@dataclass
class TArray(RType):
    """An array type with element type, mutability and refinement."""

    elem: RType = field(default_factory=lambda: TPrim(name="number"))
    mutability: Mutability = Mutability.IMMUTABLE

    def base_name(self) -> str:
        return "array"


@dataclass
class TRef(RType):
    """A reference to a named class or interface, e.g. ``Field<IM>``."""

    name: str = "Object"
    targs: Tuple[RType, ...] = ()
    mutability: Mutability = Mutability.MUTABLE

    def base_name(self) -> str:
        return self.name


@dataclass
class TObject(RType):
    """A structural object-literal type: field name -> (mutability, type)."""

    fields: Dict[str, Tuple[Mutability, RType]] = field(default_factory=dict)
    mutability: Mutability = Mutability.MUTABLE

    def base_name(self) -> str:
        return "object"


@dataclass
class TParam:
    """A named function parameter with its (possibly dependent) type."""

    name: str
    type: RType

    def __str__(self) -> str:
        return f"{self.name}: {self.type}"


@dataclass
class TFun(RType):
    """A (possibly generic, dependent) function type."""

    tparams: Tuple[str, ...] = ()
    params: Tuple[TParam, ...] = ()
    ret: RType = field(default_factory=lambda: TPrim(name="void"))

    def base_name(self) -> str:
        return "function"

    def arity(self) -> int:
        return len(self.params)

    def param_names(self) -> List[str]:
        return [p.name for p in self.params]


@dataclass
class TInter(RType):
    """An intersection of function types — a value-overloaded function."""

    members: Tuple[TFun, ...] = ()

    def base_name(self) -> str:
        return "function"


@dataclass
class TUnion(RType):
    """A union type ``T1 + T2 + ...``."""

    members: Tuple[RType, ...] = ()

    def base_name(self) -> str:
        return "union"


@dataclass
class TExists(RType):
    """An existential ``exists x: S. T`` produced by type inference."""

    var: str = "_x"
    bound: RType = field(default_factory=lambda: TPrim(name="number"))
    body: RType = field(default_factory=lambda: TPrim(name="number"))

    def base_name(self) -> str:
        return self.body.base_name()


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def prim(name: str, pred: Optional[Expr] = None) -> TPrim:
    return TPrim(pred=pred if pred is not None else true(), name=name)


def number(pred: Optional[Expr] = None) -> TPrim:
    return prim("number", pred)


def boolean(pred: Optional[Expr] = None) -> TPrim:
    return prim("boolean", pred)


def string(pred: Optional[Expr] = None) -> TPrim:
    return prim("string", pred)


def void() -> TPrim:
    return prim("void")


def undefined_t() -> TPrim:
    return prim("undefined")


def null_t() -> TPrim:
    return prim("null")


def array(elem: RType, mutability: Mutability = Mutability.IMMUTABLE,
          pred: Optional[Expr] = None) -> TArray:
    return TArray(pred=pred if pred is not None else true(), elem=elem,
                  mutability=mutability)


def refine(t: RType, pred: Expr) -> RType:
    """The strengthening operator ``T (+) p`` from the paper."""
    if isinstance(t, TExists):
        return replace(t, body=refine(t.body, pred))
    if pred.is_true():
        return t
    return t.with_pred(conj(t.pred, pred))


strengthen = refine


def selfify(t: RType, term: Expr) -> RType:
    """``self(T, t) = T (+) (v = t)`` — exact-value strengthening."""
    if isinstance(t, (TFun, TInter)) or (isinstance(t, TPrim) and t.name == "void"):
        return t
    return refine(t, eq(VALUE_VAR, term))


def base_of(t: RType) -> RType:
    """Erase all refinements, keeping only the shape (``|T|`` in the paper)."""
    if isinstance(t, TExists):
        return base_of(t.body)
    if isinstance(t, TPrim):
        return TPrim(name=t.name)
    if isinstance(t, TVar):
        return TVar(name=t.name)
    if isinstance(t, TArray):
        return TArray(elem=base_of(t.elem), mutability=t.mutability)
    if isinstance(t, TRef):
        return TRef(name=t.name, targs=tuple(base_of(a) for a in t.targs),
                    mutability=t.mutability)
    if isinstance(t, TObject):
        return TObject(fields={k: (m, base_of(ft)) for k, (m, ft) in t.fields.items()},
                       mutability=t.mutability)
    if isinstance(t, TFun):
        return TFun(tparams=t.tparams,
                    params=tuple(TParam(p.name, base_of(p.type)) for p in t.params),
                    ret=base_of(t.ret))
    if isinstance(t, TInter):
        return TInter(members=tuple(base_of(m) for m in t.members))
    if isinstance(t, TUnion):
        return TUnion(members=tuple(base_of(m) for m in t.members))
    return t.with_pred(true())


# ---------------------------------------------------------------------------
# Embedding types into the logic
# ---------------------------------------------------------------------------

_TTAG_BY_PRIM = {
    "number": "number",
    "boolean": "boolean",
    "string": "string",
    "undefined": "undefined",
}

#: Optional hook installed by the checker: maps (class name, term) to the
#: class invariant predicate ``inv(C, term)``.  Kept as a module-level hook so
#: the type layer does not depend on the class table.
_INVARIANT_HOOK = None


def set_invariant_hook(hook) -> None:
    """Install (or clear, with ``None``) the class-invariant provider."""
    global _INVARIANT_HOOK
    _INVARIANT_HOOK = hook


def shape_pred(t: RType, term: Expr) -> Expr:
    """The logical facts implied by ``term`` having the *shape* of ``t``."""
    if isinstance(t, TExists):
        return shape_pred(t.body, term)
    if isinstance(t, TPrim):
        tag = _TTAG_BY_PRIM.get(t.name)
        if tag is not None:
            return eq(builtins.ttag_of(term), Expr_str(tag))
        return true()
    if isinstance(t, TArray):
        from repro.logic.terms import IntLit, le
        return conj(eq(builtins.ttag_of(term), Expr_str("object")),
                    le(IntLit(0), builtins.len_of(term)))
    if isinstance(t, TObject):
        return eq(builtins.ttag_of(term), Expr_str("object"))
    if isinstance(t, TRef):
        facts = [eq(builtins.ttag_of(term), Expr_str("object")),
                 builtins.instanceof_of(term, Expr_str(t.name)),
                 builtins.impl_of(term, Expr_str(t.name))]
        if _INVARIANT_HOOK is not None:
            facts.append(_INVARIANT_HOOK(t.name, term))
        return conj(*facts)
    if isinstance(t, (TFun, TInter)):
        return eq(builtins.ttag_of(term), Expr_str("function"))
    if isinstance(t, TUnion):
        return disj(*[conj(shape_pred(m, term), substitute(m.pred, {VALUE_VAR.name: term}))
                      for m in t.members])
    return true()


def Expr_str(value: str) -> Expr:
    from repro.logic.terms import StrLit
    return StrLit(value)


def embed(t: RType, term: Expr, include_shape: bool = True) -> Expr:
    """The logical meaning of ``term : t`` — ``[term/v] pred  /\\  shape facts``.

    Existentials are embedded by substituting the bound variable's embedding
    conjunctively (sound weakening: the witness facts are kept, the binder is
    left as an opaque name, which is fresh by construction)."""
    parts: List[Expr] = []
    current = t
    while isinstance(current, TExists):
        bound_var = Var(current.var)
        parts.append(embed(current.bound, bound_var, include_shape))
        current = current.body
    parts.append(substitute(current.pred, {VALUE_VAR.name: term}))
    if include_shape:
        parts.append(shape_pred(current, term))
    if isinstance(current, TUnion):
        # the union's member facts are already the shape disjunction
        pass
    return conj(*parts)


# ---------------------------------------------------------------------------
# Substitutions
# ---------------------------------------------------------------------------


def subst_terms(t: RType, mapping: Mapping[str, Expr]) -> RType:
    """Substitute term variables inside every refinement of ``t``."""
    if not mapping:
        return t
    new_pred = substitute(t.pred, mapping)
    if isinstance(t, TArray):
        return replace(t, pred=new_pred, elem=subst_terms(t.elem, mapping))
    if isinstance(t, TRef):
        return replace(t, pred=new_pred,
                       targs=tuple(subst_terms(a, mapping) for a in t.targs))
    if isinstance(t, TObject):
        return replace(t, pred=new_pred,
                       fields={k: (m, subst_terms(ft, mapping))
                               for k, (m, ft) in t.fields.items()})
    if isinstance(t, TFun):
        # Respect binder shadowing: parameters shadow outer names.
        inner = {k: v for k, v in mapping.items()
                 if k not in (p.name for p in t.params)}
        return replace(t, pred=new_pred,
                       params=tuple(TParam(p.name, subst_terms(p.type, inner))
                                    for p in t.params),
                       ret=subst_terms(t.ret, inner))
    if isinstance(t, TInter):
        return replace(t, pred=new_pred,
                       members=tuple(subst_terms(m, mapping) for m in t.members))
    if isinstance(t, TUnion):
        return replace(t, pred=new_pred,
                       members=tuple(subst_terms(m, mapping) for m in t.members))
    if isinstance(t, TExists):
        inner = {k: v for k, v in mapping.items() if k != t.var}
        return replace(t, pred=new_pred,
                       bound=subst_terms(t.bound, mapping),
                       body=subst_terms(t.body, inner))
    return t.with_pred(new_pred)


def subst_types(t: RType, mapping: Mapping[str, RType]) -> RType:
    """Substitute type variables by types (generic instantiation)."""
    if not mapping:
        return t
    if isinstance(t, TVar) and t.name in mapping:
        replacement = mapping[t.name]
        # carry any refinement present on the occurrence
        return refine(replacement, t.pred) if not t.pred.is_true() else replacement
    if isinstance(t, TArray):
        return replace(t, elem=subst_types(t.elem, mapping))
    if isinstance(t, TRef):
        return replace(t, targs=tuple(subst_types(a, mapping) for a in t.targs))
    if isinstance(t, TObject):
        return replace(t, fields={k: (m, subst_types(ft, mapping))
                                  for k, (m, ft) in t.fields.items()})
    if isinstance(t, TFun):
        inner = {k: v for k, v in mapping.items() if k not in t.tparams}
        return replace(t, params=tuple(TParam(p.name, subst_types(p.type, inner))
                                       for p in t.params),
                       ret=subst_types(t.ret, inner))
    if isinstance(t, TInter):
        return replace(t, members=tuple(subst_types(m, mapping) for m in t.members))
    if isinstance(t, TUnion):
        return replace(t, members=tuple(subst_types(m, mapping) for m in t.members))
    if isinstance(t, TExists):
        return replace(t, bound=subst_types(t.bound, mapping),
                       body=subst_types(t.body, mapping))
    return t


def free_kvars(t: RType) -> set[str]:
    """All refinement-variable names occurring in ``t``."""
    out: set[str] = set()

    def scan_pred(p: Expr) -> None:
        from repro.logic.terms import subterms
        for sub in subterms(p):
            if is_kvar_app(sub):
                out.add(sub.fn)

    def scan(ty: RType) -> None:
        scan_pred(ty.pred)
        if isinstance(ty, TArray):
            scan(ty.elem)
        elif isinstance(ty, TRef):
            for a in ty.targs:
                scan(a)
        elif isinstance(ty, TObject):
            for _, ft in ty.fields.values():
                scan(ft)
        elif isinstance(ty, TFun):
            for p in ty.params:
                scan(p.type)
            scan(ty.ret)
        elif isinstance(ty, (TInter, TUnion)):
            for m in ty.members:
                scan(m)
        elif isinstance(ty, TExists):
            scan(ty.bound)
            scan(ty.body)

    scan(t)
    return out


def type_free_vars(t: RType) -> set[str]:
    """All term variables mentioned in the refinements of ``t``."""
    out: set[str] = set()

    def scan(ty: RType) -> None:
        out.update(free_vars(ty.pred))
        if isinstance(ty, TArray):
            scan(ty.elem)
        elif isinstance(ty, TRef):
            for a in ty.targs:
                scan(a)
        elif isinstance(ty, TObject):
            for _, ft in ty.fields.values():
                scan(ft)
        elif isinstance(ty, TFun):
            for p in ty.params:
                scan(p.type)
            scan(ty.ret)
        elif isinstance(ty, (TInter, TUnion)):
            for m in ty.members:
                scan(m)
        elif isinstance(ty, TExists):
            scan(ty.bound)
            scan(ty.body)

    scan(t)
    out.discard(VALUE_VAR.name)
    return out


def unpack_exists(t: RType) -> Tuple[List[Tuple[str, RType]], RType]:
    """Open nested existentials, returning the binders and the inner type."""
    binders: List[Tuple[str, RType]] = []
    while isinstance(t, TExists):
        binders.append((t.var, t.bound))
        t = t.body
    return binders, t


def exists(binders: Iterable[Tuple[str, RType]], body: RType) -> RType:
    """Wrap ``body`` in existentials for each (name, bound) pair."""
    result = body
    for name, bound in reversed(list(binders)):
        result = TExists(pred=true(), var=name, bound=bound, body=result)
    return result
