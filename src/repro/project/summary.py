"""Per-module interface summaries.

A :class:`ModuleSummary` is the *externally observable* face of one module:
for every ``export``-marked declaration, a body-less rendering of its
signature as nanoTS source.  Checking an importing module injects the
rendered declarations (an *interface prelude*) into its document, so the
module is verified against its dependencies' refinement-typed interfaces —
never their bodies.  This is the modular-verification cut of the project
subsystem:

* exported **functions** contribute their ``spec`` overloads (refinement
  types) plus a body-less ``function`` head, which the importer's resolver
  turns into the same :class:`repro.rtypes.types.TFun`/``TInter`` the
  defining module was checked under;
* exported **classes** contribute their shape — fields, invariant, method
  *signatures* (bodies stripped) — plus the constructor *including its
  body*: ``this.f = p`` assignments feed ``ctor_field_params``, which
  importing modules' ``new`` expressions consume, so the constructor body is
  interface, exactly as :mod:`repro.core.fingerprint` already classifies it;
* exported **type aliases, enums, interfaces and ambient declares** are
  interface wholesale;
* exported **qualifiers** ride along with *every* import from the module
  (they are unnamed predicate templates that seed liquid inference).

Importing any name injects the module's *entire* interface
(:meth:`ModuleSummary.interface_decls`): exported signatures may reference
sibling exports, and injecting only the requested names would silently drop
their refinement obligations in the importer.  The import name list is
still validated against the export set (``RSC-MOD-003``).

The summary's :attr:`~ModuleSummary.fingerprint` hashes the full rendered
interface.  The incremental project workspace re-checks a module's
dependents only when this fingerprint moved — a body-only edit leaves it
unchanged and stops at the module boundary.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lang import ast
from repro.lang.printer import render_decl


def _strip(decl: ast.Declaration) -> ast.Declaration:
    """A copy of ``decl`` reduced to its interface (bodies dropped)."""
    if isinstance(decl, ast.FunctionDecl):
        return dataclasses.replace(decl, body=None, exported=False)
    if isinstance(decl, ast.ClassDecl):
        methods = [ast.MethodDecl(sig=m.sig, body=None, specs=list(m.specs))
                   for m in decl.methods]
        return dataclasses.replace(decl, methods=methods, exported=False)
    return dataclasses.replace(decl, exported=False)


@dataclass
class ModuleSummary:
    """The rendered interface of one module, keyed by exported name."""

    path: str
    #: exported name -> rendered interface declarations for that name
    exports: Dict[str, List[str]] = field(default_factory=dict)
    #: rendered ``qualifier`` declarations, injected with any import
    qualifiers: List[str] = field(default_factory=list)
    #: hex digest of the full rendered interface
    fingerprint: str = ""

    def has(self, name: str) -> bool:
        return name in self.exports

    @property
    def names(self) -> List[str]:
        return sorted(self.exports)

    def interface_decls(self) -> List[str]:
        """Every rendered interface declaration, in declaration order.

        Importing *anything* from a module injects its whole interface:
        an exported signature may reference sibling exported types (a spec
        over an exported alias, a class extending an exported class), and
        injecting only the requested names would silently drop those
        refinement obligations in the importer.  The import name list
        still governs RSC-MOD-003 (unknown export) checking.
        """
        decls: List[str] = []
        for name in self.exports:
            decls.extend(self.exports[name])
        decls.extend(self.qualifiers)
        return decls


def summarize_program(path: str,
                      program: Optional[ast.Program]) -> ModuleSummary:
    """Build the interface summary of a parsed module.

    A module that failed to parse (``program is None``) summarises to an
    empty interface under a sentinel fingerprint distinct from every real
    interface's.  All unparsable states of a module share it — sound,
    because they also share the identical (empty) interface — and the
    fingerprint moves as soon as the module parses again, re-checking
    dependents.
    """
    summary = ModuleSummary(path=path)
    if program is None:
        summary.fingerprint = "unparsed:" + hashlib.sha256(
            path.encode()).hexdigest()
        return summary
    specs_by_name: Dict[str, List[ast.SpecDecl]] = {}
    for decl in program.declarations:
        if isinstance(decl, ast.SpecDecl):
            specs_by_name.setdefault(decl.name, []).append(decl)
    exported_specs: Dict[str, bool] = {}
    for decl in program.declarations:
        if not decl.exported:
            continue
        if isinstance(decl, ast.QualifierDecl):
            summary.qualifiers.append(render_decl(_strip(decl)))
            continue
        name = getattr(decl, "name", None)
        if name is None:
            continue
        entry = summary.exports.setdefault(name, [])
        if isinstance(decl, ast.FunctionDecl):
            # A function's interface is its spec overloads plus a body-less
            # head; specs of an exported function are exported with it.
            if not exported_specs.get(name):
                entry.extend(render_decl(_strip(s))
                             for s in specs_by_name.get(name, []))
                exported_specs[name] = True
            entry.append(render_decl(_strip(decl)))
        elif isinstance(decl, ast.SpecDecl):
            if exported_specs.get(name):
                continue
            exported_specs[name] = True
            entry.extend(render_decl(_strip(s))
                         for s in specs_by_name.get(name, []))
            # `export spec f` without an exported body still makes f
            # callable from importers: emit a body-less head unless the
            # function declaration is exported itself (it then adds one).
            fn = next((d for d in program.declarations
                       if isinstance(d, ast.FunctionDecl) and d.name == name),
                      None)
            if fn is None:
                entry.append(render_decl(ast.FunctionDecl(name=name)))
            elif not fn.exported:
                entry.append(render_decl(_strip(fn)))
        else:
            entry.append(render_decl(_strip(decl)))
    digest = hashlib.sha256()
    for name in sorted(summary.exports):
        digest.update(name.encode())
        for rendered in summary.exports[name]:
            digest.update(rendered.encode())
    for rendered in summary.qualifiers:
        digest.update(rendered.encode())
    summary.fingerprint = digest.hexdigest()
    return summary
