"""The incremental project workspace: edit one module, re-check the cut.

A :class:`ProjectWorkspace` composes the module graph with the per-document
incremental :class:`repro.core.workspace.Workspace`:

* every module's *document* (its source plus the interface prelude of its
  imports) is held open in one shared workspace, so re-checks inside a
  module warm-start the liquid fixpoint exactly as single-file editing does;
* :meth:`update` re-parses the edited module and compares its
  :class:`~repro.project.summary.ModuleSummary` fingerprint with the
  previous one — a **body-only edit** leaves the interface untouched, so
  exactly one module is re-checked and the edit stops at the module
  boundary; a **signature edit** re-checks the module plus its transitive
  dependents, in dependency order (each dependent sees a changed interface
  prelude, which the inner workspace's signature fingerprint correctly
  treats as a cold-solve cause, while *unchanged* dependents' documents hit
  the content-hash artifact cache).

Soundness discipline matches PR 3: the test-suite asserts that after any
edit sequence, every module's diagnostics are identical to a from-scratch
cold project build of the same sources.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.cancel import CancelToken, checkpoint
from repro.core.config import CheckConfig
from repro.core.result import CheckResult
from repro.core.workspace import Workspace
from repro.project.build import (assemble_result, attach_module_diagnostics,
                                 skipped_result)
from repro.project.graph import ModuleGraph
from repro.project.result import ProjectResult

PathLike = Union[str, pathlib.Path]


@dataclass
class ProjectUpdate:
    """What one :meth:`ProjectWorkspace.update` actually did."""

    path: str
    #: modules re-checked by this update, in check order
    rechecked: List[str] = field(default_factory=list)
    #: modules whose artifacts were reused untouched
    reused: List[str] = field(default_factory=list)
    #: did the edited module's interface fingerprint move?
    summary_changed: bool = False
    results: Dict[str, CheckResult] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results.values())

    @property
    def queries(self) -> int:
        return sum(r.stats.queries for r in self.results.values()
                   if r.stats is not None)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "rechecked": list(self.rechecked),
            "reused": list(self.reused),
            "summary_changed": self.summary_changed,
            "ok": self.ok,
            "queries": self.queries,
        }


class ProjectWorkspace:
    """Long-lived module graph over one shared incremental workspace."""

    def __init__(self, root: Optional[PathLike] = None,
                 config: Optional[CheckConfig] = None,
                 pattern: str = "**/*.rsc",
                 sources: Optional[Dict[str, str]] = None) -> None:
        if (root is None) == (sources is None):
            raise ValueError("pass exactly one of root= or sources=")
        self.config = config or CheckConfig()
        self.workspace = Workspace(self.config)
        if sources is not None:
            self._sources = {str(pathlib.Path(p).resolve()): text
                             for p, text in sources.items()}
        else:
            self._sources = {
                str(p.resolve()): p.read_text()
                for p in sorted(pathlib.Path(root).glob(pattern))
                if p.is_file()}
        # The inner workspace's store (if the config selects one) also
        # serves the module graph's interface summaries, so its hit/miss
        # counters see the whole project's store traffic.
        self.graph = ModuleGraph.from_sources(dict(self._sources),
                                              store=self.workspace.store)
        self._results: Dict[str, CheckResult] = {}
        self._checked = False

    # -- full build --------------------------------------------------------

    def check(self) -> ProjectResult:
        """The initial (cold) build of every module, in dependency order."""
        start = time.perf_counter()
        for path in self.graph.cyclic:
            self._results[path] = skipped_result(self.graph, path)
        for batch in self.graph.batches():
            for path in batch:
                self._check_one(path)
        self._checked = True
        result = self.project_result()
        result.time_seconds = time.perf_counter() - start
        return result

    # -- incremental editing -----------------------------------------------

    def update(self, path: PathLike,
               text: Optional[str] = None,
               token: Optional[CancelToken] = None) -> ProjectUpdate:
        """Replace one module's source and re-check what it invalidated.

        ``text=None`` re-reads the module from disk.  Unknown paths are
        added to the project as new modules.  A ``token`` makes the update
        cancellable: it is polled between module re-checks (and inside each
        module's pipeline), and a fired token raises
        :class:`repro.core.cancel.CheckCancelled` — modules already
        re-checked keep their fresh verdicts, the rest keep their previous
        ones.
        """
        if not self._checked:
            self.check()
        resolved = str(pathlib.Path(path).resolve())
        if text is None:
            text = pathlib.Path(resolved).read_text()
        previous = self.graph.modules.get(resolved)
        previous_fp = previous.summary.fingerprint if previous else None
        previously_cyclic = set(self.graph.cyclic)

        self._sources[resolved] = text
        # Unchanged modules reuse their parsed AST and summary from the
        # previous graph — a one-module edit re-parses one module.
        self.graph = ModuleGraph.from_sources(dict(self._sources),
                                              cache=self.graph.modules,
                                              store=self.workspace.store)
        module = self.graph.modules[resolved]
        summary_changed = module.summary.fingerprint != previous_fp

        dirty = {resolved}
        if summary_changed:
            dirty.update(self.graph.transitive_dependents(resolved))
        # An edit can create, break or *reshape* import cycles; every module
        # that is (or was) on one gets a fresh verdict — a module staying
        # cyclic must still re-render its diagnostic when the cycle's
        # composition changed.  Refreshing a skipped verdict is cheap.
        dirty.update(previously_cyclic | set(self.graph.cyclic))

        update = ProjectUpdate(path=resolved, summary_changed=summary_changed)
        cyclic = set(self.graph.cyclic)
        for target in sorted(dirty,
                             key=lambda p: (self.graph.ranks.get(p, 0), p)):
            checkpoint(token)
            if target in cyclic:
                self._results[target] = skipped_result(self.graph, target)
            else:
                self._check_one(target, token)
            update.rechecked.append(target)
            update.results[target] = self._results[target]
        update.reused = [p for p in self.graph.paths if p not in dirty]
        return update

    # -- queries -----------------------------------------------------------

    def diagnostics(self, path: PathLike) -> List:
        resolved = str(pathlib.Path(path).resolve())
        return list(self._results[resolved].diagnostics)

    def result(self, path: PathLike) -> CheckResult:
        return self._results[str(pathlib.Path(path).resolve())]

    def modules(self) -> List[str]:
        return self.graph.paths

    def project_result(self) -> ProjectResult:
        """The current per-module verdicts assembled as a ProjectResult."""
        return assemble_result(self.graph, self._results)

    # -- helpers -----------------------------------------------------------

    def _check_one(self, path: str,
                   token: Optional[CancelToken] = None) -> None:
        text = self.graph.document_text(path)
        result = self.workspace.open(path, text, token=token)
        self._results[path] = attach_module_diagnostics(
            self.graph, path, result)
