"""The module graph: import resolution, cycles, deterministic topo ranks.

A :class:`ModuleGraph` is built from a project root (every ``*.rsc`` under
it) or an explicit file list.  Each module is parsed once; its ``import``
declarations are resolved against the importing file's directory (with
``.rsc`` appended when the specifier has no suffix).  The graph then yields:

* ``RSC-MOD-001`` diagnostics for imports whose target file does not exist,
* ``RSC-MOD-002`` diagnostics for every module on an import cycle (reported
  with a deterministic cycle rendering, smallest member first),
* :attr:`~ModuleGraph.ranks` — deterministic topological ranks over the
  acyclic modules: rank 0 modules import nothing (or only missing/cyclic
  modules), rank *r* modules import only ranks < *r*.  Modules sharing a
  rank are independent, which is exactly what the build scheduler exploits
  to check them concurrently.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import Diagnostic, ErrorKind, ParseError, SourceSpan
from repro.lang import ast, parse_program
from repro.project.summary import ModuleSummary, summarize_program
from repro.store import ArtifactStore, ModuleArtifact


def resolve_specifier(importer: pathlib.Path, specifier: str) -> str:
    """The path a module specifier denotes, relative to the importing file.

    ``.rsc`` is appended unless the specifier already carries it — a dotted
    stem (``"./v1.0-types"``) is a name, not an extension."""
    target = pathlib.Path(specifier)
    if target.suffix != ".rsc":
        target = target.with_name(target.name + ".rsc")
    if not target.is_absolute():
        target = importer.parent / target
    return str(target.resolve())


@dataclass
class ResolvedImport:
    """One ``import`` statement with its specifier resolved to a path."""

    names: List[str]
    specifier: str
    target: str
    span: SourceSpan
    exists: bool = True


@dataclass
class Module:
    """One project module: source, AST (if it parses), resolved imports.

    ``parses`` records the parse outcome independently of ``program`` —
    a module served from the persistent artifact store carries its summary,
    imports and diagnostics but *no* AST, and must still be distinguished
    from one that genuinely failed to parse."""

    path: str
    source: str
    program: Optional[ast.Program] = None
    parse_diagnostics: List[Diagnostic] = field(default_factory=list)
    imports: List[ResolvedImport] = field(default_factory=list)
    summary: ModuleSummary = None  # type: ignore[assignment]
    #: module-level diagnostics (unresolved imports, cycles, unknown exports)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    parses: bool = False

    def __post_init__(self) -> None:
        # Direct constructions (tests, tools) pass a parsed program without
        # the flag; infer it so `parses` only ever needs explicit setting
        # for AST-less store-loaded modules.
        if self.program is not None:
            self.parses = True

    @property
    def dependencies(self) -> List[str]:
        """Paths of the existing modules this one imports, deduplicated."""
        seen: List[str] = []
        for imp in self.imports:
            if imp.exists and imp.target not in seen:
                seen.append(imp.target)
        return seen


class ModuleGraph:
    """All modules of a project plus the derived dependency structure."""

    def __init__(self, modules: Dict[str, Module]) -> None:
        self.modules = modules
        self.cyclic: List[str] = []
        self.ranks: Dict[str, int] = {}
        # Reverse adjacency, built once (the graph is immutable after
        # construction) so dependent walks do not rescan every module.
        self._dependents: Dict[str, List[str]] = {}
        for path in sorted(modules):
            for dep in modules[path].dependencies:
                self._dependents.setdefault(dep, []).append(path)
        self._analyze()

    # -- construction ------------------------------------------------------

    @staticmethod
    def from_root(root: pathlib.Path, pattern: str = "**/*.rsc",
                  store: Optional[ArtifactStore] = None) -> "ModuleGraph":
        paths = sorted(p for p in pathlib.Path(root).glob(pattern)
                       if p.is_file())
        return ModuleGraph.from_paths(paths, store=store)

    @staticmethod
    def from_paths(paths: Sequence[pathlib.Path],
                   store: Optional[ArtifactStore] = None) -> "ModuleGraph":
        sources = {}
        for path in paths:
            resolved = str(pathlib.Path(path).resolve())
            sources[resolved] = pathlib.Path(path).read_text()
        return ModuleGraph.from_sources(sources, store=store)

    @staticmethod
    def from_sources(sources: Dict[str, str],
                     cache: Optional[Dict[str, Module]] = None,
                     store: Optional[ArtifactStore] = None
                     ) -> "ModuleGraph":
        """Build from ``{resolved path: source text}``.

        ``cache`` (typically a previous graph's ``modules``) lets unchanged
        modules reuse their parsed AST, parse diagnostics and interface
        summary — the expensive, source-only work — so an incremental
        rebuild after a one-module edit re-parses exactly that module.
        Import resolution and the graph analyses are recomputed fresh
        (they depend on the module *set*, and the analyses append
        per-graph diagnostics).

        ``store`` is the cross-process analogue: modules not served by the
        in-memory cache look up their :class:`~repro.store.ModuleArtifact`
        (summary + raw imports + parse diagnostics, keyed by path and
        source text) before paying for a parse, and parsed modules write
        theirs back."""
        modules: Dict[str, Module] = {}
        known = set(sources)
        for path in sorted(sources):
            cached = cache.get(path) if cache else None
            if cached is not None and cached.source == sources[path]:
                module = Module(
                    path=path, source=cached.source, program=cached.program,
                    parse_diagnostics=list(cached.parse_diagnostics),
                    summary=cached.summary, parses=cached.parses)
                # Re-resolve from the cached imports' raw triples, not the
                # AST — a store-loaded module has no AST, and resolution
                # must be recomputed against the *new* module set anyway.
                _resolve_import_list(
                    module,
                    [(list(i.names), i.specifier, i.span)
                     for i in cached.imports], known)
                modules[path] = module
            else:
                modules[path] = _load(path, sources[path], known, store)
        return ModuleGraph(modules)

    # -- analysis ----------------------------------------------------------

    def _analyze(self) -> None:
        self._detect_cycles()
        self._assign_ranks()
        self._check_export_names()

    def _detect_cycles(self) -> None:
        """Mark every module on an import cycle (iterative Tarjan SCCs)."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        counter = [0]
        sccs: List[List[str]] = []

        def edges(node: str) -> List[str]:
            return [dep for dep in self.modules[node].dependencies
                    if dep in self.modules]

        for start in sorted(self.modules):
            if start in index:
                continue
            work = [(start, iter(edges(start)))]
            index[start] = lowlink[start] = counter[0]
            counter[0] += 1
            stack.append(start)
            on_stack[start] = True
            while work:
                node, it = work[-1]
                advanced = False
                for dep in it:
                    if dep not in index:
                        index[dep] = lowlink[dep] = counter[0]
                        counter[0] += 1
                        stack.append(dep)
                        on_stack[dep] = True
                        work.append((dep, iter(edges(dep))))
                        advanced = True
                        break
                    if on_stack.get(dep):
                        lowlink[node] = min(lowlink[node], index[dep])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    scc: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        scc.append(member)
                        if member == node:
                            break
                    sccs.append(scc)

        for scc in sccs:
            self_loop = (len(scc) == 1
                         and scc[0] in self.modules[scc[0]].dependencies)
            if len(scc) > 1 or self_loop:
                members = sorted(scc)
                rendered = " -> ".join(
                    _display(m) for m in members + [members[0]])
                for member in members:
                    self.cyclic.append(member)
                    module = self.modules[member]
                    module.diagnostics.append(Diagnostic(
                        ErrorKind.MODULE,
                        f"import cycle: {rendered}; the module is skipped",
                        _first_import_span(module),
                        code="RSC-MOD-002"))
        self.cyclic.sort()

    def _assign_ranks(self) -> None:
        """Longest-path-from-leaves ranks over the acyclic modules."""
        cyclic = set(self.cyclic)
        order = [path for path in sorted(self.modules) if path not in cyclic]
        resolved: Dict[str, int] = {}

        def rank_of(path: str) -> int:
            if path in resolved:
                return resolved[path]
            # The graph is acyclic here, so plain recursion terminates; an
            # explicit stack keeps deep chains from hitting the limit.
            stack = [path]
            while stack:
                current = stack[-1]
                deps = [d for d in self.modules[current].dependencies
                        if d in self.modules and d not in cyclic]
                pending = [d for d in deps if d not in resolved]
                if pending:
                    stack.extend(pending)
                    continue
                resolved[current] = (
                    1 + max(resolved[d] for d in deps)) if deps else 0
                stack.pop()
            return resolved[path]

        for path in order:
            self.ranks[path] = rank_of(path)

    def _check_export_names(self) -> None:
        """RSC-MOD-003 for imported names the target does not export."""
        for path in sorted(self.modules):
            module = self.modules[path]
            for imp in module.imports:
                if not imp.exists:
                    continue
                target = self.modules.get(imp.target)
                if target is None or target.summary is None:
                    continue
                if not target.parses:
                    continue  # unparsable dependency reports its own error
                for name in imp.names:
                    if not target.summary.has(name):
                        module.diagnostics.append(Diagnostic(
                            ErrorKind.MODULE,
                            f"module {imp.specifier!r} has no export "
                            f"{name!r} (exports: "
                            f"{', '.join(target.summary.names) or 'none'})",
                            imp.span, code="RSC-MOD-003"))

    # -- queries -----------------------------------------------------------

    @property
    def paths(self) -> List[str]:
        return sorted(self.modules)

    def dependents_of(self, path: str) -> List[str]:
        """Direct importers of ``path``, sorted."""
        return list(self._dependents.get(path, []))

    def transitive_dependents(self, path: str) -> List[str]:
        """Every module reaching ``path`` through imports, topo-sorted
        (dependencies before dependents, ties by path)."""
        found: set = set()
        frontier = [path]
        while frontier:
            current = frontier.pop()
            for dependent in self.dependents_of(current):
                if dependent not in found and dependent != path:
                    found.add(dependent)
                    frontier.append(dependent)
        return sorted(found, key=lambda p: (self.ranks.get(p, 0), p))

    def batches(self) -> List[List[str]]:
        """Acyclic modules grouped by rank — each batch's members are
        mutually independent and depend only on earlier batches."""
        by_rank: Dict[int, List[str]] = {}
        for path, rank in self.ranks.items():
            by_rank.setdefault(rank, []).append(path)
        return [sorted(by_rank[rank]) for rank in sorted(by_rank)]

    def interface_prelude(self, path: str) -> str:
        """The rendered interface prelude for ``path``'s imports.

        Walks the import closure depth-first (a dependency's own imported
        interfaces come before the declarations that may mention them) and
        deduplicates by rendered text, so diamond imports do not redeclare.
        """
        decls: List[str] = []
        seen: set = set()
        self._gather_prelude(path, decls, seen, {path})
        if not decls:
            return ""
        return "\n\n".join(["// --- imported module interfaces ---"] + decls)

    def _gather_prelude(self, path: str, decls: List[str], seen: set,
                        done: set) -> None:
        """Gather ``path``'s imported interface decls into ``decls``.

        ``done`` memoizes modules whose import list was already walked —
        it both breaks cycles and keeps diamond-shaped closures linear
        (re-walking would be exponential in chain depth).  The per-import
        decl append below stays outside the memo: a module imported twice
        with different name lists contributes both lists.
        """
        module = self.modules.get(path)
        if module is None:
            return
        for imp in module.imports:
            if not imp.exists:
                continue
            target = self.modules.get(imp.target)
            if target is None or target.summary is None:
                continue
            if imp.target not in done:
                done.add(imp.target)
                self._gather_prelude(imp.target, decls, seen, done)
            for rendered in target.summary.interface_decls():
                if rendered not in seen:
                    seen.add(rendered)
                    decls.append(rendered)

    def document_text(self, path: str) -> str:
        """The text actually checked for ``path``: its source plus the
        interface prelude of everything it imports.  The prelude is appended
        *after* the module text so diagnostic line numbers in the module
        itself are unchanged (declaration order is irrelevant to the
        checker's two-phase table construction)."""
        module = self.modules[path]
        prelude = self.interface_prelude(path)
        if not prelude:
            return module.source
        body = module.source
        if body and not body.endswith("\n"):
            body += "\n"
        return f"{body}\n{prelude}\n"


def _load(path: str, source: str, known: set,
          store: Optional[ArtifactStore] = None) -> Module:
    if store is not None:
        artifact = store.load_module(path, source)
        if artifact is not None:
            module = Module(
                path=path, source=source, program=None,
                parse_diagnostics=list(artifact.parse_diagnostics),
                summary=artifact.summary)
            module.parses = artifact.parses
            _resolve_import_list(module, artifact.imports, known)
            return module
    module = Module(path=path, source=source)
    try:
        module.program = parse_program(source, path)
        module.parses = True
    except ParseError as exc:
        span = exc.span
        if span.filename != path:
            span = span.with_filename(path)
        module.parse_diagnostics.append(
            Diagnostic(ErrorKind.PARSE, exc.message, span,
                       code="RSC-PARSE-001"))
    module.summary = summarize_program(path, module.program)
    raw_imports = _raw_imports(module)
    _resolve_import_list(module, raw_imports, known)
    if store is not None:
        store.save_module(path, source, ModuleArtifact(
            parses=module.parses, summary=module.summary,
            imports=raw_imports,
            parse_diagnostics=list(module.parse_diagnostics)))
    return module


def _raw_imports(module: Module):
    """The unresolved ``(names, specifier, span)`` triples of a parsed
    module — the shape module artifacts persist (resolution depends on the
    surrounding module set, so it is recomputed per graph)."""
    if module.program is None:
        return []
    return [(list(decl.names), decl.module, decl.span)
            for decl in module.program.imports()]


def _resolve_imports(module: Module, known: set) -> None:
    """Resolve a module's import specifiers against the module set."""
    _resolve_import_list(module, _raw_imports(module), known)


def _resolve_import_list(module: Module, raw_imports, known: set) -> None:
    importer = pathlib.Path(module.path)
    for names, specifier, span in raw_imports:
        target = resolve_specifier(importer, specifier)
        exists = target in known
        module.imports.append(ResolvedImport(
            names=list(names), specifier=specifier,
            target=target, span=span, exists=exists))
        if not exists:
            module.diagnostics.append(Diagnostic(
                ErrorKind.MODULE,
                f"cannot resolve import {specifier!r} "
                f"(no module at {_display(target)})",
                span, code="RSC-MOD-001"))


def _display(path: str) -> str:
    """A short, stable rendering of a module path for messages."""
    p = pathlib.Path(path)
    return p.name if p.name else path


def _first_import_span(module: Module) -> SourceSpan:
    for imp in module.imports:
        return imp.span
    return SourceSpan(filename=module.path)
