"""The topo-parallel project build: schedule module checks over the DAG.

Modules are checked in topological-rank batches; the members of one batch
are mutually independent, so with ``jobs > 1`` they are fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (the checker is CPU-bound
pure Python — threads would serialise on the GIL).  Every module is checked
by the same pure function (:func:`check_module`) in a fresh session against
its dependencies' interface preludes, so scheduler results are byte-identical
to a sequential run — asserted by the test-suite — and the worker fan-out is
free to place modules anywhere.

Modules on an import cycle are not checked; their result carries the stable
``RSC-MOD-002`` diagnostic from the graph instead.
"""

from __future__ import annotations

import dataclasses
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import CheckConfig
from repro.core.result import CheckResult
from repro.obs.trace import span as trace_span, tracer
from repro.project.graph import ModuleGraph
from repro.project.result import ProjectResult
from repro.smt.solver import SolverStats
from repro.store import open_store

PathLike = Union[str, pathlib.Path]


def check_module(config: CheckConfig, path: str,
                 document_text: str) -> CheckResult:
    """Check one module document (source + interface prelude) cold.

    A fresh single-use session (own solver, empty cache) keeps the result a
    pure function of ``(config, document_text)`` — the property that makes
    parallel and sequential schedules byte-identical.
    """
    from repro.core.session import Session
    return Session(config).check_source(document_text, filename=path)


def _check_many(config: CheckConfig, work: List[Tuple[str, str]],
                trace_id: Optional[str] = None
                ) -> Tuple[List[CheckResult], Optional[dict]]:
    """Process-pool worker: check a slice of one batch.

    With ``trace_id`` set the worker collects spans too: the tracer is
    reset first (a forked worker inherits the parent's buffered events),
    enabled under the parent's trace id, and drained into the return value
    so the parent can merge every worker's events into one trace.
    """
    trace = None
    if trace_id is not None:
        worker_tracer = tracer()
        worker_tracer.reset()
        worker_tracer.enable(trace_id=trace_id)
    results = [check_module(config, path, text) for path, text in work]
    if trace_id is not None:
        trace = tracer().drain()
    return results, trace


def attach_module_diagnostics(graph: ModuleGraph, path: str,
                              result: CheckResult) -> CheckResult:
    """Prepend the graph-level diagnostics (RSC-MOD-*) to a module verdict.

    Returns a shallow copy — ``result`` may be a cached workspace snapshot
    that must stay pristine for later reuse."""
    module = graph.modules[path]
    extra = list(module.diagnostics)
    if not extra:
        return result
    return dataclasses.replace(
        result, diagnostics=extra + list(result.diagnostics))


def skipped_result(graph: ModuleGraph, path: str) -> CheckResult:
    """The verdict of a module that was not checked (import cycle)."""
    module = graph.modules[path]
    return CheckResult(
        diagnostics=list(module.parse_diagnostics) + list(module.diagnostics),
        filename=path)


def assemble_result(graph: ModuleGraph,
                    by_path: Dict[str, CheckResult]) -> ProjectResult:
    """Order per-module verdicts by path and merge their solver stats."""
    stats = SolverStats()
    ordered: List[CheckResult] = []
    for path in graph.paths:
        result = by_path[path]
        ordered.append(result)
        if result.stats is not None:
            stats.merge(result.stats)
    return ProjectResult(results=ordered, ranks=dict(graph.ranks),
                         cyclic=list(graph.cyclic), stats=stats)


def check_graph(graph: ModuleGraph, config: Optional[CheckConfig] = None,
                jobs: Optional[int] = None) -> ProjectResult:
    """Check every module of ``graph`` in dependency order."""
    config = config or CheckConfig()
    jobs = jobs if jobs is not None else config.jobs
    start = time.perf_counter()
    by_path: Dict[str, CheckResult] = {}
    for path in graph.cyclic:
        by_path[path] = skipped_result(graph, path)
    pool: Optional[ProcessPoolExecutor] = None
    if jobs > 1:
        try:
            # One pool for the whole build — spawning per rank batch would
            # pay worker startup once per topological level.
            pool = ProcessPoolExecutor(max_workers=jobs)
        except (OSError, RuntimeError):
            pool = None
    try:
        for rank, batch in enumerate(graph.batches()):
            work = [(path, graph.document_text(path)) for path in batch]
            with trace_span("project.batch", "pipeline", rank=rank,
                            modules=len(work)):
                results = None
                if pool is not None and len(work) > 1:
                    results = _run_batch_parallel(pool, config, work, jobs)
                    if results is None:  # pool broke; finish sequentially
                        pool.shutdown(wait=False)
                        pool = None
                if results is None:
                    results = [check_module(config, path, text)
                               for path, text in work]
            for (path, _text), result in zip(work, results):
                by_path[path] = attach_module_diagnostics(graph, path,
                                                          result)
    finally:
        if pool is not None:
            pool.shutdown()
    result = assemble_result(graph, by_path)
    result.time_seconds = time.perf_counter() - start
    result.jobs = max(1, jobs)
    return result


def _run_batch_parallel(pool: ProcessPoolExecutor, config: CheckConfig,
                        work: List[Tuple[str, str]],
                        jobs: int) -> Optional[List[CheckResult]]:
    """Fan one rank batch out over the shared worker pool; ``None`` when
    the pool cannot run (restricted environments) — the caller then runs
    the batch sequentially with identical results."""
    workers = min(jobs, len(work))
    chunks: List[List[Tuple[str, str]]] = [[] for _ in range(workers)]
    for index, item in enumerate(work):
        chunks[index % workers].append(item)
    parent_tracer = tracer()
    trace_id = parent_tracer.trace_id if parent_tracer.enabled else None
    try:
        futures = [pool.submit(_check_many, config, chunk, trace_id)
                   for chunk in chunks]
        per_chunk = [future.result() for future in futures]
    except (OSError, RuntimeError, BrokenProcessPool):
        return None
    by_path: Dict[str, CheckResult] = {}
    for results, trace in per_chunk:
        if trace is not None:
            parent_tracer.ingest(trace["events"], trace["slow_queries"])
        for result in results:
            by_path[result.filename] = result
    return [by_path[path] for path, _text in work]


def check_project(root: PathLike, config: Optional[CheckConfig] = None,
                  pattern: str = "**/*.rsc",
                  jobs: Optional[int] = None) -> ProjectResult:
    """Check the project rooted at ``root`` (every ``pattern`` match).

    With ``config.store_path`` set, the module graph loads interface
    summaries from the persistent store and every module check (each in a
    fresh session whose workspace opens the same store) replays persisted
    solutions and verdict memos — an unchanged project re-checks with zero
    SMT queries."""
    config = config or CheckConfig()
    graph = ModuleGraph.from_root(pathlib.Path(root), pattern,
                                  store=open_store(config))
    return check_graph(graph, config, jobs)


def check_files(paths: Sequence[PathLike],
                config: Optional[CheckConfig] = None,
                jobs: Optional[int] = None) -> ProjectResult:
    """Check an explicit set of files as one module graph."""
    config = config or CheckConfig()
    graph = ModuleGraph.from_paths([pathlib.Path(p) for p in paths],
                                   store=open_store(config))
    return check_graph(graph, config, jobs)
