"""Typed results of a project (multi-module) check."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.result import CheckResult, SolveStats
from repro.smt.solver import SolverStats


@dataclass
class ProjectResult:
    """Aggregate outcome of checking a module graph.

    ``results`` is ordered by module path (stable across runs and
    schedulers); ``ranks`` carries the topological rank each acyclic module
    was scheduled at and ``cyclic`` the modules skipped over an import
    cycle.  The interface is a superset of
    :class:`repro.core.result.BatchResult`'s, so callers written against
    batch checking keep working.
    """

    results: List[CheckResult] = field(default_factory=list)
    ranks: Dict[str, int] = field(default_factory=dict)
    cyclic: List[str] = field(default_factory=list)
    stats: SolverStats = field(default_factory=SolverStats)
    time_seconds: float = 0.0
    jobs: int = 1

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def num_errors(self) -> int:
        return sum(len(r.errors) for r in self.results)

    @property
    def num_files(self) -> int:
        return len(self.results)

    @property
    def num_modules(self) -> int:
        return len(self.results)

    @property
    def num_batches(self) -> int:
        return len(set(self.ranks.values()))

    @property
    def cache_hits(self) -> int:
        return self.stats.cache_hits

    def result_for(self, path: str) -> Optional[CheckResult]:
        for result in self.results:
            if result.filename == path:
                return result
        return None

    @property
    def solve_stats(self) -> SolveStats:
        stats = [r.solve_stats for r in self.results
                 if r.solve_stats is not None]
        total = SolveStats(strategy=stats[0].strategy) if stats else SolveStats()
        for s in stats:
            total.merge(s)
        return total

    def summary(self) -> str:
        status = "SAFE" if self.ok else "UNSAFE"
        unsafe = sum(0 if r.ok else 1 for r in self.results)
        skipped = (f", {len(self.cyclic)} on an import cycle"
                   if self.cyclic else "")
        return (f"{status}: {self.num_modules} module(s) in "
                f"{self.num_batches} batch(es), {unsafe} unsafe{skipped}, "
                f"{self.num_errors} error(s) in {self.time_seconds:.2f}s")

    def to_dict(self) -> dict:
        return {
            "status": "SAFE" if self.ok else "UNSAFE",
            "ok": self.ok,
            "num_modules": self.num_modules,
            "num_errors": self.num_errors,
            "ranks": dict(sorted(self.ranks.items())),
            "cyclic": list(self.cyclic),
            "jobs": self.jobs,
            "time_seconds": self.time_seconds,
            "solver_stats": self.stats.to_dict(),
            "solve_stats": self.solve_stats.to_dict(),
            "modules": [r.to_dict() for r in self.results],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)
