"""Multi-module projects: imports/exports, interface summaries, build graph.

The project subsystem makes the checker project-aware end to end::

    from repro.project import check_project, ProjectWorkspace

    result = check_project("my-project", jobs=4)     # topo-parallel build
    print(result.summary())

    pw = ProjectWorkspace(root="my-project")
    pw.check()
    update = pw.update("my-project/lib.rsc")         # signature-cut re-check
    print(update.rechecked, update.reused)

Modules are ``*.rsc`` files linked by ``import {a, b} from "./mod";`` and
``export`` modifiers.  Each module is checked against its dependencies'
*interface summaries* (refinement-typed signatures), never their bodies —
see :mod:`repro.project.summary` for the cut, :mod:`repro.project.graph`
for resolution/cycles/ranks, :mod:`repro.project.build` for the parallel
scheduler and :mod:`repro.project.workspace` for incremental editing.
"""

from repro.project.build import check_files, check_graph, check_project
from repro.project.graph import Module, ModuleGraph, resolve_specifier
from repro.project.result import ProjectResult
from repro.project.summary import ModuleSummary, summarize_program
from repro.project.workspace import ProjectUpdate, ProjectWorkspace

__all__ = [
    "Module",
    "ModuleGraph",
    "ModuleSummary",
    "ProjectResult",
    "ProjectUpdate",
    "ProjectWorkspace",
    "check_files",
    "check_graph",
    "check_project",
    "resolve_specifier",
    "summarize_program",
]
