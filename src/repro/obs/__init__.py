"""Observability: unified tracing and metrics for every subsystem.

* :mod:`repro.obs.trace` — hierarchical spans on a process-wide tracer,
  exported as Chrome trace-event JSON (``repro check --trace``, the
  ``REPRO_TRACE`` environment variable), plus the slow-query log.
* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram and the
  :class:`MetricsRegistry` every stats surface snapshots into, including
  the one nearest-rank :func:`percentile` implementation.
* :mod:`repro.obs.summary` — validate / merge / summarize trace documents
  (the ``repro trace`` CLI).
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               percentile, registry_from_stats)
from repro.obs.trace import (TRACE_SCHEMA, SlowQueryLog, Span, Tracer,
                             current_trace_id, enabled, new_trace_id, span,
                             stage_span, trace_document, tracer)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "percentile",
    "registry_from_stats", "TRACE_SCHEMA", "SlowQueryLog", "Span", "Tracer",
    "current_trace_id", "enabled", "new_trace_id", "span", "stage_span",
    "trace_document", "tracer",
]
