"""The unified metrics registry: Counter / Gauge / Histogram.

One deterministic snapshot shape for every surface that reports numbers —
the serve-protocol v3 ``metrics`` method, ``repro cache stats``, and
``repro check --format json`` all render a :class:`MetricsRegistry`
populated from the four existing stats dataclasses
(:class:`~repro.core.result.StageTimings`,
:class:`~repro.core.result.SolveStats`,
:class:`~repro.smt.solver.SolverStats` and the store counters).

:func:`percentile` is the **one** nearest-rank implementation in the
codebase; the service latency window and both bench latency reports
delegate here (three hand-rolled copies used to disagree off-by-one).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Union

Number = Union[int, float]


def percentile(values, q: float) -> float:
    """Nearest-rank percentile of an unsorted sample (0 for an empty one)."""
    values = list(values)
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class Counter:
    """A monotonically-increasing integer."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time float (seconds, ratios, sizes)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """A sample distribution with nearest-rank percentiles.

    With ``window`` set, only the most recent ``window`` observations are
    retained (the service's per-tenant latency window); ``count`` is the
    retained sample size, ``observed`` the lifetime total.
    """

    __slots__ = ("_values", "observed")

    def __init__(self, window: Optional[int] = None) -> None:
        self._values = deque(maxlen=window) if window else deque()
        self.observed = 0

    def observe(self, value: float) -> None:
        self._values.append(value)
        self.observed += 1

    def __len__(self) -> int:
        return len(self._values)

    def values(self) -> List[float]:
        return list(self._values)

    def percentile(self, q: float) -> float:
        return percentile(self._values, q)

    def snapshot(self) -> dict:
        values = list(self._values)
        if not values:
            return {"count": 0, "observed": self.observed, "min": 0.0,
                    "max": 0.0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                    "p99": 0.0}
        return {
            "count": len(values),
            "observed": self.observed,
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
            "p50": percentile(values, 50.0),
            "p90": percentile(values, 90.0),
            "p99": percentile(values, 99.0),
        }


class MetricsRegistry:
    """A flat namespace of metrics with a deterministic JSON snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str,
                  window: Optional[int] = None) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(window)
        return metric

    def attach_histogram(self, name: str, histogram: Histogram) -> None:
        """Register an externally-owned histogram (e.g. a tenant's live
        latency window) so snapshots include it without copying."""
        self._histograms[name] = histogram

    def load(self, prefix: str, mapping: Optional[dict]) -> None:
        """Bulk-load a stats ``to_dict()``: ints become counters, floats
        gauges; non-numeric values (strategy names, states) are skipped."""
        for key, value in (mapping or {}).items():
            name = f"{prefix}.{key}"
            if isinstance(value, bool):
                self.counter(name).value = int(value)
            elif isinstance(value, int):
                self.counter(name).value = value
            elif isinstance(value, float):
                self.gauge(name).set(value)

    def to_dict(self) -> dict:
        """Sorted, JSON-ready snapshot of every metric."""
        return {
            "counters": {name: c.snapshot()
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.snapshot()
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self._histograms.items())},
        }


def registry_from_stats(timings=None, solve=None, solver=None,
                        store: Optional[dict] = None,
                        backend: Optional[dict] = None) -> MetricsRegistry:
    """Build a registry from the four existing stats carriers.

    ``timings`` is a :class:`~repro.core.result.StageTimings`, ``solve`` a
    :class:`~repro.core.result.SolveStats`, ``solver`` a
    :class:`~repro.smt.solver.SolverStats`; ``store``/``backend`` are the
    counter dicts the artifact store and its networked backend expose.
    """
    registry = MetricsRegistry()
    if timings is not None:
        # StageTimings.to_dict already includes the "total" key.
        for stage, seconds in timings.to_dict().items():
            registry.gauge(f"pipeline.seconds.{stage}").set(seconds)
    if solve is not None:
        registry.load("fixpoint", solve.to_dict())
    if solver is not None:
        registry.load("smt", solver.to_dict())
    if store:
        registry.load("store", store)
    if backend:
        registry.load("store.backend", backend)
    return registry
