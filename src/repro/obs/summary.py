"""Trace post-processing: validate, merge and summarize trace documents.

These back the ``repro trace`` CLI:

* :func:`validate_trace` checks a document against the Chrome trace-event
  shape this repo emits (``repro-trace/1``): complete events only, integer
  microsecond timestamps, well-formed ``args``.
* :func:`merge_traces` combines documents from many processes (a bench
  fleet, ``--jobs`` workers) into one — timestamps are wall-aligned at
  emit time, so merging is concatenation plus a deterministic re-sort and
  a re-bounding of the combined slow-query log.
* :func:`summarize` aggregates a document into per-subsystem, per-stage,
  per-module and per-tenant tables (:func:`format_summary` renders them).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List

from repro.obs.trace import TRACE_SCHEMA, SlowQueryLog, trace_document

#: Stage-span name prefix emitted by the pipeline instrumentation.
_STAGE_PREFIX = "stage."


def load_trace(path) -> dict:
    """Read one trace document from disk."""
    return json.loads(pathlib.Path(path).read_text())


def validate_trace(document: dict) -> List[str]:
    """Schema problems with ``document`` (empty list means valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' list"]
    other = document.get("otherData")
    if not isinstance(other, dict):
        problems.append("missing 'otherData' object")
    elif other.get("schema") != TRACE_SCHEMA:
        problems.append(f"otherData.schema is {other.get('schema')!r}, "
                        f"expected {TRACE_SCHEMA!r}")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key, kind in (("name", str), ("cat", str)):
            if not isinstance(event.get(key), kind):
                problems.append(f"{where}: missing {key!r} string")
        if event.get("ph") != "X":
            problems.append(f"{where}: ph is {event.get('ph')!r}, "
                            "expected 'X' (complete event)")
        for key in ("ts", "dur", "pid", "tid"):
            value = event.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                problems.append(f"{where}: {key!r} must be a non-negative "
                                f"integer, got {value!r}")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
    return problems


def check_nesting(document: dict) -> List[str]:
    """Spans that overlap without nesting within one ``(pid, tid)`` track.

    Chrome/Perfetto reconstruct the span tree from interval containment;
    two spans on one track that partially overlap cannot be rendered as a
    tree, so any such pair is a bug in the instrumentation (or a merge of
    mis-aligned clocks)."""
    problems: List[str] = []
    tracks: Dict[tuple, List[dict]] = {}
    for event in document.get("traceEvents", []):
        # Malformed events (no ts/dur) are validate_trace's problem, not
        # ours — skip them rather than crash mid-sort.
        if not isinstance(event.get("ts"), int) \
                or not isinstance(event.get("dur"), int):
            continue
        tracks.setdefault((event.get("pid"), event.get("tid")),
                          []).append(event)
    for key, events in sorted(tracks.items()):
        events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: List[dict] = []
        for event in events:
            while stack and event["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            if stack:
                parent = stack[-1]
                if event["ts"] + event["dur"] > parent["ts"] + parent["dur"]:
                    problems.append(
                        f"pid={key[0]} tid={key[1]}: span "
                        f"{event['name']!r} at ts={event['ts']} overlaps "
                        f"{parent['name']!r} without nesting")
            stack.append(event)
    return problems


def merge_traces(documents: List[dict]) -> dict:
    """One document from many: concatenated events, combined slow log."""
    events: List[dict] = []
    slow = SlowQueryLog()
    trace_ids = []
    for document in documents:
        events.extend(document.get("traceEvents", []))
        other = document.get("otherData") or {}
        trace_id = other.get("trace_id")
        if trace_id and trace_id not in trace_ids:
            trace_ids.append(trace_id)
        for entry in other.get("slow_queries", []):
            info = dict(entry)
            seconds = info.pop("seconds", 0.0)
            slow.record(seconds, **info)
    merged_id = trace_ids[0] if len(trace_ids) == 1 else \
        ("+".join(trace_ids) if trace_ids else None)
    return trace_document(events, trace_id=merged_id,
                          slow_queries=slow.snapshot())


def _bucket(table: Dict[str, dict], key: str, dur_us: int) -> None:
    row = table.setdefault(key, {"spans": 0, "seconds": 0.0})
    row["spans"] += 1
    row["seconds"] += dur_us / 1e6


def summarize(document: dict) -> dict:
    """Aggregate one trace document into breakdown tables.

    * ``subsystems`` — spans and total seconds per category,
    * ``stages`` — per pipeline stage (``stage.*`` spans),
    * ``modules`` — per checked document (``pipeline.check`` spans' ``uri``),
    * ``tenants`` — per service tenant (``service.*`` spans' ``tenant``),
    * ``slow_queries`` — the exported top-N slow-implication log.

    Seconds are summed span durations, so nested spans count toward both
    their own bucket and their ancestors' — the tables answer "where does
    time go inside each layer", not "what fraction of one wall-clock".
    """
    subsystems: Dict[str, dict] = {}
    stages: Dict[str, dict] = {}
    modules: Dict[str, dict] = {}
    tenants: Dict[str, dict] = {}
    pids = set()
    for event in document.get("traceEvents", []):
        dur = int(event.get("dur", 0))
        args = event.get("args") or {}
        pids.add(event.get("pid"))
        _bucket(subsystems, str(event.get("cat", "?")), dur)
        name = str(event.get("name", ""))
        if name.startswith(_STAGE_PREFIX):
            _bucket(stages, name[len(_STAGE_PREFIX):], dur)
            module = args.get("module")
            if module:
                _bucket(modules, str(module), dur)
        elif name == "pipeline.check" and args.get("uri"):
            row = modules.setdefault(str(args["uri"]),
                                     {"spans": 0, "seconds": 0.0})
            row["checks"] = row.get("checks", 0) + 1
        if event.get("cat") == "service" and args.get("tenant"):
            _bucket(tenants, str(args["tenant"]), dur)
    other = document.get("otherData") or {}
    return {
        "trace_id": other.get("trace_id"),
        "events": len(document.get("traceEvents", [])),
        "processes": len(pids),
        "subsystems": dict(sorted(subsystems.items())),
        "stages": dict(sorted(stages.items())),
        "modules": dict(sorted(modules.items())),
        "tenants": dict(sorted(tenants.items())),
        "slow_queries": other.get("slow_queries", []),
    }


def _table(title: str, header: str, rows: List[str]) -> List[str]:
    if not rows:
        return []
    width = max(len(header), *(len(r) for r in rows))
    return [title, header, "-" * width, *rows, ""]


def format_summary(summary: dict) -> str:
    """The tables ``repro trace summarize`` prints."""
    lines = [f"trace {summary.get('trace_id') or '<unidentified>'}: "
             f"{summary['events']} span(s) across "
             f"{summary['processes']} process(es)", ""]
    lines += _table(
        "Subsystems",
        f"{'category':12s} {'spans':>8s} {'total(s)':>10s}",
        [f"{name:12s} {row['spans']:8d} {row['seconds']:10.3f}"
         for name, row in summary["subsystems"].items()])
    lines += _table(
        "Pipeline stages",
        f"{'stage':12s} {'spans':>8s} {'total(s)':>10s} {'mean(ms)':>10s}",
        [f"{name:12s} {row['spans']:8d} {row['seconds']:10.3f} "
         f"{1000.0 * row['seconds'] / row['spans']:10.2f}"
         for name, row in summary["stages"].items()])
    module_width = max([28] + [len(name) for name in summary["modules"]])
    lines += _table(
        "Modules",
        f"{'module':{module_width}s} {'spans':>8s} {'total(s)':>10s}",
        [f"{name:{module_width}s} {row['spans']:8d} {row['seconds']:10.3f}"
         for name, row in summary["modules"].items()])
    lines += _table(
        "Tenants",
        f"{'tenant':16s} {'spans':>8s} {'total(s)':>10s}",
        [f"{name:16s} {row['spans']:8d} {row['seconds']:10.3f}"
         for name, row in summary["tenants"].items()])
    slow = summary.get("slow_queries") or []
    if slow:
        lines.append(f"Slowest implications (top {len(slow)})")
        header = (f"{'seconds':>9s}  {'kind':10s} {'kappa':18s} "
                  f"{'owner':18s} goals")
        lines.append(header)
        lines.append("-" * len(header))
        for entry in slow:
            lines.append(
                f"{entry.get('seconds', 0.0):9.4f}  "
                f"{str(entry.get('kind', '?')):10s} "
                f"{str(entry.get('kappa', '-')):18s} "
                f"{str(entry.get('owner', '-')):18s} "
                f"{entry.get('goals', 1)}")
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)


def summarize_path(path) -> str:
    """Convenience: load, summarize and render one trace file."""
    return format_summary(summarize(load_trace(path)))
