"""The tracing core: hierarchical spans, Chrome trace-event export.

One process-wide :class:`Tracer` collects **spans** — named, categorised
wall-clock intervals — from every subsystem (pipeline stages, fixpoint
rounds, SMT queries, store operations, service lanes).  Spans nest by
construction: Chrome's trace viewer (and Perfetto) reconstructs the tree
from ``ts``/``dur`` containment per ``(pid, tid)``, so emitting complete
(``"ph": "X"``) events is enough — no explicit parent ids are needed.

The tracer is **disabled by default** and designed so the disabled path is
as close to free as Python allows: :func:`span` is one attribute load and
one truthiness test before returning a shared no-op context manager (no
allocation, no clock read).  ``repro bench obs`` measures this cost and CI
gates it below 2% of check wall-clock.

Enabling:

* ``repro check --trace out.json`` (the CLI calls :meth:`Tracer.enable`
  and exports on exit),
* the ``REPRO_TRACE`` environment variable — any process that imports this
  module with it set starts tracing and dumps on interpreter exit, which is
  how subprocess fleets (``repro bench cache`` workers) produce traces
  without code changes.  A value ending in ``/`` (or naming an existing
  directory) writes one ``trace-<pid>.json`` per process into it, ready
  for ``repro trace merge``.  ``REPRO_TRACE_ID`` pins the trace id so all
  fleet members share one.

Timestamps are microseconds on the wall clock (a per-process monotonic
reading shifted by the wall offset captured at enable time), so events
from different processes land on one mergeable axis.

The tracer also owns the **slow-query log**: a bounded top-N heap of the
slowest SMT implications with their kappa/owner provenance, recorded by
the fixpoint layer and exported in the trace's ``otherData``.
"""

from __future__ import annotations

import atexit
import heapq
import json
import os
import pathlib
import threading
import time
from typing import Any, Dict, List, Optional

#: Schema identifier stamped into exported traces (bump on layout changes).
TRACE_SCHEMA = "repro-trace/1"

#: Default size of the slow-query log.
DEFAULT_SLOW_QUERY_LIMIT = 10


class SlowQueryLog:
    """A bounded top-N log of the slowest SMT implications.

    Kept as a min-heap of ``(seconds, seq, info)`` so recording is O(log N)
    and the cheapest retained entry is evicted first; ``seq`` breaks ties
    deterministically (first recorded wins) and keeps the ``info`` dicts
    out of the comparison.
    """

    def __init__(self, limit: int = DEFAULT_SLOW_QUERY_LIMIT) -> None:
        self.limit = max(1, limit)
        self._heap: List[tuple] = []
        self._seq = 0
        self._lock = threading.Lock()

    def record(self, seconds: float, **info: Any) -> None:
        with self._lock:
            entry = (seconds, self._seq, info)
            self._seq += 1
            if len(self._heap) < self.limit:
                heapq.heappush(self._heap, entry)
            elif entry[0] > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)

    def snapshot(self) -> List[dict]:
        """Slowest first, as plain dicts with a ``seconds`` key."""
        with self._lock:
            entries = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        return [dict(info, seconds=seconds)
                for seconds, _seq, info in entries]


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def note(self, **args: Any) -> None:
        """Attach arguments to the span (no-op while disabled)."""


_NOOP = _NoopSpan()


class Span:
    """One live span; emits a complete ("X") event when it exits."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start_ns = 0

    def __enter__(self) -> "Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def note(self, **args: Any) -> None:
        """Attach result arguments discovered while the span is open."""
        self.args.update(args)

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter_ns()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._tracer.emit(self.name, self.cat, self._start_ns,
                          end - self._start_ns, self.args)
        return False


class Tracer:
    """The process-wide span collector.

    Thread-safe: spans may close on any thread (the async server's
    executor threads, the project scheduler's pool threads); each thread
    is mapped to a small stable ``tid`` in registration order.
    """

    def __init__(self, slow_limit: int = DEFAULT_SLOW_QUERY_LIMIT) -> None:
        self.enabled = False
        self.trace_id: Optional[str] = None
        self.slow = SlowQueryLog(slow_limit)
        self._lock = threading.Lock()
        self._events: List[dict] = []
        self._tids: Dict[int, int] = {}
        self._offset_us = 0

    # -- lifecycle ---------------------------------------------------------

    def enable(self, trace_id: Optional[str] = None,
               slow_limit: Optional[int] = None) -> str:
        """Start collecting; returns the (possibly generated) trace id."""
        with self._lock:
            if trace_id:
                self.trace_id = trace_id
            elif self.trace_id is None:
                self.trace_id = new_trace_id()
            if slow_limit is not None and slow_limit != self.slow.limit:
                self.slow = SlowQueryLog(slow_limit)
            # Wall-minus-monotonic offset: every event timestamp becomes
            # wall-aligned, so traces from different processes merge onto
            # one time axis without post-hoc shifting.
            self._offset_us = (time.time_ns()
                               - time.perf_counter_ns()) // 1000
            self.enabled = True
        return self.trace_id

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Back to a pristine disabled tracer (tests, forked workers)."""
        with self._lock:
            self.enabled = False
            self.trace_id = None
            self._events = []
            self._tids = {}
            self.slow = SlowQueryLog(self.slow.limit)

    # -- recording ---------------------------------------------------------

    def span(self, name: str, cat: str, **args: Any):
        if not self.enabled:
            return _NOOP
        return Span(self, name, cat, args)

    def emit(self, name: str, cat: str, start_ns: int, dur_ns: int,
             args: Dict[str, Any]) -> None:
        """Record one complete event (already-finished interval)."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": self._offset_us + start_ns // 1000,
            "dur": max(dur_ns // 1000, 1),
            "pid": os.getpid(),
        }
        if args:
            event["args"] = args
        with self._lock:
            ident = threading.get_ident()
            tid = self._tids.get(ident)
            if tid is None:
                tid = self._tids[ident] = len(self._tids)
            event["tid"] = tid
            self._events.append(event)

    def ingest(self, events: List[dict],
               slow_queries: Optional[List[dict]] = None) -> None:
        """Merge events drained from a worker process into this tracer."""
        with self._lock:
            self._events.extend(events)
        for entry in slow_queries or []:
            info = dict(entry)
            seconds = info.pop("seconds", 0.0)
            self.slow.record(seconds, **info)

    # -- output ------------------------------------------------------------

    def drain(self) -> dict:
        """Remove and return everything collected so far (worker handoff)."""
        with self._lock:
            events, self._events = self._events, []
        return {
            "trace_id": self.trace_id,
            "events": events,
            "slow_queries": self.slow.snapshot(),
        }

    def to_document(self) -> dict:
        """A Chrome trace-event document of everything collected so far."""
        with self._lock:
            events = list(self._events)
        return trace_document(events, trace_id=self.trace_id,
                              slow_queries=self.slow.snapshot())

    def export(self, path) -> dict:
        """Write the trace document to ``path`` and return it."""
        document = self.to_document()
        target = pathlib.Path(path)
        if target.parent != pathlib.Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(document, indent=2) + "\n")
        return document


def trace_document(events: List[dict], trace_id: Optional[str] = None,
                   slow_queries: Optional[List[dict]] = None) -> dict:
    """Assemble a Chrome/Perfetto-loadable trace-event document.

    Events are sorted by ``(pid, tid, ts, -dur)`` — parents before their
    children at equal timestamps — so exports are deterministic for a given
    set of events regardless of collection interleaving.
    """
    ordered = sorted(events, key=lambda e: (e.get("pid", 0),
                                            e.get("tid", 0),
                                            e.get("ts", 0),
                                            -e.get("dur", 0),
                                            e.get("name", "")))
    return {
        "traceEvents": ordered,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "trace_id": trace_id,
            "slow_queries": slow_queries or [],
        },
    }


def new_trace_id() -> str:
    return os.urandom(8).hex()


#: The process-wide tracer every subsystem records into.
_TRACER = Tracer()


def tracer() -> Tracer:
    return _TRACER


def enabled() -> bool:
    return _TRACER.enabled


def span(name: str, cat: str = "app", **args: Any):
    """Open a span on the process tracer (a shared no-op when disabled)."""
    t = _TRACER
    if not t.enabled:
        return _NOOP
    return Span(t, name, cat, args)


def current_trace_id() -> Optional[str]:
    """The active trace id, or ``None`` when tracing is disabled —
    what rides the serve/store protocol envelopes."""
    t = _TRACER
    return t.trace_id if t.enabled else None


class stage_span:
    """Time one pipeline stage: always records the elapsed seconds into a
    :class:`repro.core.result.StageTimings`, and additionally emits a
    pipeline-category trace event when the process tracer is enabled.

    This is the seam that makes ``StageTimings`` *be* the stage layer of
    the span tree — check, watch and serve all read the same numbers.
    """

    __slots__ = ("_timings", "_stage", "_args", "_start_ns")

    def __init__(self, timings, stage: str, **args: Any) -> None:
        self._timings = timings
        self._stage = stage
        self._args = args
        self._start_ns = 0

    def __enter__(self) -> "stage_span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed_ns = time.perf_counter_ns() - self._start_ns
        self._timings.record(self._stage, elapsed_ns / 1e9)
        t = _TRACER
        if t.enabled:
            if exc_type is not None:
                self._args.setdefault("error", exc_type.__name__)
            t.emit(f"stage.{self._stage}", "pipeline", self._start_ns,
                   elapsed_ns, self._args)
        return False


# -- REPRO_TRACE environment hookup -----------------------------------------


def _env_trace_target(value: str) -> pathlib.Path:
    """Where the atexit dump goes: a per-pid file when the value names a
    directory (trailing separator or an existing dir), else the file."""
    path = pathlib.Path(value)
    if value.endswith(("/", os.sep)) or path.is_dir():
        return path / f"trace-{os.getpid()}.json"
    return path


def _dump_env_trace(value: str) -> None:
    try:
        _TRACER.export(_env_trace_target(value))
    except OSError:
        pass  # a vanished trace dir must not break interpreter exit


def _autoenable_from_env() -> None:
    value = os.environ.get("REPRO_TRACE")
    if not value:
        return
    _TRACER.enable(trace_id=os.environ.get("REPRO_TRACE_ID") or None)
    atexit.register(_dump_env_trace, value)


_autoenable_from_env()
