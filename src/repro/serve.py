"""``repro serve`` — a newline-delimited JSON request/response loop.

The server reads one JSON object per line from its input stream, applies it
to a long-lived :class:`repro.core.workspace.Workspace`, and writes exactly
one JSON response line per request — so a driver (editor plugin, test
harness, ``printf | repro serve`` in CI) can hold a pipe open and get
incremental re-check latency for every edit.

Request shape::

    {"id": 1, "method": "check",  "params": {"uri": "a.rsc", "text": "..."}}
    {"id": 2, "method": "update", "params": {"uri": "a.rsc", "text": "..."}}
    {"id": 3, "method": "diagnostics", "params": {"uri": "a.rsc"}}
    {"id": 4, "method": "close",  "params": {"uri": "a.rsc"}}
    {"id": 5, "method": "shutdown"}

``check`` opens (or replaces) a document; with ``text`` omitted the URI is
read as a file path.  ``update`` requires the document to be open and
re-checks incrementally.  Responses mirror the request ``id``::

    {"id": 1, "ok": true, "result": {"uri": ..., "status": "SAFE", ...}}
    {"id": 9, "ok": false, "error": {"code": "unknown-method", "message": ...}}

Check/update results carry the document verdict plus per-edit timing
deltas: ``time_seconds`` (this check), ``delta_seconds`` (vs. the previous
check of the same URI), ``queries`` (SMT queries issued), ``warm`` and the
``solve_stats`` counters (``declarations_rechecked``/``declarations_reused``
/...).  A malformed line produces an ``id: null`` error response and the
loop continues; ``shutdown`` (or end of input) ends it.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, IO, Optional

from repro.core.config import CheckConfig
from repro.core.result import CheckResult
from repro.core.workspace import Workspace

#: Protocol identifier reported by the ``shutdown`` response.
PROTOCOL = "repro-serve/2"

METHODS = ("check", "update", "diagnostics", "close", "shutdown",
           "project_open", "project_update", "project_diagnostics")


class ServerError(Exception):
    """A request that cannot be served (unknown method, missing params)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


class Server:
    """The request dispatcher; one instance per ``repro serve`` process."""

    def __init__(self, config: Optional[CheckConfig] = None,
                 workspace: Optional[Workspace] = None) -> None:
        # An injected workspace's config governs *all* operations (any
        # `config` argument is superseded), so single-file and project
        # checks of the same text always agree.
        if workspace is not None:
            config = workspace.config
        self.config = config or CheckConfig()
        self.workspace = workspace or Workspace(self.config)
        self.project = None  # lazily created by project_open
        self.requests_served = 0
        self.shutting_down = False
        self._last_time: Dict[str, float] = {}

    # -- request handling --------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Serve one decoded request object, returning the response object."""
        self.requests_served += 1
        request_id = request.get("id")
        try:
            method = request.get("method")
            if method not in METHODS:
                raise ServerError("unknown-method",
                                  f"unknown method {method!r} "
                                  f"(expected one of {', '.join(METHODS)})")
            params = request.get("params") or {}
            if not isinstance(params, dict):
                raise ServerError("bad-params", "params must be an object")
            result = getattr(self, f"_serve_{method}")(params)
            return {"id": request_id, "ok": True, "result": result}
        except ServerError as exc:
            return {"id": request_id, "ok": False,
                    "error": {"code": exc.code, "message": exc.message}}
        except OSError as exc:
            return {"id": request_id, "ok": False,
                    "error": {"code": "io-error", "message": str(exc)}}
        except Exception as exc:  # noqa: BLE001 — one request must never
            # take down the loop; the contract is one response per line.
            return {"id": request_id, "ok": False,
                    "error": {"code": "internal-error",
                              "message": f"{type(exc).__name__}: {exc}"}}

    def handle_line(self, line: str) -> Optional[dict]:
        """Serve one raw input line; ``None`` for blank lines."""
        if not line.strip():
            return None
        try:
            request = json.loads(line)
        except ValueError as exc:
            return {"id": None, "ok": False,
                    "error": {"code": "parse-error",
                              "message": f"malformed request: {exc}"}}
        if not isinstance(request, dict):
            return {"id": None, "ok": False,
                    "error": {"code": "parse-error",
                              "message": "request must be a JSON object"}}
        return self.handle(request)

    # -- methods -----------------------------------------------------------

    def _serve_check(self, params: dict) -> dict:
        uri = self._uri(params)
        result = self.workspace.open(uri, self._text(params))
        return self._check_payload(uri, result)

    def _serve_update(self, params: dict) -> dict:
        uri = self._uri(params)
        if uri not in self.workspace.documents():
            raise ServerError("not-open", f"document not open: {uri!r}")
        result = self.workspace.update(uri, self._text(params))
        return self._check_payload(uri, result)

    def _serve_diagnostics(self, params: dict) -> dict:
        uri = self._uri(params)
        try:
            result = self.workspace.result(uri)
        except KeyError:
            raise ServerError("not-open", f"document not open: {uri!r}")
        return {"uri": uri, "status": result.status, "ok": result.ok,
                "diagnostics": [d.to_dict() for d in result.diagnostics]}

    def _serve_close(self, params: dict) -> dict:
        uri = self._uri(params)
        try:
            self.workspace.close(uri)
        except KeyError:
            raise ServerError("not-open", f"document not open: {uri!r}")
        self._last_time.pop(uri, None)
        return {"uri": uri, "closed": True}

    # -- project methods ---------------------------------------------------

    def _serve_project_open(self, params: dict) -> dict:
        """Open a project root as a module graph and run the initial build."""
        from repro.project.workspace import ProjectWorkspace
        root = params.get("root")
        if not isinstance(root, str) or not root:
            raise ServerError("bad-params", "params.root must be a string")
        import pathlib
        if not pathlib.Path(root).is_dir():
            raise ServerError("io-error", f"not a directory: {root!r}")
        self.project = ProjectWorkspace(root=root, config=self.config)
        result = self.project.check()
        return self._project_payload(result)

    def _serve_project_update(self, params: dict) -> dict:
        """Replace one module's text and re-check what it invalidated."""
        import pathlib
        project = self._require_project()
        uri = self._uri(params)
        # The library's update() deliberately adds unknown paths as new
        # modules; over the protocol that would turn a typo'd or relative
        # URI into a phantom module, so membership is checked first.
        if str(pathlib.Path(uri).resolve()) not in project.modules():
            raise ServerError("not-open",
                              f"module not in the project: {uri!r}")
        update = project.update(uri, self._text(params))
        payload = update.to_dict()
        payload["modules"] = [
            self._module_payload(update.results[path])
            for path in update.rechecked]
        return payload

    def _serve_project_diagnostics(self, params: dict) -> dict:
        """One module's current diagnostics (no re-check)."""
        project = self._require_project()
        uri = self._uri(params)
        try:
            result = project.result(uri)
        except KeyError:
            raise ServerError("not-open", f"module not in the project: "
                                          f"{uri!r}")
        return self._module_payload(result)

    def _require_project(self):
        if self.project is None:
            raise ServerError("not-open",
                              "no project open (send project_open first)")
        return self.project

    @staticmethod
    def _module_payload(result: CheckResult) -> dict:
        return {"uri": result.filename, "status": result.status,
                "ok": result.ok,
                "diagnostics": [d.to_dict() for d in result.diagnostics]}

    def _project_payload(self, result) -> dict:
        return {
            "status": "SAFE" if result.ok else "UNSAFE",
            "ok": result.ok,
            "num_modules": result.num_modules,
            "ranks": dict(sorted(result.ranks.items())),
            "cyclic": list(result.cyclic),
            "modules": [self._module_payload(r) for r in result.results],
        }

    def _serve_shutdown(self, params: dict) -> dict:
        self.shutting_down = True
        store = self.workspace.store
        return {"shutdown": True, "protocol": PROTOCOL,
                "requests_served": self.requests_served,
                "checks_run": self.workspace.checks_run,
                "store": store.counters() if store is not None else None}

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _uri(params: dict) -> str:
        uri = params.get("uri")
        if not isinstance(uri, str) or not uri:
            raise ServerError("bad-params", "params.uri must be a string")
        return uri

    @staticmethod
    def _text(params: dict) -> Optional[str]:
        text = params.get("text")
        if text is not None and not isinstance(text, str):
            raise ServerError("bad-params", "params.text must be a string")
        return text

    def _check_payload(self, uri: str, result: CheckResult) -> dict:
        previous = self._last_time.get(uri)
        self._last_time[uri] = result.time_seconds
        solve = result.solve_stats
        return {
            "uri": uri,
            "status": result.status,
            "ok": result.ok,
            "diagnostics": [d.to_dict() for d in result.diagnostics],
            "time_seconds": result.time_seconds,
            "delta_seconds": (result.time_seconds - previous
                              if previous is not None else None),
            "queries": result.stats.queries if result.stats else 0,
            "warm": bool(solve and solve.warm_starts),
            "solve_stats": solve.to_dict() if solve else None,
        }


def serve(stdin: Optional[IO[str]] = None, stdout: Optional[IO[str]] = None,
          config: Optional[CheckConfig] = None) -> int:
    """Run the NDJSON loop until ``shutdown`` or end of input."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    server = Server(config)
    for line in stdin:
        response = server.handle_line(line)
        if response is None:
            continue
        stdout.write(json.dumps(response) + "\n")
        stdout.flush()
        if server.shutting_down:
            break
    return 0
