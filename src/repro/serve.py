"""``repro serve`` — the stdio NDJSON loop (``repro-serve/2`` shim).

The server reads one JSON object per line from its input stream, applies it
to a long-lived :class:`repro.core.workspace.Workspace`, and writes exactly
one JSON response line per request — so a driver (editor plugin, test
harness, ``printf | repro serve`` in CI) can hold a pipe open and get
incremental re-check latency for every edit.

This module is now a thin adapter: decoding, dispatch and payload building
live in :mod:`repro.service` (the typed protocol layer and the multi-tenant
service core), and this shim pins the protocol version to ``repro-serve/2``
over a single ``default`` tenant — recorded v2 transcripts replay
byte-identically, while the same core also powers the asyncio socket
server (``repro serve --tcp``, :mod:`repro.service.server`).

Request shape::

    {"id": 1, "method": "check",  "params": {"uri": "a.rsc", "text": "..."}}
    {"id": 2, "method": "update", "params": {"uri": "a.rsc", "text": "..."}}
    {"id": 3, "method": "diagnostics", "params": {"uri": "a.rsc"}}
    {"id": 4, "method": "close",  "params": {"uri": "a.rsc"}}
    {"id": 5, "method": "shutdown"}

``check`` opens (or replaces) a document; with ``text`` omitted the URI is
read as a file path.  ``update`` requires the document to be open and
re-checks incrementally.  Responses mirror the request ``id``::

    {"id": 1, "ok": true, "result": {"uri": ..., "status": "SAFE", ...}}
    {"id": 9, "ok": false, "error": {"code": "unknown-method", "message": ...}}

Check/update results carry the document verdict plus per-edit timing
deltas: ``time_seconds`` (this check), ``delta_seconds`` (vs. the previous
check of the same URI), ``queries`` (SMT queries issued), ``warm`` and the
``solve_stats`` counters (``declarations_rechecked``/``declarations_reused``
/...).  A malformed line produces an ``id: null`` error response and the
loop continues; ``shutdown`` (or end of input) ends it.
"""

from __future__ import annotations

import json
import sys
from typing import IO, Optional

from repro.core.config import CheckConfig
from repro.core.workspace import Workspace
from repro.service.core import ServiceCore
from repro.service.protocol import (PROTOCOL_V2, ProtocolError,
                                    method_names, parse_error_response)

#: Protocol identifier reported by the ``shutdown`` response.
PROTOCOL = PROTOCOL_V2

#: The methods this shim accepts (the v2 subset of the registry).
METHODS = method_names(2)

#: Backwards-compatible alias: raising :class:`ServerError` from handler
#: code still produces the matching error response.
ServerError = ProtocolError


class Server:
    """The request dispatcher; one instance per ``repro serve`` process.

    A thin v2 facade over :class:`repro.service.core.ServiceCore`: all
    requests run against the single ``default`` tenant, synchronously.
    """

    def __init__(self, config: Optional[CheckConfig] = None,
                 workspace: Optional[Workspace] = None) -> None:
        if workspace is None:
            workspace = Workspace(config or CheckConfig())
        self.core = ServiceCore(workspace=workspace)
        self.config = self.core.config

    # -- state passthroughs (the original Server's public surface) ---------

    @property
    def workspace(self) -> Workspace:
        return self.core.manager.get(self.core.default_tenant).workspace

    @property
    def project(self):
        tenant = self.core.manager.peek(self.core.default_tenant)
        return tenant.project if tenant is not None else None

    @property
    def requests_served(self) -> int:
        return self.core.requests_served

    @property
    def shutting_down(self) -> bool:
        return self.core.shutting_down

    # -- request handling --------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Serve one decoded request object, returning the response object."""
        return self.core.handle_raw(request, version=2).to_json()

    def handle_line(self, line: str) -> Optional[dict]:
        """Serve one raw input line; ``None`` for blank lines."""
        if not line.strip():
            return None
        try:
            request = json.loads(line)
        except ValueError as exc:
            return parse_error_response(f"malformed request: {exc}").to_json()
        if not isinstance(request, dict):
            return parse_error_response(
                "request must be a JSON object").to_json()
        return self.handle(request)


def serve(stdin: Optional[IO[str]] = None, stdout: Optional[IO[str]] = None,
          config: Optional[CheckConfig] = None) -> int:
    """Run the NDJSON loop until ``shutdown`` or end of input."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    server = Server(config)
    for line in stdin:
        response = server.handle_line(line)
        if response is None:
            continue
        stdout.write(json.dumps(response) + "\n")
        stdout.flush()
        if server.shutting_down:
            break
    return 0
