"""The persistent content-addressed artifact store.

Everything PRs 3–5 taught the checker to reuse *within* a process —
interface summaries, solved kappa fixpoints, SMT verdict memos — lives here
*across* processes, on disk, keyed by content hashes so entries can never
go stale (an edit changes the hash; a config change changes the config
fingerprint folded into the key).

The stack, bottom to top:

* :mod:`repro.store.backend` — the byte-oriented :class:`StoreBackend`
  protocol plus a name registry (mirroring the SMT backend registry);
* :mod:`repro.store.local` — the shipped filesystem backend: sharded
  directories, atomic tmp-file + rename writes, mtime-ordered GC;
* :mod:`repro.store.codec` — versioned, exact (de)serialisation of
  formulas, solutions and module artifacts; anything malformed decodes as
  a miss;
* :mod:`repro.store.artifacts` — :class:`ArtifactStore`, the typed facade
  the workspace and module graph talk to, plus the keying scheme;
* :mod:`repro.store.server` / :mod:`repro.store.protocol` — the asyncio
  TCP cache server (``repro cache serve --tcp``) and the typed
  ``repro-store/1`` protocol it speaks;
* :mod:`repro.store.remote` — the ``remote://host:port`` backend: pooled
  sockets, bounded retries with jittered backoff, and a circuit breaker
  that fails open (every network failure degrades to a sound cache miss);
* :mod:`repro.store.tiered` — ``tiered://LOCAL_PATH?remote=host:port``,
  read-through/write-through local disk over the shared server.

Select a store with ``CheckConfig(store_path=...)`` (CLI ``--store`` /
``REPRO_STORE``); manage it with ``repro cache stats|gc|clear``.  A
store-warm re-check of unchanged sources replays the persisted solution
and memos and issues **zero** SMT queries and SAT searches.
"""

from repro.store.artifacts import (
    ArtifactStore,
    DEFAULT_MAX_BYTES,
    KINDS,
    MODULES,
    SOLUTIONS,
    VERDICTS,
    config_fingerprint,
    default_store_path,
    open_store,
    resolve_store_backend,
)
from repro.store.backend import (
    GcResult,
    StoreBackend,
    StoreStats,
    available_store_backends,
    create_store_backend,
    register_store_backend,
)
from repro.store.codec import STORE_SCHEMA, CodecError, ModuleArtifact
from repro.store.local import LocalStoreBackend
from repro.store.protocol import STORE_PROTOCOL
from repro.store.remote import RemoteStoreBackend, StoreUnavailableError
from repro.store.server import FaultPlan, StoreServer, StoreServerThread
from repro.store.tiered import TieredStoreBackend

register_store_backend("local", LocalStoreBackend)
register_store_backend("remote", RemoteStoreBackend)
register_store_backend("tiered", TieredStoreBackend)

__all__ = [
    "ArtifactStore",
    "CodecError",
    "DEFAULT_MAX_BYTES",
    "FaultPlan",
    "GcResult",
    "KINDS",
    "LocalStoreBackend",
    "MODULES",
    "ModuleArtifact",
    "RemoteStoreBackend",
    "SOLUTIONS",
    "STORE_PROTOCOL",
    "STORE_SCHEMA",
    "StoreBackend",
    "StoreServer",
    "StoreServerThread",
    "StoreStats",
    "StoreUnavailableError",
    "TieredStoreBackend",
    "VERDICTS",
    "available_store_backends",
    "config_fingerprint",
    "create_store_backend",
    "default_store_path",
    "open_store",
    "register_store_backend",
    "resolve_store_backend",
]
