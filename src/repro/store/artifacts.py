"""The artifact layer: content-addressed keys over a byte-oriented backend.

An :class:`ArtifactStore` persists three artifact kinds across processes:

* ``"modules"`` — a module's parse outcome (interface summary, raw imports,
  parse diagnostics), keyed by the module's *path and source text* alone —
  parsing is config-independent, so a solver-option change never
  invalidates summaries;
* ``"solutions"`` — the solved kappa assignment of one checked document;
* ``"verdicts"`` — the SMT verdict memos issued while checking it.

Solutions and verdicts are keyed by the document's content hash *combined
with* :func:`config_fingerprint` — a digest of exactly the options that can
change constraint generation, fixpoint behaviour or solver verdicts
(qualifier set, fixpoint budget/strategy, theory budget, SMT backend), so a
stale config can never alias a current one.  Deliberately *excluded*:
``smt_mode`` (verdicts are identical in both modes, asserted by the
differential fuzz suite), cache sizing (capacity, not meaning), and output
options (they never touch the pipeline).

Every load that fails to decode counts as a miss and the artifact is
recomputed — the store can serve wrong-version, truncated or corrupted
bytes and the worst case is a cold check.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.logic.terms import Expr
from repro.obs.trace import span as trace_span
from repro.smt.solver import Result
from repro.store import codec
from repro.store.backend import (
    GcResult,
    StoreBackend,
    StoreStats,
    create_store_backend,
)
from repro.store.codec import STORE_SCHEMA, CodecError, ModuleArtifact

#: Artifact kind names (the first path component under the store root).
MODULES = "modules"
SOLUTIONS = "solutions"
VERDICTS = "verdicts"
KINDS = (MODULES, SOLUTIONS, VERDICTS)

#: Default size bound enforced by ``repro cache gc`` (bytes).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def default_store_path() -> str:
    """The XDG-style default store location (``repro cache`` fallback)."""
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return str(base / "repro" / "store")


def config_fingerprint(config) -> str:
    """Digest of the verdict-affecting slice of a :class:`CheckConfig`."""
    payload = {
        "schema": STORE_SCHEMA,
        "qualifier_set": config.qualifier_set,
        "max_fixpoint_iterations": config.max_fixpoint_iterations,
        "fixpoint_strategy": config.fixpoint_strategy,
        "max_theory_iterations": config.solver.max_theory_iterations,
        "backend": config.solver.backend,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()


class ArtifactStore:
    """Typed load/save of checking artifacts over one :class:`StoreBackend`.

    ``readonly`` stores serve hits but silently drop every save — the
    ``store_mode="readonly"`` contract (e.g. CI workers sharing a
    pre-populated cache they must not grow).
    """

    def __init__(self, backend: StoreBackend, readonly: bool = False) -> None:
        self.backend = backend
        self.readonly = readonly
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- keys --------------------------------------------------------------

    @staticmethod
    def document_key(content_hash: str, config_fp: str) -> str:
        """Key of a checked document's solution/verdict artifacts."""
        return hashlib.sha256(
            f"{content_hash}:{config_fp}".encode("utf-8")).hexdigest()

    @staticmethod
    def module_key(path: str, source: str) -> str:
        """Key of a module artifact (path is baked into the summary)."""
        digest = hashlib.sha256()
        digest.update(path.encode("utf-8"))
        digest.update(b"\0")
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    # -- typed artifact access ---------------------------------------------

    def load_verdicts(self, key: str) -> Optional[List[Tuple[Expr, Result]]]:
        return self._load(VERDICTS, key)

    def save_verdicts(self, key: str,
                      pairs: Iterable[Tuple[Expr, Result]]) -> None:
        self._save(VERDICTS, key, list(pairs))

    def load_solution(self, key: str) -> Optional[Dict[str, List[Expr]]]:
        return self._load(SOLUTIONS, key)

    def save_solution(self, key: str,
                      solution: Dict[str, List[Expr]]) -> None:
        self._save(SOLUTIONS, key, solution)

    def load_module(self, path: str, source: str) -> Optional[ModuleArtifact]:
        return self._load(MODULES, self.module_key(path, source))

    def save_module(self, path: str, source: str,
                    artifact: ModuleArtifact) -> None:
        self._save(MODULES, self.module_key(path, source), artifact)

    # -- maintenance -------------------------------------------------------

    def stats(self) -> StoreStats:
        return self.backend.stats()

    def gc(self, max_bytes: int = DEFAULT_MAX_BYTES) -> GcResult:
        return self.backend.gc(max_bytes)

    def clear(self) -> int:
        return self.backend.clear()

    def counters(self) -> dict:
        """This process's store traffic (reported over the serve protocol)."""
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}

    # -- plumbing ----------------------------------------------------------

    def _load(self, kind: str, key: str):
        with trace_span("store.get", "store", kind=kind) as sp:
            payload = self.backend.get(kind, key)
            if payload is None:
                self.misses += 1
                sp.note(hit=False)
                return None
            try:
                data = codec.decode_entry(kind, payload)
            except CodecError:
                self.misses += 1
                sp.note(hit=False, decode_error=True)
                return None
            self.hits += 1
            sp.note(hit=True)
            return data

    def _save(self, kind: str, key: str, data) -> None:
        if self.readonly:
            return
        with trace_span("store.put", "store", kind=kind) as sp:
            written = self.backend.put(kind, key,
                                       codec.encode_entry(kind, data))
            sp.note(written=written)
        if written:
            self.writes += 1


def resolve_store_backend(path: str) -> StoreBackend:
    """Resolve a ``store_path`` string to a backend instance.

    ``path`` may carry a backend scheme (``"remote://host:port"`` resolves
    the ``"remote"`` factory from the registry, ``"tiered://dir?remote=..."``
    the ``"tiered"`` one); a plain path means the ``"local"`` filesystem
    backend.
    """
    name, sep, rest = path.partition("://")
    if sep:
        return create_store_backend(name, root=rest)
    return create_store_backend("local", root=path)


def open_store(config) -> Optional[ArtifactStore]:
    """The store a :class:`CheckConfig` selects, or ``None`` for no store."""
    if config.store_path is None or config.store_mode == "off":
        return None
    backend = resolve_store_backend(config.store_path)
    return ArtifactStore(backend, readonly=config.store_mode == "readonly")


# Re-exported for callers that build ModuleArtifacts (the module graph).
__all__ = [
    "ArtifactStore",
    "DEFAULT_MAX_BYTES",
    "KINDS",
    "MODULES",
    "ModuleArtifact",
    "SOLUTIONS",
    "VERDICTS",
    "config_fingerprint",
    "default_store_path",
    "open_store",
    "resolve_store_backend",
]
