"""The pluggable artifact-store seam.

Mirrors :mod:`repro.smt.backend`: the checking pipeline only ever talks to
the store through the narrow byte-oriented surface below, captured as a
runtime-checkable protocol, and backends are registered by name in a
process-wide registry.  The built-in filesystem implementation
(:class:`repro.store.local.LocalStoreBackend`, registered as ``"local"``)
is the only one shipped; a shared networked store (redis, an artifact
service) drops in by registering a factory::

    from repro.store.backend import register_store_backend

    register_store_backend("redis", lambda root, **opts: RedisStore(root))

Backends deal in opaque payload bytes — encoding, keying and corruption
handling live above them in :class:`repro.store.ArtifactStore` — and their
``get``/``put`` must be safe under concurrent writers (the local backend
uses atomic tmp-file + rename; a networked one gets this for free).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, runtime_checkable


@dataclass(frozen=True)
class KindStats:
    """Entry count and byte total for one artifact kind."""

    entries: int = 0
    bytes: int = 0


@dataclass
class StoreStats:
    """Per-kind usage of a store, as reported by ``repro cache stats``.

    Networked backends additionally report their degradation counters
    (remote errors, retries, circuit-breaker trips, ...) in ``remote``;
    purely local stores leave it ``None`` and it stays out of the JSON.
    """

    kinds: Dict[str, KindStats] = field(default_factory=dict)
    remote: Optional[dict] = None

    @property
    def total_entries(self) -> int:
        return sum(k.entries for k in self.kinds.values())

    @property
    def total_bytes(self) -> int:
        return sum(k.bytes for k in self.kinds.values())

    def to_dict(self) -> dict:
        obj = {
            "kinds": {name: {"entries": k.entries, "bytes": k.bytes}
                      for name, k in sorted(self.kinds.items())},
            "total_entries": self.total_entries,
            "total_bytes": self.total_bytes,
        }
        if self.remote is not None:
            obj["remote"] = self.remote
        return obj


@dataclass
class GcResult:
    """What one garbage collection pass removed and kept."""

    evicted_entries: int = 0
    evicted_bytes: int = 0
    kept_entries: int = 0
    kept_bytes: int = 0

    def to_dict(self) -> dict:
        return {
            "evicted_entries": self.evicted_entries,
            "evicted_bytes": self.evicted_bytes,
            "kept_entries": self.kept_entries,
            "kept_bytes": self.kept_bytes,
        }


@runtime_checkable
class StoreBackend(Protocol):
    """What the artifact layer requires of a persistence substrate."""

    def get(self, kind: str, key: str) -> Optional[bytes]:
        """The payload stored under ``(kind, key)``, or ``None``."""
        ...

    def put(self, kind: str, key: str, payload: bytes) -> bool:
        """Store ``payload`` under ``(kind, key)``; False if it could not."""
        ...

    def stats(self) -> StoreStats:
        ...

    def gc(self, max_bytes: int) -> GcResult:
        """Evict oldest entries until at most ``max_bytes`` remain."""
        ...

    def clear(self) -> int:
        """Drop every entry, returning how many were removed."""
        ...


StoreBackendFactory = Callable[..., StoreBackend]

_REGISTRY: Dict[str, StoreBackendFactory] = {}


def register_store_backend(name: str, factory: StoreBackendFactory) -> None:
    """Register (or replace) a store backend factory under ``name``."""
    _REGISTRY[name] = factory


def available_store_backends() -> List[str]:
    return sorted(_REGISTRY)


def create_store_backend(name: str = "local", **options) -> StoreBackend:
    """Instantiate the named backend (``root=`` plus backend options)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        schemes = ", ".join(f"{scheme}://"
                            for scheme in available_store_backends())
        raise ValueError(
            f"unknown store backend {name!r} "
            f"(registered schemes: {schemes})") from None
    return factory(**options)
