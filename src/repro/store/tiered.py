"""The two-level store backend: ``tiered://LOCAL_PATH?remote=host:port``.

A :class:`TieredStoreBackend` pairs a :class:`~repro.store.local.\
LocalStoreBackend` (L1, this machine's disk) with a
:class:`~repro.store.remote.RemoteStoreBackend` (L2, the fleet's shared
cache server):

* **read-through** — ``get`` answers from L1 when it can; on an L1 miss it
  asks L2 and, on a hit, populates L1 so the next read is local;
* **write-through** — ``put`` lands in L1 first (the local write is what
  correctness depends on) and is then offered to L2 so the rest of the
  fleet can reuse it.

Because L2 is the fail-open remote backend, a dead or flaky cache server
degrades every remote lookup to a miss: the worker silently falls back to
L1-only operation at local speed, and the degradation is counted, never
raised.  ``gc``/``clear`` manage the **local** tier only — the shared
server is administered directly via ``repro cache ... --store
remote://host:port``, not through every worker that happens to mount it.
"""

from __future__ import annotations

from typing import Optional

from repro.store.backend import GcResult, StoreStats
from repro.store.local import LocalStoreBackend
from repro.store.remote import RemoteStoreBackend


class TieredStoreBackend:
    """L1 local disk over L2 shared cache server, fail-open throughout."""

    def __init__(self, root: Optional[str] = None, *,
                 local: Optional[LocalStoreBackend] = None,
                 remote: Optional[RemoteStoreBackend] = None,
                 **options) -> None:
        if root is not None:
            local_path, _, query = root.partition("?")
            remote_address = None
            passthrough = []
            for pair in query.split("&"):
                if not pair:
                    continue
                name, _, value = pair.partition("=")
                if name == "remote":
                    remote_address = value
                else:
                    passthrough.append(pair)
            if not local_path:
                raise ValueError(
                    "tiered:// needs a local path: "
                    "tiered://LOCAL_PATH?remote=host:port")
            if remote_address is None:
                raise ValueError(
                    "tiered:// needs a remote server: "
                    "tiered://LOCAL_PATH?remote=host:port")
            local = LocalStoreBackend(local_path)
            remote_root = remote_address
            if passthrough:
                remote_root += "?" + "&".join(passthrough)
            remote = RemoteStoreBackend(remote_root, **options)
        if local is None or remote is None:
            raise ValueError("TieredStoreBackend needs a local and a "
                             "remote backend")
        self.local = local
        self.remote = remote
        self.l1_hits = 0
        self.l2_hits = 0
        self.l2_fills = 0

    # -- StoreBackend data protocol ----------------------------------------

    def get(self, kind: str, key: str) -> Optional[bytes]:
        payload = self.local.get(kind, key)
        if payload is not None:
            self.l1_hits += 1
            return payload
        payload = self.remote.get(kind, key)
        if payload is None:
            return None
        self.l2_hits += 1
        if self.local.put(kind, key, payload):
            self.l2_fills += 1
        return payload

    def put(self, kind: str, key: str, payload: bytes) -> bool:
        stored = self.local.put(kind, key, payload)
        # Best-effort fleet share; the remote backend degrades, never raises.
        self.remote.put(kind, key, payload)
        return stored

    # -- StoreBackend admin protocol (local tier only) ---------------------

    def stats(self) -> StoreStats:
        stats = self.local.stats()
        stats.remote = self.counters()
        return stats

    def gc(self, max_bytes: int) -> GcResult:
        return self.local.gc(max_bytes)

    def clear(self) -> int:
        return self.local.clear()

    def counters(self) -> dict:
        counters = dict(self.remote.counters())
        counters.update(l1_hits=self.l1_hits, l2_hits=self.l2_hits,
                        l2_fills=self.l2_fills)
        return counters

    def close(self) -> None:
        self.remote.close()
