"""The networked store backend: ``remote://host:port``.

A :class:`RemoteStoreBackend` implements the full
:class:`repro.store.backend.StoreBackend` protocol over a pooled NDJSON
socket client speaking ``repro-store/1`` to a cache server
(:mod:`repro.store.server`).  Its defining property is that it **fails
open**:

* data operations (``get``/``put``) NEVER raise.  Any network, timeout or
  decode failure degrades to a cache miss (``get`` -> ``None``) or a
  dropped write (``put`` -> ``False``) — a miss is always sound, the
  checker just recomputes, so a dead or lying cache server can slow a
  fleet down but can never break it or corrupt a verdict;
* failed attempts are retried with capped exponential backoff and
  deterministic seeded jitter (:func:`backoff_delays`), bounded by
  ``retries``;
* a :class:`CircuitBreaker` trips after ``breaker_threshold`` consecutive
  failures: while open, operations fail fast (no connect attempt, no
  timeout wait) so a worker keeps running at local speed when the server
  dies mid-run; after ``breaker_cooldown`` seconds one half-open trial is
  let through and either closes the breaker again or re-opens it;
* every degradation is counted (:meth:`RemoteStoreBackend.counters`) and
  surfaced through ``StoreStats.remote`` so ``repro cache stats`` and the
  bench can prove the degraded paths were exercised.

Admin operations (``stats``/``gc``/``clear``/``ping``/``shutdown``) are the
exception: they exist to manage the server, so an unreachable server raises
:class:`StoreUnavailableError` with an actionable message instead of
pretending an empty store.

Select it with ``store_path="remote://host:port"``; options ride in the
query string: ``remote://host:6160?timeout=2&retries=1&pool=4``.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from typing import Callable, Dict, List, Optional
from urllib.parse import parse_qsl

from repro.obs.trace import current_trace_id, span as trace_span
from repro.store.backend import GcResult, KindStats, StoreStats
from repro.store.protocol import (StoreProtocolError, StoreRequest,
                                  StoreResponse, decode_payload,
                                  encode_payload, spec_for)

#: Per-operation socket timeout (connect, send and receive), seconds.
DEFAULT_TIMEOUT = 5.0

#: Retries after the first failed attempt of one operation.
DEFAULT_RETRIES = 2

#: Backoff schedule: attempt N sleeps in [base*2^N / 2, base*2^N], capped.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

#: Circuit breaker: consecutive failures before opening, and how long the
#: open state lasts before a half-open trial is allowed.
BREAKER_THRESHOLD = 3
BREAKER_COOLDOWN = 5.0

#: Idle pooled connections kept per backend.
DEFAULT_POOL = 2


class StoreUnavailableError(Exception):
    """An *admin* operation could not reach the cache server.

    Data operations never raise this — they degrade to misses.
    """


class RemoteStoreError(Exception):
    """One failed attempt of one operation (internal; callers degrade)."""


def backoff_delays(attempts: int, base: float = BACKOFF_BASE,
                   cap: float = BACKOFF_CAP, seed: int = 0) -> List[float]:
    """The sleep schedule between retry attempts, jittered but deterministic.

    Attempt ``n`` draws uniformly from ``[upper/2, upper]`` where ``upper =
    min(cap, base * 2**n)`` — "equal jitter": enough randomness to decorrelate
    a fleet hammering a recovering server, while a fixed ``seed`` makes the
    schedule reproducible for tests and deterministic benches.
    """
    rng = random.Random(seed)
    delays = []
    for attempt in range(attempts):
        upper = min(cap, base * (2.0 ** attempt))
        delays.append(upper / 2.0 + rng.random() * upper / 2.0)
    return delays


class CircuitBreaker:
    """Closed -> open after N consecutive failures -> half-open -> closed.

    Thread-safe; time is injected for deterministic tests.  While OPEN,
    :meth:`allow` answers False (callers fail fast).  After ``cooldown``
    seconds the next :meth:`allow` switches to HALF_OPEN and lets exactly
    one trial through; :meth:`record_success` closes the breaker,
    :meth:`record_failure` re-opens it for another cooldown.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, threshold: int = BREAKER_THRESHOLD,
                 cooldown: float = BREAKER_COOLDOWN,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self.clock = clock
        self.state = self.CLOSED
        self.failures = 0
        self.opens = 0
        self.opened_at = 0.0
        self._lock = threading.Lock()

    def allow(self) -> bool:
        with self._lock:
            if self.state == self.CLOSED:
                return True
            if self.state == self.OPEN:
                if self.clock() - self.opened_at >= self.cooldown:
                    self.state = self.HALF_OPEN
                    return True  # the one half-open trial
                return False
            return False  # HALF_OPEN: the trial is already in flight

    def record_success(self) -> None:
        with self._lock:
            self.state = self.CLOSED
            self.failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            if self.state == self.HALF_OPEN or self.failures >= self.threshold:
                if self.state != self.OPEN:
                    self.opens += 1
                self.state = self.OPEN
                self.opened_at = self.clock()
                self.failures = 0


class _PooledClient:
    """A small thread-safe pool of NDJSON connections to one server."""

    def __init__(self, host: str, port: int, timeout: float,
                 pool_size: int) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.pool_size = max(1, pool_size)
        self._idle: List[socket.socket] = []
        self._lock = threading.Lock()
        self._next_id = 0

    def _acquire(self) -> socket.socket:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _release(self, sock: socket.socket) -> None:
        with self._lock:
            if len(self._idle) < self.pool_size:
                self._idle.append(sock)
                return
        sock.close()

    def call(self, method: str, params) -> dict:
        """One request/response round trip; any failure raises
        :class:`RemoteStoreError` (the socket involved is discarded)."""
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
        line = json.dumps(StoreRequest(method=method, id=request_id,
                                       params=params,
                                       trace=current_trace_id()
                                       ).to_json()) + "\n"
        sock: Optional[socket.socket] = None
        try:
            sock = self._acquire()
            sock.settimeout(self.timeout)
            sock.sendall(line.encode("utf-8"))
            raw = self._read_line(sock)
            obj = json.loads(raw.decode("utf-8"))
            if not isinstance(obj, dict):
                raise ValueError("response is not a JSON object")
            response = StoreResponse.from_json(obj)
            if response.id != request_id:
                raise ValueError(f"response id {response.id!r} does not "
                                 f"match request id {request_id!r}")
            result = response.raise_for_error()
        except (OSError, ValueError, StoreProtocolError) as exc:
            if sock is not None:
                sock.close()
            raise RemoteStoreError(f"{type(exc).__name__}: {exc}") from exc
        self._release(sock)
        return result

    @staticmethod
    def _read_line(sock: socket.socket) -> bytes:
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            chunks.append(chunk)
            if chunk.endswith(b"\n") or b"\n" in chunk:
                break
        return b"".join(chunks)

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for sock in idle:
            sock.close()


def _parse_address(root: str) -> tuple:
    """``"host:port?opt=v&..."`` -> (host, port, options dict)."""
    address, _, query = root.partition("?")
    options = dict(parse_qsl(query))
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"invalid remote store address {address!r} "
            "(expected remote://host:port)")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid remote store port {port_text!r} "
                         f"in {address!r}") from None
    return host, port, options


class RemoteStoreBackend:
    """The ``remote://`` scheme: a cache server behind the store protocol."""

    def __init__(self, root: Optional[str] = None, *,
                 host: Optional[str] = None, port: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 pool: Optional[int] = None,
                 backoff_base: float = BACKOFF_BASE,
                 backoff_cap: float = BACKOFF_CAP,
                 jitter_seed: int = 0,
                 breaker_threshold: int = BREAKER_THRESHOLD,
                 breaker_cooldown: float = BREAKER_COOLDOWN,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic,
                 **_options) -> None:
        options: Dict[str, str] = {}
        if root is not None:
            host, port, options = _parse_address(root)
        if host is None or port is None:
            raise ValueError("RemoteStoreBackend needs remote://host:port")
        self.timeout = float(options.get("timeout", timeout
                                         if timeout is not None
                                         else DEFAULT_TIMEOUT))
        self.retries = int(options.get("retries", retries
                                       if retries is not None
                                       else DEFAULT_RETRIES))
        pool_size = int(options.get("pool", pool if pool is not None
                                    else DEFAULT_POOL))
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.jitter_seed = jitter_seed
        self.client = _PooledClient(host, port, self.timeout, pool_size)
        self.breaker = CircuitBreaker(threshold=breaker_threshold,
                                      cooldown=breaker_cooldown, clock=clock)
        self._sleep = sleep
        self._lock = threading.Lock()
        self.remote_errors = 0    # failed attempts (network/decode)
        self.retries_used = 0     # attempts beyond the first
        self.fail_fast = 0        # ops short-circuited by the open breaker
        self.degraded_gets = 0    # gets that degraded to a miss
        self.degraded_puts = 0    # puts that degraded to a dropped write

    # -- counters ----------------------------------------------------------

    def _count(self, counter: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    def counters(self) -> dict:
        """This backend's degradation counters (surfaced in StoreStats)."""
        with self._lock:
            return {
                "remote_errors": self.remote_errors,
                "retries": self.retries_used,
                "fail_fast": self.fail_fast,
                "circuit_opens": self.breaker.opens,
                "circuit_state": self.breaker.state,
                "degraded_gets": self.degraded_gets,
                "degraded_puts": self.degraded_puts,
            }

    # -- the degraded (data) path ------------------------------------------

    def _call_degraded(self, method: str, params) -> Optional[dict]:
        """One data op: retries + breaker; ``None`` means "degrade"."""
        with trace_span("store.remote", "store", method=method) as sp:
            if not self.breaker.allow():
                self._count("fail_fast")
                sp.note(fail_fast=True)
                return None
            delays = backoff_delays(self.retries, self.backoff_base,
                                    self.backoff_cap, self.jitter_seed)
            for attempt in range(self.retries + 1):
                try:
                    result = self.client.call(method, params)
                except RemoteStoreError:
                    self._count("remote_errors")
                    self.breaker.record_failure()
                    if attempt >= self.retries or not self.breaker.allow():
                        sp.note(attempts=attempt + 1, degraded=True)
                        return None
                    self._count("retries_used")
                    self._sleep(delays[attempt])
                    continue
                self.breaker.record_success()
                sp.note(attempts=attempt + 1)
                return result
            return None

    # -- StoreBackend data protocol ----------------------------------------

    def get(self, kind: str, key: str) -> Optional[bytes]:
        spec = spec_for("get")
        result = self._call_degraded("get", spec.params(kind=kind, key=key))
        if result is None:
            self._count("degraded_gets")
            return None
        payload = spec.payload.from_json(result)
        if not payload.found or payload.payload_b64 is None:
            return None
        try:
            return decode_payload(payload.payload_b64)
        except StoreProtocolError:
            # The transport worked but the bytes are unusable — a miss.
            self._count("remote_errors")
            self._count("degraded_gets")
            return None

    def put(self, kind: str, key: str, payload: bytes) -> bool:
        spec = spec_for("put")
        result = self._call_degraded(
            "put", spec.params(kind=kind, key=key,
                               payload_b64=encode_payload(payload)))
        if result is None:
            self._count("degraded_puts")
            return False
        return bool(spec.payload.from_json(result).stored)

    # -- StoreBackend admin protocol (raises when unreachable) -------------

    def _call_admin(self, method: str, params) -> dict:
        last: Optional[RemoteStoreError] = None
        delays = backoff_delays(self.retries, self.backoff_base,
                                self.backoff_cap, self.jitter_seed)
        for attempt in range(self.retries + 1):
            try:
                result = self.client.call(method, params)
            except RemoteStoreError as exc:
                last = exc
                self._count("remote_errors")
                self.breaker.record_failure()
                if attempt < self.retries:
                    self._count("retries_used")
                    self._sleep(delays[attempt])
                continue
            self.breaker.record_success()
            return result
        raise StoreUnavailableError(
            f"cache server {self.client.host}:{self.client.port} "
            f"is unreachable ({last})")

    def stats(self) -> StoreStats:
        spec = spec_for("stats")
        payload = spec.payload.from_json(
            self._call_admin("stats", spec.params()))
        stats = StoreStats(kinds={
            name: KindStats(entries=int(entry.get("entries", 0)),
                            bytes=int(entry.get("bytes", 0)))
            for name, entry in sorted(payload.kinds.items())})
        stats.remote = self.counters()
        return stats

    def gc(self, max_bytes: int) -> GcResult:
        spec = spec_for("gc")
        payload = spec.payload.from_json(
            self._call_admin("gc", spec.params(max_bytes=max_bytes)))
        return GcResult(evicted_entries=payload.evicted_entries,
                        evicted_bytes=payload.evicted_bytes,
                        kept_entries=payload.kept_entries,
                        kept_bytes=payload.kept_bytes)

    def clear(self) -> int:
        spec = spec_for("clear")
        return int(spec.payload.from_json(
            self._call_admin("clear", spec.params())).removed)

    def ping(self) -> dict:
        spec = spec_for("ping")
        return self._call_admin("ping", spec.params())

    def shutdown(self) -> dict:
        spec = spec_for("shutdown")
        return self._call_admin("shutdown", spec.params())

    def close(self) -> None:
        self.client.close()
