"""Serialisation of store artifacts: exact, versioned, paranoid.

Three artifact kinds cross process boundaries (see :mod:`repro.store`):

* **verdict memos** — ``(formula, Result)`` pairs that re-seed
  :class:`repro.smt.solver.Solver`'s query cache;
* **kappa solutions** — the liquid fixpoint a finished check produced,
  replayed as the warm-start seed :meth:`LiquidSolver.solve` accepts;
* **module artifacts** — a module's parse outcome: interface summary,
  raw import declarations and parse diagnostics.

Formulas are encoded as tagged JSON arrays, one tag per
:mod:`repro.logic.terms` node, and decode back to the *identical* frozen
dataclass values (same hash, same equality) — that exactness is what lets a
decoded memo hit the solver cache and a decoded solution replay to a
byte-identical verdict.

Every persisted entry is wrapped in an envelope carrying
:data:`STORE_SCHEMA`; decoding anything malformed — truncated payloads,
garbage bytes, entries written by a different schema version, unknown tags
or result values — raises :class:`CodecError`, which the store treats as a
cache miss (recompute, never crash, never a wrong verdict).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from repro.errors import Diagnostic, ErrorKind, Severity, SourceSpan
from repro.logic.sorts import Sort, sort_named
from repro.logic.terms import (
    App,
    BinOp,
    BoolLit,
    Expr,
    Field,
    IntLit,
    Ite,
    StrLit,
    UnOp,
    Var,
)
from repro.smt.solver import Result

if TYPE_CHECKING:  # imported lazily at runtime to keep the store package
    # independent of repro.project (which imports the workspace, which
    # imports the store — a cycle if this were a module-level import).
    from repro.project.summary import ModuleSummary

#: Version stamp of every on-disk entry.  Bump whenever the encoding of any
#: artifact kind changes shape or meaning; old entries then decode as misses
#: and are recomputed (and overwritten) instead of being misread.
STORE_SCHEMA = 1


class CodecError(ValueError):
    """A store entry that cannot be decoded (treated as a cache miss)."""


# ---------------------------------------------------------------------------
# formulas
# ---------------------------------------------------------------------------


def encode_expr(expr: Expr) -> list:
    """One logic term as a tagged JSON array (exact round trip)."""
    if isinstance(expr, Var):
        return ["v", expr.name, expr.sort.name]
    if isinstance(expr, IntLit):
        return ["i", expr.value]
    if isinstance(expr, BoolLit):
        return ["b", expr.value]
    if isinstance(expr, StrLit):
        return ["s", expr.value]
    if isinstance(expr, App):
        return ["a", expr.fn, [encode_expr(arg) for arg in expr.args],
                expr.sort.name]
    if isinstance(expr, Field):
        return ["f", encode_expr(expr.target), expr.name, expr.sort.name]
    if isinstance(expr, BinOp):
        return ["o", expr.op, encode_expr(expr.left),
                encode_expr(expr.right), expr.sort.name]
    if isinstance(expr, UnOp):
        return ["u", expr.op, encode_expr(expr.operand), expr.sort.name]
    if isinstance(expr, Ite):
        return ["t", encode_expr(expr.cond), encode_expr(expr.then),
                encode_expr(expr.els), expr.sort.name]
    raise CodecError(f"cannot encode expression node {type(expr).__name__}")


def _sort(name) -> Sort:
    if not isinstance(name, str):
        raise CodecError(f"sort name must be a string, got {name!r}")
    return sort_named(name)


def decode_expr(obj) -> Expr:
    """The inverse of :func:`encode_expr`; :class:`CodecError` on garbage."""
    if not isinstance(obj, list) or not obj:
        raise CodecError(f"expression must be a tagged array, got {obj!r}")
    tag = obj[0]
    try:
        if tag == "v":
            _, name, sort = obj
            if not isinstance(name, str):
                raise CodecError("Var name must be a string")
            return Var(name, _sort(sort))
        if tag == "i":
            _, value = obj
            # bool is an int subclass; an IntLit(True) would not round-trip.
            if not isinstance(value, int) or isinstance(value, bool):
                raise CodecError("IntLit value must be an integer")
            return IntLit(value)
        if tag == "b":
            _, value = obj
            if not isinstance(value, bool):
                raise CodecError("BoolLit value must be a boolean")
            return BoolLit(value)
        if tag == "s":
            _, value = obj
            if not isinstance(value, str):
                raise CodecError("StrLit value must be a string")
            return StrLit(value)
        if tag == "a":
            _, fn, args, sort = obj
            if not isinstance(fn, str) or not isinstance(args, list):
                raise CodecError("App needs a function name and an arg list")
            return App(fn, tuple(decode_expr(arg) for arg in args),
                       _sort(sort))
        if tag == "f":
            _, target, name, sort = obj
            if not isinstance(name, str):
                raise CodecError("Field name must be a string")
            return Field(decode_expr(target), name, _sort(sort))
        if tag == "o":
            _, op, left, right, sort = obj
            if not isinstance(op, str):
                raise CodecError("BinOp operator must be a string")
            return BinOp(op, decode_expr(left), decode_expr(right),
                         _sort(sort))
        if tag == "u":
            _, op, operand, sort = obj
            if not isinstance(op, str):
                raise CodecError("UnOp operator must be a string")
            return UnOp(op, decode_expr(operand), _sort(sort))
        if tag == "t":
            _, cond, then, els, sort = obj
            return Ite(decode_expr(cond), decode_expr(then),
                       decode_expr(els), _sort(sort))
    except ValueError as exc:
        # Arity mismatches surface as unpacking ValueErrors.
        raise CodecError(f"malformed {tag!r} node: {exc}") from exc
    raise CodecError(f"unknown expression tag {tag!r}")


# ---------------------------------------------------------------------------
# verdict memos and kappa solutions
# ---------------------------------------------------------------------------


def encode_verdicts(pairs: Iterable[Tuple[Expr, Result]]) -> list:
    return [[encode_expr(formula), result.value] for formula, result in pairs]


def decode_verdicts(obj) -> List[Tuple[Expr, Result]]:
    if not isinstance(obj, list):
        raise CodecError("verdict memos must be a list")
    pairs: List[Tuple[Expr, Result]] = []
    for item in obj:
        if not isinstance(item, list) or len(item) != 2:
            raise CodecError(f"verdict memo must be a pair, got {item!r}")
        encoded, value = item
        try:
            result = Result(value)
        except ValueError as exc:
            raise CodecError(f"unknown verdict {value!r}") from exc
        pairs.append((decode_expr(encoded), result))
    return pairs


def encode_solution(solution: Dict[str, List[Expr]]) -> dict:
    return {kappa: [encode_expr(q) for q in quals]
            for kappa, quals in solution.items()}


def decode_solution(obj) -> Dict[str, List[Expr]]:
    if not isinstance(obj, dict):
        raise CodecError("kappa solution must be an object")
    solution: Dict[str, List[Expr]] = {}
    for kappa, quals in obj.items():
        if not isinstance(kappa, str) or not isinstance(quals, list):
            raise CodecError(f"malformed solution entry for {kappa!r}")
        solution[kappa] = [decode_expr(q) for q in quals]
    return solution


# ---------------------------------------------------------------------------
# module artifacts
# ---------------------------------------------------------------------------


@dataclass
class ModuleArtifact:
    """A module's parse outcome, sufficient to rebuild its graph node.

    ``imports`` holds the *raw* import declarations ``(names, specifier,
    span)`` — resolution against the module set is recomputed per graph
    (it depends on which sibling files exist, not on this module alone).
    """

    parses: bool
    summary: "ModuleSummary"
    imports: List[Tuple[List[str], str, SourceSpan]] = field(
        default_factory=list)
    parse_diagnostics: List[Diagnostic] = field(default_factory=list)


def _encode_span(span: SourceSpan) -> list:
    return [span.line, span.col, span.end_line, span.end_col, span.filename]


def _decode_span(obj) -> SourceSpan:
    if (not isinstance(obj, list) or len(obj) != 5
            or not all(isinstance(n, int) for n in obj[:4])
            or not isinstance(obj[4], str)):
        raise CodecError(f"malformed source span {obj!r}")
    return SourceSpan(obj[0], obj[1], obj[2], obj[3], obj[4])


def _encode_diagnostic(diag: Diagnostic) -> dict:
    return {"kind": diag.kind.value, "message": diag.message,
            "span": _encode_span(diag.span),
            "severity": diag.severity.value, "code": diag.code}


def _decode_diagnostic(obj) -> Diagnostic:
    if not isinstance(obj, dict):
        raise CodecError("diagnostic must be an object")
    try:
        kind = ErrorKind(obj["kind"])
        severity = Severity(obj["severity"])
        message = obj["message"]
        code = obj["code"]
    except (KeyError, ValueError) as exc:
        raise CodecError(f"malformed diagnostic: {exc}") from exc
    if not isinstance(message, str) or not isinstance(code, str):
        raise CodecError("diagnostic message/code must be strings")
    return Diagnostic(kind, message, _decode_span(obj["span"]),
                      severity, code)


def encode_module(artifact: ModuleArtifact) -> dict:
    summary = artifact.summary
    return {
        "parses": artifact.parses,
        "summary": {
            "path": summary.path,
            # A pair-list, not an object: the envelope serialiser sorts
            # object keys, and export order is declaration order — it must
            # survive the round trip byte-exactly (the interface prelude,
            # and with it every dependent's store key, is rendered from it).
            "exports": [[name, list(decls)]
                        for name, decls in summary.exports.items()],
            "qualifiers": list(summary.qualifiers),
            "fingerprint": summary.fingerprint,
        },
        "imports": [[list(names), specifier, _encode_span(span)]
                    for names, specifier, span in artifact.imports],
        "parse_diagnostics": [_encode_diagnostic(d)
                              for d in artifact.parse_diagnostics],
    }


def decode_module(obj) -> ModuleArtifact:
    from repro.project.summary import ModuleSummary
    if not isinstance(obj, dict):
        raise CodecError("module artifact must be an object")
    try:
        parses = obj["parses"]
        raw_summary = obj["summary"]
        raw_imports = obj["imports"]
        raw_diags = obj["parse_diagnostics"]
        path = raw_summary["path"]
        exports = raw_summary["exports"]
        qualifiers = raw_summary["qualifiers"]
        fingerprint = raw_summary["fingerprint"]
    except (KeyError, TypeError) as exc:
        raise CodecError(f"malformed module artifact: {exc}") from exc
    if (not isinstance(parses, bool) or not isinstance(path, str)
            or not isinstance(exports, list)
            or not isinstance(qualifiers, list)
            or not isinstance(fingerprint, str)
            or not isinstance(raw_imports, list)
            or not isinstance(raw_diags, list)):
        raise CodecError("malformed module artifact")
    decoded_exports: Dict[str, List[str]] = {}
    for entry in exports:
        if not isinstance(entry, list) or len(entry) != 2:
            raise CodecError(f"malformed export entry {entry!r}")
        name, decls = entry
        if (not isinstance(name, str) or not isinstance(decls, list)
                or not all(isinstance(d, str) for d in decls)):
            raise CodecError(f"malformed export entry {name!r}")
        decoded_exports[name] = list(decls)
    if not all(isinstance(q, str) for q in qualifiers):
        raise CodecError("malformed qualifier list")
    summary = ModuleSummary(
        path=path, exports=decoded_exports,
        qualifiers=list(qualifiers), fingerprint=fingerprint)
    imports: List[Tuple[List[str], str, SourceSpan]] = []
    for item in raw_imports:
        if not isinstance(item, list) or len(item) != 3:
            raise CodecError(f"malformed import entry {item!r}")
        names, specifier, span = item
        if (not isinstance(names, list)
                or not all(isinstance(n, str) for n in names)
                or not isinstance(specifier, str)):
            raise CodecError(f"malformed import entry {item!r}")
        imports.append((list(names), specifier, _decode_span(span)))
    return ModuleArtifact(
        parses=parses, summary=summary, imports=imports,
        parse_diagnostics=[_decode_diagnostic(d) for d in raw_diags])


# ---------------------------------------------------------------------------
# the entry envelope
# ---------------------------------------------------------------------------

_ENCODERS = {
    "verdicts": encode_verdicts,
    "solutions": encode_solution,
    "modules": encode_module,
}

_DECODERS = {
    "verdicts": decode_verdicts,
    "solutions": decode_solution,
    "modules": decode_module,
}


def encode_entry(kind: str, data) -> bytes:
    """Wrap one artifact in the versioned envelope, serialised to bytes."""
    payload = {"schema": STORE_SCHEMA, "kind": kind, "data":
               _ENCODERS[kind](data)}
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def decode_entry(kind: str, payload: bytes):
    """Unwrap and decode one entry; :class:`CodecError` on anything off.

    The catch-all below is deliberate: a store entry is untrusted input
    (another process, another version, a partial write), and *any* failure
    to decode it must read as a miss, never as an exception escaping into
    the checking pipeline.
    """
    try:
        obj = json.loads(payload.decode("utf-8"))
        if not isinstance(obj, dict):
            raise CodecError("entry must be a JSON object")
        if obj.get("schema") != STORE_SCHEMA:
            raise CodecError(f"schema mismatch: {obj.get('schema')!r} "
                             f"(expected {STORE_SCHEMA})")
        if obj.get("kind") != kind:
            raise CodecError(f"kind mismatch: {obj.get('kind')!r} "
                             f"(expected {kind!r})")
        return _DECODERS[kind](obj.get("data"))
    except CodecError:
        raise
    except Exception as exc:  # noqa: BLE001 — untrusted bytes, see above
        raise CodecError(f"malformed {kind} entry: "
                         f"{type(exc).__name__}: {exc}") from exc
