"""The filesystem store backend: sharded dirs, atomic writes, mtime GC.

Layout (one file per entry, two-hex-character shard fan-out)::

    <root>/<kind>/<key[:2]>/<key>.json

Writes go to a uniquely named ``*.tmp`` sibling first and land with
:func:`os.replace`, so a reader (or a concurrent writer of the same key)
only ever observes a complete entry — the atomic-rename discipline that
makes N processes checking against one store safe without locking.  Any
read or write error degrades to a miss / dropped write: a broken cache must
never break (or slow down by crashing) the check it was accelerating.

``gc`` evicts oldest-mtime entries first until the store fits the byte
bound, and sweeps ``*.tmp`` droppings left by crashed writers.
"""

from __future__ import annotations

import itertools
import os
import pathlib
from typing import List, Optional, Tuple

from repro.store.backend import GcResult, KindStats, StoreStats


class LocalStoreBackend:
    """Content-addressed entries as sharded files under one root."""

    def __init__(self, root, **_options) -> None:
        # Unknown options are ignored, not rejected — the same forward
        # compatibility convention the SMT backend registry uses.
        self.root = pathlib.Path(root)
        self._tmp_counter = itertools.count()

    # -- paths -------------------------------------------------------------

    def _path(self, kind: str, key: str) -> pathlib.Path:
        if not kind or any(ch in kind for ch in "/\\.") or kind.startswith("-"):
            raise ValueError(f"invalid artifact kind {kind!r}")
        if len(key) < 3 or not all(c.isalnum() or c in "-_" for c in key):
            raise ValueError(f"invalid artifact key {key!r}")
        return self.root / kind / key[:2] / f"{key}.json"

    # -- the byte-oriented protocol ----------------------------------------

    def get(self, kind: str, key: str) -> Optional[bytes]:
        try:
            return self._path(kind, key).read_bytes()
        except OSError:
            return None

    def put(self, kind: str, key: str, payload: bytes) -> bool:
        path = self._path(kind, key)
        tmp = path.with_name(
            f".{key}.{os.getpid()}.{next(self._tmp_counter)}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(payload)
            os.replace(tmp, path)
            return True
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False

    def stats(self) -> StoreStats:
        stats = StoreStats()
        for kind, entries in self._scan():
            stats.kinds[kind] = KindStats(
                entries=len(entries),
                bytes=sum(size for _path, size, _mtime in entries))
        return stats

    def gc(self, max_bytes: int) -> GcResult:
        """Evict oldest entries (by mtime, ties by path) past ``max_bytes``."""
        entries: List[Tuple[pathlib.Path, int, float]] = []
        for _kind, kind_entries in self._scan(sweep_tmp=True):
            entries.extend(kind_entries)
        entries.sort(key=lambda e: (e[2], str(e[0])))
        total = sum(size for _path, size, _mtime in entries)
        result = GcResult()
        for path, size, _mtime in entries:
            if total <= max_bytes:
                result.kept_entries += 1
                result.kept_bytes += size
                continue
            try:
                path.unlink()
            except FileNotFoundError:
                # A concurrent writer (or another GC) already replaced or
                # removed this entry between listing and unlink: it is
                # gone, so it is neither kept nor evicted by this pass.
                total -= size
                continue
            except OSError:
                result.kept_entries += 1
                result.kept_bytes += size
                continue
            total -= size
            result.evicted_entries += 1
            result.evicted_bytes += size
        return result

    def clear(self) -> int:
        removed = 0
        for _kind, entries in self._scan(sweep_tmp=True):
            for path, _size, _mtime in entries:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    # -- helpers -----------------------------------------------------------

    def _scan(self, sweep_tmp: bool = False):
        """Yield ``(kind, [(path, size, mtime), ...])`` per kind directory.

        With ``sweep_tmp`` the walk also unlinks stale ``*.tmp`` files —
        droppings of writers that died between write and rename."""
        if not self.root.is_dir():
            return
        for kind_dir in sorted(self.root.iterdir()):
            if not kind_dir.is_dir():
                continue
            entries: List[Tuple[pathlib.Path, int, float]] = []
            for path in sorted(kind_dir.glob("*/*")):
                if path.name.endswith(".tmp"):
                    if sweep_tmp:
                        try:
                            path.unlink()
                        except OSError:
                            pass
                    continue
                if path.suffix != ".json":
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((path, stat.st_size, stat.st_mtime))
            yield kind_dir.name, entries
