"""The typed cache-server protocol: ``repro-store/1``.

Mirrors the registry discipline of :mod:`repro.service.protocol`: every
method the cache server speaks is declared **once**, in :data:`METHODS`,
binding the method name to its params dataclass and its result payload
dataclass.  The asyncio server, the pooled socket client and the rendered
``ping`` response all consult the same registry, so a method cannot exist
half-way.

The protocol is deliberately tiny — a shared artifact store has exactly two
data operations and a handful of admin operations::

    get / put            opaque (kind, key) -> payload bytes
    stats / gc / clear   what ``repro cache stats|gc|clear`` needs remotely
    ping                 liveness + identification (readiness probes)
    shutdown             stop the server after responding

Wire shape: one JSON object per NDJSON line, the same envelope the serve
protocol uses::

    -> {"id": 3, "method": "get", "params": {"kind": "verdicts", "key": "ab..."}}
    <- {"id": 3, "ok": true, "result": {"found": true, "payload_b64": "..."}}
    <- {"id": 4, "ok": false, "error": {"code": "bad-params", "message": "..."}}

Payload bytes travel base64-encoded (``payload_b64``) — the store deals in
opaque bytes (encoding and corruption handling live in
:class:`repro.store.ArtifactStore`, which already treats anything
undecodable as a miss, so a corrupted response can never poison a client).
"""

from __future__ import annotations

import base64
import binascii
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

#: Protocol identifier spoken by the cache server and its clients.
STORE_PROTOCOL = "repro-store/1"

#: Error codes a response may carry (clients map unknown codes to
#: ``internal-error`` rather than crashing).
ERROR_CODES: Tuple[str, ...] = (
    "parse-error",      # the request line is not a JSON object
    "unknown-method",   # method absent from the registry
    "bad-params",       # params missing, mistyped or not an object
    "internal-error",   # the backend operation crashed; the loop survives
)


class StoreProtocolError(Exception):
    """A request or response that cannot be served/decoded."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def _require_str(obj: dict, name: str) -> str:
    value = obj.get(name)
    if not isinstance(value, str) or not value:
        raise StoreProtocolError("bad-params",
                                 f"params.{name} must be a string")
    return value


def _require_int(obj: dict, name: str) -> int:
    value = obj.get(name)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise StoreProtocolError(
            "bad-params", f"params.{name} must be a non-negative integer")
    return value


def encode_payload(payload: bytes) -> str:
    return base64.b64encode(payload).decode("ascii")


def decode_payload(text: str) -> bytes:
    """Decode ``payload_b64``; malformed base64 raises, callers degrade."""
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, binascii.Error) as exc:
        raise StoreProtocolError("parse-error",
                                 f"malformed payload_b64: {exc}") from None


# ---------------------------------------------------------------------------
# params codecs (client -> server)
# ---------------------------------------------------------------------------


@dataclass
class EmptyParams:
    """Params for methods that take none (extra fields are ignored)."""

    @classmethod
    def from_json(cls, obj: dict) -> "EmptyParams":
        return cls()

    def to_json(self) -> dict:
        return {}


@dataclass
class EntryParams:
    """``get``: the (kind, key) address of one artifact."""

    kind: str
    key: str

    @classmethod
    def from_json(cls, obj: dict) -> "EntryParams":
        return cls(kind=_require_str(obj, "kind"), key=_require_str(obj, "key"))

    def to_json(self) -> dict:
        return {"kind": self.kind, "key": self.key}


@dataclass
class PutParams:
    """``put``: an artifact address plus its base64-encoded bytes."""

    kind: str
    key: str
    payload_b64: str

    @classmethod
    def from_json(cls, obj: dict) -> "PutParams":
        return cls(kind=_require_str(obj, "kind"),
                   key=_require_str(obj, "key"),
                   payload_b64=_require_str(obj, "payload_b64"))

    def to_json(self) -> dict:
        return {"kind": self.kind, "key": self.key,
                "payload_b64": self.payload_b64}


@dataclass
class GcParams:
    """``gc``: the byte bound the store must be evicted down to."""

    max_bytes: int

    @classmethod
    def from_json(cls, obj: dict) -> "GcParams":
        return cls(max_bytes=_require_int(obj, "max_bytes"))

    def to_json(self) -> dict:
        return {"max_bytes": self.max_bytes}


# ---------------------------------------------------------------------------
# payload codecs (server -> client)
# ---------------------------------------------------------------------------


class _Payload:
    """Shared to_json/from_json over the dataclass fields (unknown-field
    tolerant both directions, like the serve payloads)."""

    def to_json(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_json(cls, obj: dict):
        if not isinstance(obj, dict):
            raise StoreProtocolError(
                "parse-error", f"{cls.__name__} payload must be an object")
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in obj.items() if k in known})


@dataclass
class GetPayload(_Payload):
    """Result of ``get`` — a hit carries the entry bytes, base64-encoded."""

    found: bool = False
    payload_b64: Optional[str] = None


@dataclass
class PutPayload(_Payload):
    """Result of ``put`` — whether the backend accepted the write."""

    stored: bool = False


@dataclass
class StatsPayload(_Payload):
    """Result of ``stats`` — the server-side store's per-kind usage."""

    kinds: Dict[str, dict] = field(default_factory=dict)
    total_entries: int = 0
    total_bytes: int = 0


@dataclass
class GcPayload(_Payload):
    """Result of ``gc`` — what the server-side pass evicted and kept."""

    evicted_entries: int = 0
    evicted_bytes: int = 0
    kept_entries: int = 0
    kept_bytes: int = 0


@dataclass
class ClearPayload(_Payload):
    """Result of ``clear`` — how many entries were dropped."""

    removed: int = 0


@dataclass
class PingPayload(_Payload):
    """Result of ``ping`` — identification, liveness and server counters.

    ``faults`` reports the fault-injection counters when the server runs
    with a :class:`repro.store.server.FaultPlan` (``None`` in normal
    operation), so a bench can prove degraded paths were actually hit.
    """

    protocol: str = STORE_PROTOCOL
    methods: List[str] = field(default_factory=list)
    requests_served: int = 0
    store: str = ""
    faults: Optional[dict] = None


@dataclass
class ShutdownPayload(_Payload):
    """Result of ``shutdown`` — acknowledged; the server stops after this."""

    shutdown: bool = True
    protocol: str = STORE_PROTOCOL
    requests_served: int = 0


# ---------------------------------------------------------------------------
# the method registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StoreMethodSpec:
    """One protocol method: its codecs and documentation."""

    name: str
    params: type
    payload: type
    doc: str


def _spec(name: str, params: type, payload: type,
          doc: str) -> Tuple[str, StoreMethodSpec]:
    return name, StoreMethodSpec(name, params, payload, doc)


#: The exhaustive method registry (insertion order is the documented order).
METHODS: Dict[str, StoreMethodSpec] = dict([
    _spec("get", EntryParams, GetPayload,
          "Fetch the payload stored under (kind, key), if any."),
    _spec("put", PutParams, PutPayload,
          "Store a payload under (kind, key); last write wins."),
    _spec("stats", EmptyParams, StatsPayload,
          "Per-kind entry counts and byte totals of the server's store."),
    _spec("gc", GcParams, GcPayload,
          "Evict oldest entries until at most max_bytes remain."),
    _spec("clear", EmptyParams, ClearPayload,
          "Drop every entry from the server's store."),
    _spec("ping", EmptyParams, PingPayload,
          "Liveness probe: protocol, methods and request counters."),
    _spec("shutdown", EmptyParams, ShutdownPayload,
          "Stop the server after responding."),
])


def method_names() -> Tuple[str, ...]:
    return tuple(METHODS)


def spec_for(method: Any) -> StoreMethodSpec:
    spec = METHODS.get(method) if isinstance(method, str) else None
    if spec is None:
        raise StoreProtocolError(
            "unknown-method",
            f"unknown method {method!r} "
            f"(expected one of {', '.join(method_names())})")
    return spec


# ---------------------------------------------------------------------------
# envelopes
# ---------------------------------------------------------------------------


@dataclass
class StoreRequest:
    """One decoded request: method plus typed params.

    ``trace`` carries the client's active trace id (see
    :mod:`repro.obs.trace`) so a fleet's store traffic can be stitched
    into one cross-process trace; it is omitted when unset and silently
    ignored by servers that predate it.
    """

    method: str
    id: Any = None
    params: Any = None
    trace: Optional[str] = None

    def to_json(self) -> dict:
        obj: dict = {"id": self.id, "method": self.method}
        params = self.params.to_json() if self.params is not None else {}
        if params:
            obj["params"] = params
        if self.trace is not None:
            obj["trace"] = self.trace
        return obj


def decode_request(obj: dict) -> StoreRequest:
    """Decode one request object; raises :class:`StoreProtocolError`."""
    spec = spec_for(obj.get("method"))
    params = obj.get("params") or {}
    if not isinstance(params, dict):
        raise StoreProtocolError("bad-params", "params must be an object")
    trace = obj.get("trace")
    return StoreRequest(method=spec.name, id=obj.get("id"),
                        params=spec.params.from_json(params),
                        trace=trace if isinstance(trace, str) else None)


@dataclass
class StoreResponse:
    """One response: ``ok`` with a result payload, or an error."""

    id: Any = None
    ok: bool = True
    result: Optional[dict] = None
    error_code: Optional[str] = None
    error_message: Optional[str] = None

    @classmethod
    def success(cls, request_id: Any, payload: Any) -> "StoreResponse":
        result = payload.to_json() if hasattr(payload, "to_json") else payload
        return cls(id=request_id, ok=True, result=result)

    @classmethod
    def failure(cls, request_id: Any, code: str,
                message: str) -> "StoreResponse":
        return cls(id=request_id, ok=False, error_code=code,
                   error_message=message)

    def raise_for_error(self) -> dict:
        """The result payload, or the error re-raised client-side."""
        if not self.ok:
            raise StoreProtocolError(self.error_code or "internal-error",
                                     self.error_message or "unknown error")
        return self.result if self.result is not None else {}

    def to_json(self) -> dict:
        if self.ok:
            return {"id": self.id, "ok": True, "result": self.result}
        return {"id": self.id, "ok": False,
                "error": {"code": self.error_code,
                          "message": self.error_message}}

    @classmethod
    def from_json(cls, obj: dict) -> "StoreResponse":
        if not isinstance(obj, dict):
            raise StoreProtocolError("parse-error",
                                     "response must be a JSON object")
        if obj.get("ok"):
            return cls(id=obj.get("id"), ok=True, result=obj.get("result"))
        error = obj.get("error") or {}
        if not isinstance(error, dict):
            error = {}
        return cls(id=obj.get("id"), ok=False,
                   error_code=error.get("code") or "internal-error",
                   error_message=error.get("message") or "unknown error")
