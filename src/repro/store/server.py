"""The asyncio TCP cache server (``repro cache serve --tcp``).

One process owns a :class:`repro.store.local.LocalStoreBackend` and serves
it to a fleet of checkers over the typed ``repro-store/1`` protocol
(:mod:`repro.store.protocol`).  Clients are handled concurrently by the
event loop; backend operations (sharded-file reads/writes) run inline —
they are microsecond-scale and the local backend's atomic-rename discipline
makes interleaved writers safe, so no executor or locking is needed.

Admin methods (``stats``/``gc``/``clear``/``ping``/``shutdown``) make
``repro cache stats|gc|clear`` work against a ``remote://host:port`` URL
exactly as they do against a path.

Fault injection
---------------

A :class:`FaultPlan` makes the server deliberately hostile for soundness
testing (``repro cache serve --fault-*``, ``repro bench cache``): every
Nth data operation is dropped (the connection closes without a response),
delayed, or answered with corrupted payload bytes.  Clients must degrade
every one of these to a cache miss — the bench asserts verdicts stay
byte-identical under all three.  Faults only apply to ``get``/``put``;
admin methods always answer, so liveness probes and stats collection work
even on a maximally faulty server.

:class:`StoreServerThread` hosts the server on a background thread for
tests, benches and examples; :func:`run_store_server` is the blocking CLI
entry point.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from dataclasses import dataclass
from typing import Optional

from repro.store.backend import StoreBackend
from repro.obs.trace import span as trace_span
from repro.store.local import LocalStoreBackend
from repro.store.protocol import (STORE_PROTOCOL, ClearPayload, GcPayload,
                                  GetPayload, PingPayload, PutPayload,
                                  ShutdownPayload, StatsPayload,
                                  StoreProtocolError, StoreRequest,
                                  StoreResponse, decode_payload,
                                  decode_request, encode_payload,
                                  method_names)

#: NDJSON line limit for the stream reader (payloads are base64 lines).
LINE_LIMIT = 64 * 1024 * 1024

#: Methods fault injection applies to (admin methods always answer).
DATA_METHODS = frozenset({"get", "put"})


@dataclass
class FaultPlan:
    """Deterministic fault injection over the server's data operations.

    Each ``*_every`` knob fires on every Nth data operation (0 disables
    that fault), counted over one shared operation counter so a fixed
    request sequence always sees the same faults.  ``corrupt`` mangles the
    payload bytes of a ``get`` hit (still valid base64 — the corruption
    must survive the transport and be caught by the artifact codec, the
    deepest degraded path); ``drop`` closes the connection instead of
    responding; ``delay`` sleeps before responding.
    """

    drop_every: int = 0
    delay_every: int = 0
    corrupt_every: int = 0
    delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        self.ops = 0
        self.dropped = 0
        self.delayed = 0
        self.corrupted = 0

    def next_op(self) -> tuple:
        """(drop, delay, corrupt) decisions for the next data operation."""
        self.ops += 1
        drop = bool(self.drop_every) and self.ops % self.drop_every == 0
        delay = bool(self.delay_every) and self.ops % self.delay_every == 0
        corrupt = (bool(self.corrupt_every)
                   and self.ops % self.corrupt_every == 0)
        if drop:
            self.dropped += 1
        if delay:
            self.delayed += 1
        if corrupt and not drop:
            self.corrupted += 1
        return drop, delay, corrupt

    def counters(self) -> dict:
        return {"ops": self.ops, "dropped": self.dropped,
                "delayed": self.delayed, "corrupted": self.corrupted}


def _corrupt(payload: bytes) -> bytes:
    """Same-length garbage that defeats the artifact codec's envelope."""
    prefix = b"\xffCORRUPT"
    return (prefix + payload[len(prefix):]) if len(payload) > len(prefix) \
        else prefix


class _Shutdown(Exception):
    """Raised inside a connection loop after a shutdown was acknowledged."""


class _Drop(Exception):
    """Raised to vanish mid-request (fault injection): the connection is
    closed without a response and without an unhandled-exception log."""


class StoreServer:
    """The asyncio TCP server fronting one :class:`StoreBackend`."""

    def __init__(self, root: Optional[str] = None,
                 backend: Optional[StoreBackend] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 faults: Optional[FaultPlan] = None) -> None:
        if backend is None:
            if root is None:
                raise ValueError("StoreServer needs a root path or a backend")
            backend = LocalStoreBackend(root)
        self.backend = backend
        self.root = str(root) if root is not None else ""
        self.host = host
        self.port = port
        self.faults = faults
        self.requests_served = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop: Optional[asyncio.Event] = None
        self._connections: set = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port, limit=LINE_LIMIT)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        assert self._stop is not None, "call start() first"
        await self._stop.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Close idle client connections so their handler tasks see EOF and
        # finish on their own — tearing the loop down with tasks parked in
        # readline() would spray CancelledError tracebacks.
        for writer in list(self._connections):
            with contextlib.suppress(ConnectionError, RuntimeError):
                writer.close()
        await asyncio.sleep(0)

    def request_stop(self) -> None:
        if self._stop is not None:
            self._stop.set()

    # -- connection handling -----------------------------------------------

    async def _on_client(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)

        async def send(response: StoreResponse) -> None:
            line = json.dumps(response.to_json()) + "\n"
            try:
                writer.write(line.encode("utf-8"))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass  # the client went away; nothing to do

        try:
            while True:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await send(StoreResponse.failure(
                        None, "parse-error", "request line too long"))
                    break
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                self.requests_served += 1
                try:
                    obj = json.loads(line)
                except ValueError as exc:
                    await send(StoreResponse.failure(
                        None, "parse-error", f"malformed request: {exc}"))
                    continue
                if not isinstance(obj, dict):
                    await send(StoreResponse.failure(
                        None, "parse-error", "request must be a JSON object"))
                    continue
                try:
                    request = decode_request(obj)
                except StoreProtocolError as exc:
                    await send(StoreResponse.failure(obj.get("id"), exc.code,
                                                     exc.message))
                    continue
                try:
                    await self._serve_one(request, send)
                except _Drop:
                    break
                except _Shutdown:
                    self.request_stop()
                    break
        except asyncio.CancelledError:
            pass  # loop teardown mid-read; the connection is going away
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(ConnectionError):
                writer.close()

    async def _serve_one(self, request: StoreRequest, send) -> None:
        """Execute one request, weaving in the fault plan for data ops."""
        drop = delay = corrupt = False
        if self.faults is not None and request.method in DATA_METHODS:
            drop, delay, corrupt = self.faults.next_op()
        extra = {"trace": request.trace} if request.trace else {}
        try:
            with trace_span("store.serve", "store", method=request.method,
                            **extra):
                payload = self._dispatch(request, corrupt=corrupt)
            response = StoreResponse.success(request.id, payload)
        except StoreProtocolError as exc:
            response = StoreResponse.failure(request.id, exc.code, exc.message)
        except _Shutdown:
            raise
        except Exception as exc:  # noqa: BLE001 — one bad request must not
            # take the server down; the contract is one response per line.
            response = StoreResponse.failure(
                request.id, "internal-error", f"{type(exc).__name__}: {exc}")
        if delay and self.faults is not None:
            await asyncio.sleep(self.faults.delay_seconds)
        if drop:
            # Vanish mid-request: no response, the connection dies.  The
            # client sees EOF and must treat the operation as a miss.
            raise _Drop()
        await send(response)
        if request.method == "shutdown":
            raise _Shutdown()

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, request: StoreRequest, corrupt: bool = False):
        method = request.method
        params = request.params
        if method == "get":
            payload = self.backend.get(params.kind, params.key)
            if payload is None:
                return GetPayload(found=False)
            if corrupt:
                payload = _corrupt(payload)
            return GetPayload(found=True, payload_b64=encode_payload(payload))
        if method == "put":
            stored = self.backend.put(params.kind, params.key,
                                      decode_payload(params.payload_b64))
            return PutPayload(stored=stored)
        if method == "stats":
            stats = self.backend.stats()
            return StatsPayload(
                kinds={name: {"entries": k.entries, "bytes": k.bytes}
                       for name, k in sorted(stats.kinds.items())},
                total_entries=stats.total_entries,
                total_bytes=stats.total_bytes)
        if method == "gc":
            result = self.backend.gc(params.max_bytes)
            return GcPayload(**result.to_dict())
        if method == "clear":
            return ClearPayload(removed=self.backend.clear())
        if method == "ping":
            return PingPayload(
                protocol=STORE_PROTOCOL, methods=list(method_names()),
                requests_served=self.requests_served, store=self.root,
                faults=self.faults.counters() if self.faults else None)
        assert method == "shutdown", method
        return ShutdownPayload(shutdown=True, protocol=STORE_PROTOCOL,
                               requests_served=self.requests_served)


class StoreServerThread:
    """Host a :class:`StoreServer` on a background thread.

    Usage::

        with StoreServerThread(root=tmpdir) as server:
            backend = RemoteStoreBackend(f"{server.host}:{server.port}")
            ...

    ``port`` is the bound (ephemeral unless pinned) port once the context
    is entered / :meth:`start` returns.
    """

    def __init__(self, root: Optional[str] = None,
                 backend: Optional[StoreBackend] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 faults: Optional[FaultPlan] = None) -> None:
        self.server = StoreServer(root=root, backend=backend, host=host,
                                  port=port, faults=faults)
        self.host = host
        self.port = port
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "StoreServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-cache-serve", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("cache server failed to start in time")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface bind errors to start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_event_loop()
        await self.server.start()
        self.port = self.server.port
        self._ready.set()
        await self.server.serve_until_shutdown()

    def stop(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            return
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=30)

    def __enter__(self) -> "StoreServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_store_server(root: str, host: str = "127.0.0.1", port: int = 0,
                     faults: Optional[FaultPlan] = None) -> int:
    """Blocking entry point for ``repro cache serve --tcp``."""
    import sys

    async def main() -> None:
        server = StoreServer(root=root, host=host, port=port, faults=faults)
        await server.start()
        print(json.dumps({"listening": {"host": server.host,
                                        "port": server.port},
                          "protocol": STORE_PROTOCOL,
                          "store": str(root)}), flush=True)
        await server.serve_until_shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("stopped", file=sys.stderr)
    return 0
