"""The IRSC intermediate representation.

IRSC keeps *expressions* in their source form (``repro.lang.ast`` nodes) but
with every variable reference renamed to its SSA name; the *statement*
structure is replaced by a functional chain of binders:

    body ::= let x = e in body
           | letif [phi...] (e) ? body : body in body
           | letwhile [phi...] (e) body in body
           | letfunc f(params) = body in body
           | e.f <- e ; body
           | e[i] <- e ; body
           | return e
           | join e...            (gives the values of the enclosing Phis)

This mirrors the paper's ``u`` SSA contexts (Figure 3) extended with loops,
early returns, writes and closures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SourceSpan
from repro.lang import ast


@dataclass
class Phi:
    """A conditional-join Phi variable: ``name = phi(then_name, else_name)``."""

    name: str
    then_name: str
    else_name: str
    source_name: str = ""


@dataclass
class LoopPhi:
    """A loop-header Phi variable: ``name = phi(init_name, body_name)``.

    ``body_name`` is the SSA name the variable has at the end of the loop
    body (filled in after the body has been translated)."""

    name: str
    init_name: str
    body_name: str
    source_name: str = ""


@dataclass
class IBody:
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


@dataclass
class ILet(IBody):
    """``let name = expr in rest`` (``name`` may be ``_`` for effect-only)."""

    name: str
    expr: ast.Expression
    rest: IBody
    type_ann: Optional[ast.TypeAnn] = None


@dataclass
class ILetIf(IBody):
    cond: ast.Expression
    then: IBody
    els: IBody
    phis: List[Phi]
    rest: IBody


@dataclass
class ILetWhile(IBody):
    phis: List[LoopPhi]
    cond: ast.Expression
    body: IBody
    rest: IBody
    invariant: Optional[ast.Expression] = None


@dataclass
class ILetFunc(IBody):
    """A nested function (closure) definition."""

    name: str
    decl: ast.FunctionDecl
    body: IBody
    rest: IBody


@dataclass
class ISetField(IBody):
    target: ast.Expression
    field_name: str
    value: ast.Expression
    rest: IBody


@dataclass
class ISetIndex(IBody):
    target: ast.Expression
    index: ast.Expression
    value: ast.Expression
    rest: IBody


@dataclass
class IRet(IBody):
    value: Optional[ast.Expression] = None


@dataclass
class IJoin(IBody):
    """End of a branch/loop body: provides the values of the enclosing Phis."""

    values: List[str] = field(default_factory=list)


@dataclass
class IRFunction:
    """An SSA-converted function: parameters keep their names (they are the
    first SSA version of themselves); the body is an IBody chain."""

    name: str
    params: List[str]
    body: IBody
    decl: Optional[ast.FunctionDecl] = None


def terminates(body: IBody) -> bool:
    """Does every path through ``body`` end in ``return``?"""
    if isinstance(body, IRet):
        return True
    if isinstance(body, IJoin):
        return False
    if isinstance(body, ILetIf):
        if terminates(body.then) and terminates(body.els):
            return True
        return terminates(body.rest)
    if isinstance(body, (ILet, ILetFunc, ISetField, ISetIndex)):
        return terminates(body.rest)
    if isinstance(body, ILetWhile):
        return terminates(body.rest)
    return False
