"""SSA conversion: from FRSC statements to the functional IRSC form.

Follows section 3.1.2 / Figure 3 of the paper: statements become nested
``let`` / ``letif`` contexts, assigned variables get fresh SSA names, and
branch joins introduce Phi variables.  We extend the paper's core with
``letwhile`` (loops, section 2.2.2), early returns, nested function
definitions (closures) and imperative array/field writes.
"""

from repro.ssa.ir import (
    IBody,
    ILet,
    ILetIf,
    ILetWhile,
    ILetFunc,
    ISetField,
    ISetIndex,
    IRet,
    IJoin,
    Phi,
    LoopPhi,
    IRFunction,
)
from repro.ssa.transform import SsaTransformer, ssa_function

__all__ = [
    "IBody", "ILet", "ILetIf", "ILetWhile", "ILetFunc", "ISetField",
    "ISetIndex", "IRet", "IJoin", "Phi", "LoopPhi", "IRFunction",
    "SsaTransformer", "ssa_function",
]
