"""The SSA transformation from FRSC statement bodies to IRSC.

The transformer follows Figure 3 of the paper: a translation environment
``delta`` maps source variable names to their current SSA names.  Statements
become nested ``let``/``letif``/``letwhile`` contexts; variables assigned in
both arms of a conditional (or in a loop body) become Phi variables with
fresh names.

Extensions over the paper's core (needed for the benchmarks):

* loops (``letwhile``) with loop-header Phi variables — these are what liquid
  inference later solves for loop invariants (section 2.2.2);
* early ``return`` inside branches;
* nested function declarations and function expressions (closures): their
  bodies are renamed with the SSA environment at the definition point, so
  refinements about captured variables remain meaningful;
* field and array-element writes, kept as explicit effect nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.errors import SsaError
from repro.lang import ast
from repro.ssa import ir

Delta = Dict[str, str]


class SsaTransformer:
    def __init__(self) -> None:
        self._counter = itertools.count()

    # -- public entry points --------------------------------------------------

    def function(self, decl: ast.FunctionDecl,
                 extra_names: Sequence[str] = ()) -> ir.IRFunction:
        """SSA-convert a function declaration's body."""
        if decl.body is None:
            raise SsaError(f"function {decl.name} has no body")
        delta: Delta = {p.name: p.name for p in decl.params}
        for name in extra_names:
            delta.setdefault(name, name)
        body = self.block(decl.body, delta)
        return ir.IRFunction(name=decl.name, params=[p.name for p in decl.params],
                             body=body, decl=decl)

    def block(self, block: ast.Block, delta: Delta,
              tail: Optional[Callable[[Delta], ir.IBody]] = None) -> ir.IBody:
        if tail is None:
            tail = lambda d: ir.IRet(value=None)
        return self._stmts(list(block.statements), dict(delta), tail)

    # -- fresh names -----------------------------------------------------------

    def _fresh(self, base: str) -> str:
        return f"{base}#{next(self._counter)}"

    # -- statements -------------------------------------------------------------

    def _stmts(self, stmts: List[ast.Statement], delta: Delta,
               tail: Callable[[Delta], ir.IBody]) -> ir.IBody:
        if not stmts:
            return tail(delta)
        stmt, rest = stmts[0], stmts[1:]
        continue_with = lambda d: self._stmts(rest, d, tail)

        if isinstance(stmt, ast.Skip):
            return continue_with(delta)

        if isinstance(stmt, ast.Block):
            # Inner blocks share the scope (JS var semantics are close enough for
            # the benchmarks: declarations inside plain blocks stay visible).
            return self._stmts(list(stmt.statements) + rest, delta, tail)

        if isinstance(stmt, ast.VarDecl):
            ssa_name = self._fresh(stmt.name)
            init = stmt.init if stmt.init is not None else ast.UndefinedLit(span=stmt.span)
            expr = self.rename_expr(init, delta)
            new_delta = dict(delta)
            new_delta[stmt.name] = ssa_name
            return ir.ILet(name=ssa_name, expr=expr,
                           rest=self._stmts(rest, new_delta, tail),
                           type_ann=stmt.type, span=stmt.span)

        if isinstance(stmt, ast.Assign):
            return self._assign(stmt, delta, continue_with)

        if isinstance(stmt, ast.ExprStmt):
            expr = self.rename_expr(stmt.expr, delta)
            return ir.ILet(name=self._fresh("_"), expr=expr,
                           rest=continue_with(delta), span=stmt.span)

        if isinstance(stmt, ast.Return):
            value = self.rename_expr(stmt.value, delta) if stmt.value is not None else None
            return ir.IRet(value=value, span=stmt.span)

        if isinstance(stmt, ast.If):
            return self._if(stmt, delta, continue_with)

        if isinstance(stmt, ast.While):
            return self._while(stmt, delta, continue_with)

        if isinstance(stmt, ast.FunctionDeclStmt):
            decl = stmt.decl
            renamed = self._rename_function_decl(decl, delta)
            new_delta = dict(delta)
            new_delta[decl.name] = decl.name
            inner = SsaTransformer()
            inner._counter = self._counter
            fn_delta: Delta = {p.name: p.name for p in renamed.params}
            # captured variables have already been renamed inside the body
            fn_body = inner.block(renamed.body, fn_delta) if renamed.body else ir.IRet()
            return ir.ILetFunc(name=decl.name, decl=renamed, body=fn_body,
                               rest=self._stmts(rest, new_delta, tail), span=stmt.span)

        raise SsaError(f"unsupported statement {type(stmt).__name__}")

    def _assign(self, stmt: ast.Assign, delta: Delta,
                continue_with: Callable[[Delta], ir.IBody]) -> ir.IBody:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            if target.name not in delta:
                # assignment to an undeclared variable: implicitly declare it
                delta = dict(delta)
                delta[target.name] = target.name
            ssa_name = self._fresh(target.name)
            expr = self.rename_expr(stmt.value, delta)
            new_delta = dict(delta)
            new_delta[target.name] = ssa_name
            return ir.ILet(name=ssa_name, expr=expr, rest=continue_with(new_delta),
                           span=stmt.span)
        if isinstance(target, ast.Member):
            return ir.ISetField(target=self.rename_expr(target.target, delta),
                                field_name=target.name,
                                value=self.rename_expr(stmt.value, delta),
                                rest=continue_with(delta), span=stmt.span)
        if isinstance(target, ast.Index):
            return ir.ISetIndex(target=self.rename_expr(target.target, delta),
                                index=self.rename_expr(target.index, delta),
                                value=self.rename_expr(stmt.value, delta),
                                rest=continue_with(delta), span=stmt.span)
        raise SsaError("invalid assignment target")

    def _if(self, stmt: ast.If, delta: Delta,
            continue_with: Callable[[Delta], ir.IBody]) -> ir.IBody:
        cond = self.rename_expr(stmt.cond, delta)
        else_block = stmt.els if stmt.els is not None else ast.Block(statements=[])
        phi_sources = sorted((assigned_vars(stmt.then) | assigned_vars(else_block))
                             & set(delta.keys()))
        join_tail = lambda d: ir.IJoin(values=[d[x] for x in phi_sources])
        then_body = self._stmts(list(stmt.then.statements), dict(delta), join_tail)
        else_body = self._stmts(list(else_block.statements), dict(delta), join_tail)
        phis: List[ir.Phi] = []
        new_delta = dict(delta)
        for x in phi_sources:
            phi_name = self._fresh(x)
            phis.append(ir.Phi(name=phi_name, then_name="", else_name="",
                               source_name=x))
            new_delta[x] = phi_name
        return ir.ILetIf(cond=cond, then=then_body, els=else_body, phis=phis,
                         rest=continue_with(new_delta), span=stmt.span)

    def _while(self, stmt: ast.While, delta: Delta,
               continue_with: Callable[[Delta], ir.IBody]) -> ir.IBody:
        phi_sources = sorted(assigned_vars(stmt.body) & set(delta.keys()))
        phis: List[ir.LoopPhi] = []
        loop_delta = dict(delta)
        for x in phi_sources:
            phi_name = self._fresh(x)
            phis.append(ir.LoopPhi(name=phi_name, init_name=delta[x], body_name="",
                                   source_name=x))
            loop_delta[x] = phi_name
        cond = self.rename_expr(stmt.cond, loop_delta)
        invariant = (self.rename_expr(stmt.invariant, loop_delta)
                     if stmt.invariant is not None else None)
        join_tail = lambda d: ir.IJoin(values=[d[x] for x in phi_sources])
        body = self._stmts(list(stmt.body.statements), dict(loop_delta), join_tail)
        return ir.ILetWhile(phis=phis, cond=cond, body=body,
                            rest=continue_with(dict(loop_delta)),
                            invariant=invariant, span=stmt.span)

    # -- expression renaming -----------------------------------------------------

    def rename_expr(self, e: ast.Expression, delta: Delta) -> ast.Expression:
        if isinstance(e, ast.VarRef):
            if e.name in delta:
                return ast.VarRef(name=delta[e.name], span=e.span)
            return e
        if isinstance(e, ast.Unary):
            return replace(e, operand=self.rename_expr(e.operand, delta))
        if isinstance(e, ast.Binary):
            return replace(e, left=self.rename_expr(e.left, delta),
                           right=self.rename_expr(e.right, delta))
        if isinstance(e, ast.Conditional):
            return replace(e, cond=self.rename_expr(e.cond, delta),
                           then=self.rename_expr(e.then, delta),
                           els=self.rename_expr(e.els, delta))
        if isinstance(e, ast.Call):
            return replace(e, callee=self.rename_expr(e.callee, delta),
                           args=[self.rename_expr(a, delta) for a in e.args])
        if isinstance(e, ast.New):
            return replace(e, args=[self.rename_expr(a, delta) for a in e.args])
        if isinstance(e, ast.Member):
            return replace(e, target=self.rename_expr(e.target, delta))
        if isinstance(e, ast.Index):
            return replace(e, target=self.rename_expr(e.target, delta),
                           index=self.rename_expr(e.index, delta))
        if isinstance(e, ast.Cast):
            return replace(e, target=self.rename_expr(e.target, delta))
        if isinstance(e, ast.ArrayLit):
            return replace(e, elements=[self.rename_expr(x, delta) for x in e.elements])
        if isinstance(e, ast.ObjectLit):
            return replace(e, fields=[(n, self.rename_expr(x, delta))
                                      for n, x in e.fields])
        if isinstance(e, ast.FunctionExpr):
            shadowed = {p.name for p in e.params}
            inner = {k: v for k, v in delta.items() if k not in shadowed}
            return replace(e, body=self._rename_block(e.body, inner))
        return e

    def _rename_function_decl(self, decl: ast.FunctionDecl, delta: Delta) -> ast.FunctionDecl:
        shadowed = {p.name for p in decl.params} | {decl.name}
        inner = {k: v for k, v in delta.items() if k not in shadowed}
        body = self._rename_block(decl.body, inner) if decl.body is not None else None
        return replace(decl, body=body)

    def _rename_block(self, block: ast.Block, delta: Delta) -> ast.Block:
        new_delta = dict(delta)
        return ast.Block(statements=[self._rename_stmt(s, new_delta)
                                     for s in block.statements], span=block.span)

    def _rename_stmt(self, stmt: ast.Statement, delta: Delta) -> ast.Statement:
        """Non-SSA renaming of captured variables inside closures.  ``delta``
        is updated in place: locally declared names shadow outer ones."""
        if isinstance(stmt, ast.VarDecl):
            init = self.rename_expr(stmt.init, delta) if stmt.init is not None else None
            delta.pop(stmt.name, None)
            return replace(stmt, init=init)
        if isinstance(stmt, ast.Assign):
            return replace(stmt, target=self.rename_expr(stmt.target, delta),
                           value=self.rename_expr(stmt.value, delta))
        if isinstance(stmt, ast.ExprStmt):
            return replace(stmt, expr=self.rename_expr(stmt.expr, delta))
        if isinstance(stmt, ast.Return):
            value = self.rename_expr(stmt.value, delta) if stmt.value is not None else None
            return replace(stmt, value=value)
        if isinstance(stmt, ast.If):
            els = self._rename_block(stmt.els, delta) if stmt.els is not None else None
            return replace(stmt, cond=self.rename_expr(stmt.cond, delta),
                           then=self._rename_block(stmt.then, delta), els=els)
        if isinstance(stmt, ast.While):
            inv = (self.rename_expr(stmt.invariant, delta)
                   if stmt.invariant is not None else None)
            return replace(stmt, cond=self.rename_expr(stmt.cond, delta),
                           body=self._rename_block(stmt.body, delta), invariant=inv)
        if isinstance(stmt, ast.Block):
            return self._rename_block(stmt, dict(delta))
        if isinstance(stmt, ast.FunctionDeclStmt):
            return replace(stmt, decl=self._rename_function_decl(stmt.decl, delta))
        return stmt


def assigned_vars(node: ast.Statement) -> Set[str]:
    """Source variables assigned (not declared) anywhere inside ``node``."""
    out: Set[str] = set()

    def walk(stmt: ast.Statement, local: Set[str]) -> None:
        if isinstance(stmt, ast.Block):
            inner = set(local)
            for s in stmt.statements:
                walk(s, inner)
        elif isinstance(stmt, ast.VarDecl):
            local.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.VarRef) and stmt.target.name not in local:
                out.add(stmt.target.name)
        elif isinstance(stmt, ast.If):
            walk(stmt.then, set(local))
            if stmt.els is not None:
                walk(stmt.els, set(local))
        elif isinstance(stmt, ast.While):
            walk(stmt.body, set(local))
        elif isinstance(stmt, ast.FunctionDeclStmt):
            pass

    walk(node, set())
    return out


def ssa_function(decl: ast.FunctionDecl,
                 extra_names: Sequence[str] = ()) -> ir.IRFunction:
    """Convenience wrapper: SSA-convert one function declaration."""
    return SsaTransformer().function(decl, extra_names)
