"""``repro.client`` — the synchronous check-service client.

Everything that talks to the check service — tests, the watch loop,
``repro bench serve``, the example driver — goes through one
:class:`Client`, so the protocol has a single client-side code path.  The
client speaks ``repro-serve/3`` over a pluggable transport:

* :meth:`Client.connect` — a TCP socket to an
  :class:`repro.service.server.AsyncCheckServer`;
* :meth:`Client.local` — an in-process
  :class:`repro.service.core.ServiceCore`, no sockets, no threads (what
  ``repro watch`` uses).

Typed convenience methods decode results back into the payload dataclasses
of :mod:`repro.service.protocol`::

    with Client.connect("127.0.0.1", 7345, tenant="alice") as client:
        payload = client.check("a.rsc", "function id(x: number) ...")
        assert payload.ok and payload.status == "SAFE"
        client.shutdown()

Error responses raise :class:`repro.service.protocol.ProtocolError` with
the server's code/message.  For pipelined traffic (several requests in
flight at once — how the bench provokes superseding cancellations) use
:meth:`Client.submit` / :meth:`Client.wait`, which match responses to
requests by ``id`` and never raise on error responses.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

from repro.core.config import CheckConfig
from repro.obs.trace import current_trace_id
from repro.service.core import ServiceCore
from repro.service.protocol import (CheckParams, EmptyParams, HelloParams,
                                    ProjectOpenParams, ProtocolError,
                                    Request, Response, UriParams, spec_for)


class SocketTransport:
    """NDJSON over a TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rwb")

    @classmethod
    def connect(cls, host: str, port: int,
                timeout: Optional[float] = None) -> "SocketTransport":
        sock = socket.create_connection((host, port), timeout=timeout)
        # Pipelined edits must reach the server immediately — Nagle would
        # hold a superseding edit back until the previous line is ACKed,
        # letting the stale check finish instead of being cancelled.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock)

    def send(self, obj: dict) -> None:
        self._file.write((json.dumps(obj) + "\n").encode("utf-8"))
        self._file.flush()

    def recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ProtocolError("io-error", "server closed the connection")
        try:
            obj = json.loads(line.decode("utf-8"))
        except ValueError as exc:
            raise ProtocolError("parse-error",
                                f"malformed response: {exc}")
        if not isinstance(obj, dict):
            raise ProtocolError("parse-error",
                                "response must be a JSON object")
        return obj

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()


class LocalTransport:
    """An in-process :class:`ServiceCore` behind the transport interface.

    Requests execute synchronously on :meth:`send`; :meth:`recv` pops the
    finished responses in order.  ``core`` is exposed so embedders (the
    watch loop, tests) can reach the underlying tenant workspaces.
    """

    def __init__(self, core: Optional[ServiceCore] = None,
                 config: Optional[CheckConfig] = None) -> None:
        self.core = core or ServiceCore(config)
        self._outbox: list = []

    def send(self, obj: dict) -> None:
        self._outbox.append(self.core.handle_raw(obj, version=3).to_json())

    def recv(self) -> dict:
        if not self._outbox:
            raise ProtocolError("io-error", "no response pending")
        return self._outbox.pop(0)

    def close(self) -> None:
        self._outbox.clear()


#: method name -> params builder for the convenience wrappers.
_PARAMS = {
    "hello": lambda **kw: HelloParams(**kw),
    "check": lambda **kw: CheckParams(**kw),
    "update": lambda **kw: CheckParams(**kw),
    "diagnostics": lambda **kw: UriParams(**kw),
    "close": lambda **kw: UriParams(**kw),
    "cancel": lambda **kw: UriParams(**kw),
    "stats": lambda **kw: EmptyParams(),
    "metrics": lambda **kw: EmptyParams(),
    "shutdown": lambda **kw: EmptyParams(),
    "project_open": lambda **kw: ProjectOpenParams(**kw),
    "project_update": lambda **kw: CheckParams(**kw),
    "project_diagnostics": lambda **kw: UriParams(**kw),
}


class Client:
    """A synchronous ``repro-serve/3`` client over a pluggable transport."""

    def __init__(self, transport, tenant: Optional[str] = None) -> None:
        self.transport = transport
        self.tenant = tenant
        self._next_id = 0
        self._pending: Dict[Any, Response] = {}

    @classmethod
    def connect(cls, host: str, port: int, tenant: Optional[str] = None,
                timeout: Optional[float] = None) -> "Client":
        """A TCP client for a running ``repro serve --tcp`` server."""
        return cls(SocketTransport.connect(host, port, timeout=timeout),
                   tenant=tenant)

    @classmethod
    def local(cls, config: Optional[CheckConfig] = None,
              tenant: Optional[str] = None) -> "Client":
        """An in-process client (no server process, no sockets)."""
        return cls(LocalTransport(config=config), tenant=tenant)

    # -- pipelined primitives ----------------------------------------------

    def submit(self, method: str, **params) -> int:
        """Send one request without waiting; returns its ``id``."""
        spec = spec_for(method)  # raises on typos before anything is sent
        self._next_id += 1
        request = Request(method=spec.name, id=self._next_id,
                          params=_PARAMS[method](**params),
                          tenant=self.tenant,
                          trace=current_trace_id())
        self.transport.send(request.to_json(version=3))
        return self._next_id

    def wait(self, request_id: int) -> Response:
        """The response for ``request_id``, buffering others meanwhile."""
        while request_id not in self._pending:
            response = Response.from_json(self.transport.recv())
            self._pending[response.id] = response
        return self._pending.pop(request_id)

    def request(self, method: str, **params) -> Any:
        """Send, wait and decode into the method's typed payload.

        Error responses raise :class:`ProtocolError`.
        """
        response = self.wait(self.submit(method, **params))
        return spec_for(method).payload.from_json(response.raise_for_error())

    # -- convenience methods (one per registry entry) ----------------------

    def hello(self):
        return self.request("hello")

    def check(self, uri: str, text: Optional[str] = None):
        return self.request("check", uri=uri, text=text)

    def update(self, uri: str, text: Optional[str] = None):
        return self.request("update", uri=uri, text=text)

    def diagnostics(self, uri: str):
        return self.request("diagnostics", uri=uri)

    def close_document(self, uri: str):
        return self.request("close", uri=uri)

    def cancel(self, uri: str):
        return self.request("cancel", uri=uri)

    def stats(self):
        return self.request("stats")

    def metrics(self):
        return self.request("metrics")

    def project_open(self, root: str):
        return self.request("project_open", root=root)

    def project_update(self, uri: str, text: Optional[str] = None):
        return self.request("project_update", uri=uri, text=text)

    def project_diagnostics(self, uri: str):
        return self.request("project_diagnostics", uri=uri)

    def shutdown(self):
        return self.request("shutdown")

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
