"""Congruence closure for equality with uninterpreted functions (EUF).

The algorithm is the classic union-find based congruence closure:

* every ground term appearing in the literal set becomes a node,
* asserted equalities merge equivalence classes,
* the congruence rule (equal arguments imply equal applications) is applied
  to fixpoint,
* distinct literals (integer, boolean and string constants) act as pairwise
  distinct constants — merging two classes that contain different constants
  is a conflict,
* asserted disequalities are checked at the end and after every merge.

The class also exposes the discovered equivalence classes so that the LIA and
bit-mask theories can canonicalise their terms by EUF representative (a poor
man's Nelson–Oppen equality propagation, sufficient for RSC's VCs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.logic.terms import (
    App,
    BinOp,
    BoolLit,
    Expr,
    Field,
    IntLit,
    Ite,
    StrLit,
    UnOp,
    Var,
    children,
)

#: Arithmetic / bitwise operators are *not* interpreted by EUF; they are still
#: registered as function nodes so congruence propagates through them.
_ATOM_OPS = ("=", "!=", "<", "<=", ">", ">=")


class CongruenceClosure:
    """Incremental congruence closure over ground terms."""

    def __init__(self) -> None:
        self._ids: Dict[Expr, int] = {}
        self._terms: List[Expr] = []
        self._parent: List[int] = []
        self._rank: List[int] = []
        # signature table: (label, tuple of child representatives) -> node id
        self._sig: Dict[Tuple[object, Tuple[int, ...]], int] = {}
        self._children: List[Tuple[int, ...]] = []
        self._labels: List[object] = []
        self._use: Dict[int, List[int]] = {}
        self._diseqs: List[Tuple[int, int]] = []
        self._conflict = False

    # -- term registration --------------------------------------------------

    def add_term(self, e: Expr) -> int:
        """Register ``e`` (and all its subterms); return its node id."""
        if e in self._ids:
            return self._ids[e]
        child_ids = tuple(self.add_term(c) for c in children(e))
        node = len(self._terms)
        self._ids[e] = node
        self._terms.append(e)
        self._parent.append(node)
        self._rank.append(0)
        self._children.append(child_ids)
        self._labels.append(self._label(e))
        for c in child_ids:
            self._use.setdefault(self.find(c), []).append(node)
        self._insert_signature(node)
        return node

    @staticmethod
    def _label(e: Expr) -> object:
        if isinstance(e, Var):
            return ("var", e.name)
        if isinstance(e, IntLit):
            return ("int", e.value)
        if isinstance(e, BoolLit):
            return ("bool", e.value)
        if isinstance(e, StrLit):
            return ("str", e.value)
        if isinstance(e, App):
            return ("app", e.fn)
        if isinstance(e, Field):
            return ("field", e.name)
        if isinstance(e, BinOp):
            return ("binop", e.op)
        if isinstance(e, UnOp):
            return ("unop", e.op)
        if isinstance(e, Ite):
            return ("ite",)
        return ("opaque", repr(e))

    # -- union-find ----------------------------------------------------------

    def find(self, node: int) -> int:
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def _insert_signature(self, node: int) -> None:
        kids = self._children[node]
        if not kids and not isinstance(self._terms[node], (App, Field)):
            return
        sig = (self._labels[node], tuple(self.find(c) for c in kids))
        existing = self._sig.get(sig)
        if existing is not None and self.find(existing) != self.find(node):
            self._merge_nodes(existing, node)
        else:
            self._sig[sig] = node

    # -- assertions ----------------------------------------------------------

    def assert_eq(self, a: Expr, b: Expr) -> None:
        if self._conflict:
            return
        na, nb = self.add_term(a), self.add_term(b)
        self._merge_nodes(na, nb)

    def assert_neq(self, a: Expr, b: Expr) -> None:
        if self._conflict:
            return
        na, nb = self.add_term(a), self.add_term(b)
        self._diseqs.append((na, nb))
        if self.find(na) == self.find(nb):
            self._conflict = True

    def _merge_nodes(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        ca, cb = self._constant_of(ra), self._constant_of(rb)
        if ca is not None and cb is not None and ca != cb:
            self._conflict = True
            return
        # union by rank
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        # move constants up: nothing to do, _constant_of scans the class lazily
        # re-process signatures of parents of the absorbed class
        pending = self._use.pop(rb, [])
        self._use.setdefault(ra, []).extend(pending)
        for parent in list(self._use.get(ra, [])):
            self._insert_signature(parent)
        # re-check disequalities
        for (x, y) in self._diseqs:
            if self.find(x) == self.find(y):
                self._conflict = True
                return

    def _constant_of(self, rep: int) -> Optional[object]:
        """The distinguishing constant contained in a class, if any."""
        for node, term in enumerate(self._terms):
            if self.find(node) != rep:
                continue
            if isinstance(term, IntLit):
                return ("int", term.value)
            if isinstance(term, BoolLit):
                return ("bool", term.value)
            if isinstance(term, StrLit):
                return ("str", term.value)
        return None

    # -- queries ------------------------------------------------------------

    @property
    def in_conflict(self) -> bool:
        return self._conflict

    def are_equal(self, a: Expr, b: Expr) -> bool:
        if a == b:
            return True
        # Registering the terms lets congruence fire for queries about terms
        # that were not part of any asserted literal (f(a) = f(b) after a = b).
        return self.find(self.add_term(a)) == self.find(self.add_term(b))

    def representative(self, e: Expr) -> int:
        """The class representative id for ``e`` (registering it if needed)."""
        return self.find(self.add_term(e))

    def classes(self) -> Dict[int, List[Expr]]:
        """All equivalence classes as representative-id -> member terms."""
        out: Dict[int, List[Expr]] = {}
        for node, term in enumerate(self._terms):
            out.setdefault(self.find(node), []).append(term)
        return out

    def int_value_of(self, e: Expr) -> Optional[int]:
        """If the class of ``e`` contains an integer literal, its value."""
        if e not in self._ids:
            return None
        rep = self.find(self._ids[e])
        for node, term in enumerate(self._terms):
            if isinstance(term, IntLit) and self.find(node) == rep:
                return term.value
        return None

    def equal_pairs(self) -> Iterable[Tuple[Expr, Expr]]:
        """Representative pairs (t, u) for every non-singleton class."""
        for members in self.classes().values():
            if len(members) > 1:
                base = members[0]
                for other in members[1:]:
                    yield (base, other)
