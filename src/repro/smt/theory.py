"""Theory combination: decide conjunctions of theory literals.

The lazy-SMT loop hands this module a set of *theory literals* — pairs of
(atom expression, polarity) extracted from a propositional model — and asks
whether their conjunction is satisfiable in the combined theory of equality
with uninterpreted functions, linear integer arithmetic and constant
bit-masks.

The combination is a simplified Nelson–Oppen scheme:

1. run congruence closure over all literals; equalities merge classes and
   constant clashes / violated disequalities are conflicts;
2. canonicalise every term by its EUF representative and hand arithmetic
   literals to the Fourier–Motzkin LIA solver (classes containing an integer
   constant are pinned to that value);
3. hand bit-mask literals (``mask(t, c)`` and ``(t & c) op 0``) to the
   bit-mask solver, again keyed by EUF representative.

Equalities discovered by LIA are not propagated back to EUF; for the VC
shapes RSC produces this direction is not needed, and omitting it only makes
the solver prove fewer formulas valid (sound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.logic import builtins
from repro.logic.terms import (
    App,
    BinOp,
    BoolLit,
    Expr,
    IntLit,
    UnOp,
    memoisation_enabled,
)
from repro.smt.bvmask import BvMaskSolver
from repro.smt.euf import CongruenceClosure
from repro.smt.lia import LiaProblem, LinExpr, is_satisfiable, linearize

#: A theory literal: an atom and its polarity in the current assignment.
TheoryLiteral = Tuple[Expr, bool]

_CMP_NEGATION = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "=": "!=", "!=": "="}
_CMP_OPS = ("<", "<=", ">", ">=", "=", "!=")

#: Verdict memo for :func:`check_literals`, keyed by the exact literal
#: tuple (order-preserving, so a hit replays precisely the call that was
#: made before — no reliance on the solvers being order-insensitive).
#: Theory checks are pure functions of their input, and with hash-consed
#: terms the key is a tuple of pointers; core minimisation and repeated
#: blocking-clause loops re-check the same conjunctions constantly.
#: Cleared by :func:`repro.logic.terms.clear_memos`.
_CHECK_MEMO: Dict[Tuple[TheoryLiteral, ...], bool] = {}
_CHECK_MEMO_LIMIT = 100_000


def _clear_local_memos() -> None:
    _CHECK_MEMO.clear()


@dataclass
class TheoryResult:
    satisfiable: bool
    #: when unsatisfiable, a (possibly minimised) subset of the input literals
    #: that is already inconsistent; used to build the blocking clause.
    core: Optional[List[TheoryLiteral]] = None


def check_literals(literals: Sequence[TheoryLiteral]) -> bool:
    """Satisfiability of the conjunction of theory literals (memoised)."""
    if not memoisation_enabled():
        return _check_literals_uncached(literals)
    key = tuple(literals)
    hit = _CHECK_MEMO.get(key)
    if hit is not None:
        return hit
    result = _check_literals_uncached(key)
    if len(_CHECK_MEMO) < _CHECK_MEMO_LIMIT:
        _CHECK_MEMO[key] = result
    return result


def _check_literals_uncached(literals: Sequence[TheoryLiteral]) -> bool:
    lits = list(literals)

    cc = CongruenceClosure()
    true_const = BoolLit(True)
    false_const = BoolLit(False)
    cc.assert_neq(true_const, false_const)

    arith: List[Tuple[str, Expr, Expr]] = []   # (op, lhs, rhs) with op already polarised
    mask_lits: List[Tuple[Expr, int, bool]] = []  # (base term, mask, positive)

    for atom, polarity in lits:
        atom = _strip_not(atom, polarity)
        if atom is None:
            return False  # literal was a constant false
        expr, pol = atom
        if isinstance(expr, BoolLit):
            if expr.value != pol:
                return False
            continue
        if isinstance(expr, BinOp) and expr.op in _CMP_OPS:
            op = expr.op if pol else _CMP_NEGATION[expr.op]
            lhs, rhs = expr.left, expr.right
            masked = _as_mask_test(op, lhs, rhs)
            if masked is not None:
                mask_lits.append(masked)
                cc.add_term(lhs)
                cc.add_term(rhs)
                continue
            if op == "=":
                cc.assert_eq(lhs, rhs)
            elif op == "!=":
                cc.assert_neq(lhs, rhs)
            else:
                cc.add_term(lhs)
                cc.add_term(rhs)
            arith.append((op, lhs, rhs))
            continue
        # Boolean-sorted application / variable / field access.
        mask_atom = _as_mask_builtin(expr)
        if mask_atom is not None:
            mask_lits.append((mask_atom[0], mask_atom[1], pol))
        cc.assert_eq(expr, true_const if pol else false_const)

    if cc.in_conflict:
        return False

    # ---- LIA -------------------------------------------------------------
    def opaque(term: Expr) -> Hashable:
        return ("t", cc.representative(term))

    def const_of(term: Expr):
        return cc.int_value_of(term)

    problem = LiaProblem()
    for op, lhs, rhs in arith:
        l = linearize(lhs, opaque, const_of)
        r = linearize(rhs, opaque, const_of)
        if op == "<":
            problem.add_lt(l, r)
        elif op == "<=":
            problem.add_le(l, r)
        elif op == ">":
            problem.add_lt(r, l)
        elif op == ">=":
            problem.add_le(r, l)
        elif op == "=":
            problem.add_eq(l, r)
        elif op == "!=":
            problem.add_neq(l, r)

    # Pin every class containing an integer constant to that constant, and
    # link every member term's opaque variable to it.
    pinned: dict[Hashable, int] = {}
    for rep, members in cc.classes().items():
        value = None
        for m in members:
            if isinstance(m, IntLit):
                value = m.value
                break
        if value is None:
            continue
        key = ("t", rep)
        pinned[key] = value
        problem.add_eq(LinExpr.variable(key), LinExpr.constant(value))

    if not is_satisfiable(problem):
        return False

    # ---- bit-masks ---------------------------------------------------------
    if mask_lits:
        bv = BvMaskSolver()
        for base, mask, positive in mask_lits:
            key = ("t", cc.representative(base))
            bv.assert_mask(key, mask, positive)
            fixed = cc.int_value_of(base)
            if fixed is not None:
                bv.assert_value(key, fixed)
        if not bv.check():
            return False

    return True


#: Cap on the number of `check_literals` calls one core minimisation may
#: spend.  Bounding by *work* instead of by input size means even very wide
#: conflicts get partially minimised — small cores make better blocking
#: clauses and far more reusable lemmas for the incremental context memo.
MINIMISE_CHECK_BUDGET = 150


def check_with_core(literals: Sequence[TheoryLiteral]) -> TheoryResult:
    """Check a conjunction; on conflict, greedily minimise an unsat core."""
    lits = list(literals)
    if check_literals(lits):
        return TheoryResult(True, None)
    core = list(lits)
    budget = MINIMISE_CHECK_BUDGET
    i = 0
    while i < len(core) and budget > 0:
        trial = core[:i] + core[i + 1:]
        if not trial:
            break
        budget -= 1
        if not check_literals(trial):
            core = trial
        else:
            i += 1
    return TheoryResult(False, core)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _strip_not(atom: Expr, polarity: bool) -> Optional[Tuple[Expr, bool]]:
    """Normalise away leading negations; ``None`` signals constant falsehood."""
    while isinstance(atom, UnOp) and atom.op == "!":
        atom = atom.operand
        polarity = not polarity
    if isinstance(atom, BoolLit) and atom.value != polarity:
        return None
    return atom, polarity


def _as_mask_test(op: str, lhs: Expr, rhs: Expr) -> Optional[Tuple[Expr, int, bool]]:
    """Recognise ``(t & c) op 0`` (or symmetric) as a bit-mask literal."""
    if op not in ("=", "!="):
        return None
    if isinstance(rhs, IntLit) and rhs.value == 0:
        band = lhs
    elif isinstance(lhs, IntLit) and lhs.value == 0:
        band = rhs
    else:
        return None
    if not (isinstance(band, BinOp) and band.op == "&"):
        return None
    if isinstance(band.right, IntLit):
        base, mask = band.left, band.right.value
    elif isinstance(band.left, IntLit):
        base, mask = band.right, band.left.value
    else:
        return None
    positive = op == "!="
    return base, mask, positive


def _as_mask_builtin(expr: Expr) -> Optional[Tuple[Expr, int]]:
    """Recognise the ``mask(t, c)`` builtin with a constant mask."""
    if isinstance(expr, App) and expr.fn == builtins.MASK and len(expr.args) == 2:
        base, mask = expr.args
        if isinstance(mask, IntLit):
            return base, mask.value
    return None
