"""The public SMT facade: lazy DPLL(T) validity and satisfiability checking.

The refinement checker asks two kinds of questions:

* ``is_valid(hypotheses, goal)`` — does the conjunction of hypotheses imply
  the goal?  This is how subtyping obligations (verification conditions) are
  discharged.
* ``is_satisfiable(formula)`` — used by two-phase typing to detect dead code
  (an inconsistent environment) and by the test-suite.

Architecture: the formula is simplified, converted to CNF over theory atoms
(:mod:`repro.smt.cnf`), and solved by the CDCL SAT core
(:mod:`repro.smt.sat`).  Each propositional model is checked against the
combined theory (:mod:`repro.smt.theory`); theory conflicts are turned into
blocking clauses and the loop continues until either a theory-consistent
model is found (satisfiable) or the SAT solver reports unsatisfiability.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.logic.simplify import simplify
from repro.logic.terms import BoolLit, Expr, clear_memos, conj, implies, neg
from repro.smt.cnf import AtomMap, tseitin, to_nnf
from repro.smt.context import ContextManager
from repro.smt.sat import SatSolver
from repro.smt.theory import check_with_core
from repro.obs.trace import span as trace_span

#: Query engines understood by :class:`Solver` (mirrored by
#: :data:`repro.core.config.SMT_MODES` for :class:`CheckConfig` validation).
SMT_MODES = ("incremental", "fresh")


class Result(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverStats:
    """Counters accumulated across queries (reported by the bench harness)."""

    queries: int = 0
    valid: int = 0
    invalid: int = 0
    sat_calls: int = 0
    theory_checks: int = 0
    blocking_clauses: int = 0
    cache_hits: int = 0
    contexts_created: int = 0
    contexts_reused: int = 0
    clauses_learned: int = 0
    lemmas_reused: int = 0
    time_seconds: float = 0.0

    def merge(self, other: "SolverStats") -> None:
        self.queries += other.queries
        self.valid += other.valid
        self.invalid += other.invalid
        self.sat_calls += other.sat_calls
        self.theory_checks += other.theory_checks
        self.blocking_clauses += other.blocking_clauses
        self.cache_hits += other.cache_hits
        self.contexts_created += other.contexts_created
        self.contexts_reused += other.contexts_reused
        self.clauses_learned += other.clauses_learned
        self.lemmas_reused += other.lemmas_reused
        self.time_seconds += other.time_seconds

    def copy(self) -> "SolverStats":
        return SolverStats(**self.to_dict())

    def delta_since(self, earlier: "SolverStats") -> "SolverStats":
        """The stats accumulated since the ``earlier`` snapshot was taken."""
        return SolverStats(**{
            key: value - getattr(earlier, key)
            for key, value in self.to_dict().items()
        })

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "valid": self.valid,
            "invalid": self.invalid,
            "sat_calls": self.sat_calls,
            "theory_checks": self.theory_checks,
            "blocking_clauses": self.blocking_clauses,
            "cache_hits": self.cache_hits,
            "contexts_created": self.contexts_created,
            "contexts_reused": self.contexts_reused,
            "clauses_learned": self.clauses_learned,
            "lemmas_reused": self.lemmas_reused,
            "time_seconds": self.time_seconds,
        }


class Solver:
    """The SMT query engine behind every checking session.

    ``smt_mode`` selects how implication batches are discharged:

    * ``"fresh"`` (the constructor default, and the historical behaviour) —
      every query builds its own CNF and SAT solver;
    * ``"incremental"`` — implication queries are routed through persistent
      assumption-based :class:`repro.smt.context.SolverContext` objects,
      one per hypothesis environment, kept in an LRU of
      ``context_cache_limit`` entries (see :mod:`repro.smt.context`).
      Sessions default to this mode via
      :attr:`repro.core.config.CheckConfig.smt_mode`.

    Verdicts are identical in both modes (asserted by the differential fuzz
    suite and ``repro bench smt``); only the work counters differ.

    The query/result cache is keyed by the (hashable) formula, evicts
    least-recently-used entries past ``cache_size_limit``, and survives for
    the lifetime of the solver, so a long-lived solver shared by a
    :class:`repro.core.session.Session` amortises repeated obligations
    across many files.
    """

    def __init__(self, max_theory_iterations: int = 5000,
                 cache_results: bool = True,
                 cache_size_limit: int = 200_000,
                 smt_mode: str = "fresh",
                 context_cache_limit: int = 64) -> None:
        if smt_mode not in SMT_MODES:
            raise ValueError(f"unknown smt_mode {smt_mode!r} "
                             f"(expected one of {', '.join(SMT_MODES)})")
        self.max_theory_iterations = max_theory_iterations
        self.stats = SolverStats()
        self.cache_results = cache_results
        self.cache_size_limit = cache_size_limit
        self.smt_mode = smt_mode
        self.contexts = ContextManager(
            limit=context_cache_limit,
            max_theory_iterations=max_theory_iterations)
        self._cache: "OrderedDict[Expr, Result]" = OrderedDict()
        self._recorders: List[Dict[Expr, Result]] = []

    # -- public queries ------------------------------------------------------

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop every cached query result (statistics are kept).

        Also drops the logic layer's per-process traversal memos
        (simplify/substitute/free_vars/NNF) so an explicit cache reset
        bounds *all* derived-result tables at once; the term intern table
        itself survives — see :mod:`repro.logic.terms`.
        """
        self._cache.clear()
        clear_memos()

    def seed_cache(self, entries: Iterable[Tuple[Expr, Result]]) -> int:
        """Pre-populate the result cache with already-known verdicts.

        This is how the persistent artifact store (:mod:`repro.store`)
        replays a previous process's verdict memos: seeded entries are
        served as ordinary cache hits, so a store-warm check issues no
        queries for them at all.  Entries past ``cache_size_limit`` evict
        LRU-first as usual.  Returns how many entries were installed
        (0 when result caching is disabled)."""
        if not self.cache_results or self.cache_size_limit <= 0:
            return 0
        count = 0
        for formula, result in entries:
            self._cache_store(formula, result)
            count += 1
        return count

    def record_queries(self, sink: Dict[Expr, Result]) -> None:
        """Mirror every verdict this solver serves into ``sink``.

        Both freshly computed results and cache hits are recorded — a
        check window's recording is therefore complete even when a shared
        long-lived solver already held some of its obligations — until
        :meth:`stop_recording` detaches the sink."""
        self._recorders.append(sink)

    def stop_recording(self, sink: Dict[Expr, Result]) -> None:
        self._recorders = [r for r in self._recorders if r is not sink]

    def _record(self, formula: Expr, result: Result) -> None:
        for sink in self._recorders:
            sink[formula] = result

    def _cache_lookup(self, formula: Expr) -> Optional[Result]:
        if not self.cache_results:
            return None
        result = self._cache.get(formula)
        if result is not None:
            self.stats.cache_hits += 1
            self._cache.move_to_end(formula)
            self._record(formula, result)
        return result

    def _cache_store(self, formula: Expr, result: Result) -> None:
        if not self.cache_results or self.cache_size_limit <= 0:
            return
        self._cache[formula] = result
        self._cache.move_to_end(formula)
        while len(self._cache) > self.cache_size_limit:
            self._cache.popitem(last=False)

    def check(self, formula: Expr) -> Result:
        """Satisfiability of ``formula``."""
        cached = self._cache_lookup(formula)
        if cached is not None:
            return cached
        with trace_span("smt.check", "smt") as sp:
            start = time.perf_counter()
            self.stats.queries += 1
            try:
                result = self._check_sat(formula)
            finally:
                self.stats.time_seconds += time.perf_counter() - start
            sp.note(result=result.value)
        self._cache_store(formula, result)
        self._record(formula, result)
        return result

    def is_satisfiable(self, formula: Expr) -> bool:
        return self.check(formula) is Result.SAT

    def is_valid(self, formula: Expr) -> bool:
        """Validity of ``formula`` (unsatisfiability of its negation)."""
        result = self.check(neg(formula))
        valid = result is Result.UNSAT
        if valid:
            self.stats.valid += 1
        else:
            self.stats.invalid += 1
        return valid

    def check_implication(self, hypotheses: Sequence[Expr], goal: Expr) -> bool:
        """Validity of ``/\\ hypotheses => goal`` — the VC entry point."""
        antecedent = conj(*hypotheses) if hypotheses else BoolLit(True)
        if self.smt_mode == "incremental":
            return self._check_goal_incremental(antecedent, goal)
        return self.is_valid(implies(antecedent, goal))

    def check_implication_batch(self, hypotheses: Sequence[Expr],
                                goals: Sequence[Expr]) -> List[bool]:
        """Validity of ``/\\ hypotheses => goal`` for each goal in turn.

        The antecedent conjunction is built once and every query still flows
        through the result cache.  In ``"incremental"`` mode the whole batch
        is discharged against one persistent :class:`SolverContext`: the
        hypotheses' CNF is asserted once, each goal is solved under a fresh
        selector assumption, and learned/theory clauses carry over from goal
        to goal (and to later batches over the same environment)."""
        antecedent = conj(*hypotheses) if hypotheses else BoolLit(True)
        if self.smt_mode == "incremental":
            return [self._check_goal_incremental(antecedent, goal)
                    for goal in goals]
        return [self.is_valid(implies(antecedent, goal)) for goal in goals]

    def _check_goal_incremental(self, antecedent: Expr, goal: Expr) -> bool:
        """One implication goal through the persistent-context engine.

        Caches under the same key as the fresh path
        (``neg(antecedent => goal)``), so repeated obligations are served
        identically in both modes and never touch a context twice.
        """
        formula = neg(implies(antecedent, goal))
        cached = self._cache_lookup(formula)
        if cached is not None:
            result = cached
        else:
            with trace_span("smt.query", "smt") as sp:
                start = time.perf_counter()
                self.stats.queries += 1
                try:
                    context = self.contexts.context_for(antecedent,
                                                        self.stats)
                    verdict = context.check_goal(goal, self.stats)
                    # Tri-state, like the fresh loop: None (budget
                    # exhausted) is UNKNOWN and must not be cached as a
                    # real SAT answer.
                    if verdict is None:
                        result = Result.UNKNOWN
                    else:
                        result = Result.UNSAT if verdict else Result.SAT
                finally:
                    self.stats.time_seconds += time.perf_counter() - start
                sp.note(result=result.value)
            self._cache_store(formula, result)
            self._record(formula, result)
        valid = result is Result.UNSAT
        if valid:
            self.stats.valid += 1
        else:
            self.stats.invalid += 1
        return valid

    def environment_inconsistent(self, hypotheses: Sequence[Expr]) -> bool:
        """True iff the hypotheses are unsatisfiable (dead code detection)."""
        antecedent = conj(*hypotheses) if hypotheses else BoolLit(True)
        return self.check(antecedent) is Result.UNSAT

    # -- the lazy SMT loop ---------------------------------------------------

    def _check_sat(self, formula: Expr) -> Result:
        formula = simplify(formula)
        if isinstance(formula, BoolLit):
            return Result.SAT if formula.value else Result.UNSAT

        atoms = AtomMap()
        nnf = to_nnf(formula, True)
        clauses = tseitin(nnf, atoms)

        sat = SatSolver()
        for clause in clauses:
            if not sat.add_clause(clause):
                return Result.UNSAT

        try:
            for _ in range(self.max_theory_iterations):
                self.stats.sat_calls += 1
                if not sat.solve():
                    return Result.UNSAT
                model = sat.model()
                literals = []
                for var, value in model.items():
                    atom = atoms.atom_of(var)
                    if atom is not None:
                        literals.append((atom, value))
                self.stats.theory_checks += 1
                result = check_with_core(literals)
                if result.satisfiable:
                    return Result.SAT
                # Block this theory-inconsistent assignment.
                core = result.core or literals
                blocking = []
                for atom, value in core:
                    var = atoms.atom_to_var.get(atom)
                    if var is None:
                        continue
                    blocking.append(-var if value else var)
                if not blocking:
                    # The conflict does not mention any decidable atom; give
                    # up conservatively (formula may or may not be
                    # satisfiable).
                    return Result.UNKNOWN
                self.stats.blocking_clauses += 1
                if not sat.add_clause(blocking):
                    return Result.UNSAT
            return Result.UNKNOWN
        finally:
            # Everything this throwaway solver learned is discarded with it;
            # the counter is what `repro bench smt` compares against the
            # incremental engine's persistent contexts.
            self.stats.clauses_learned += sat.num_learned


_DEFAULT_SOLVER: Optional[Solver] = None


def default_solver() -> Solver:
    """A process-wide solver instance (keeps cumulative statistics)."""
    global _DEFAULT_SOLVER
    if _DEFAULT_SOLVER is None:
        _DEFAULT_SOLVER = Solver()
    return _DEFAULT_SOLVER
