"""The public SMT facade: lazy DPLL(T) validity and satisfiability checking.

The refinement checker asks two kinds of questions:

* ``is_valid(hypotheses, goal)`` — does the conjunction of hypotheses imply
  the goal?  This is how subtyping obligations (verification conditions) are
  discharged.
* ``is_satisfiable(formula)`` — used by two-phase typing to detect dead code
  (an inconsistent environment) and by the test-suite.

Architecture: the formula is simplified, converted to CNF over theory atoms
(:mod:`repro.smt.cnf`), and solved by the CDCL SAT core
(:mod:`repro.smt.sat`).  Each propositional model is checked against the
combined theory (:mod:`repro.smt.theory`); theory conflicts are turned into
blocking clauses and the loop continues until either a theory-consistent
model is found (satisfiable) or the SAT solver reports unsatisfiability.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

from repro.logic.simplify import simplify
from repro.logic.terms import BoolLit, Expr, conj, implies, neg
from repro.smt.cnf import AtomMap, tseitin, to_nnf
from repro.smt.sat import SatSolver
from repro.smt.theory import check_with_core


class Result(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverStats:
    """Counters accumulated across queries (reported by the bench harness)."""

    queries: int = 0
    valid: int = 0
    invalid: int = 0
    sat_calls: int = 0
    theory_checks: int = 0
    blocking_clauses: int = 0
    cache_hits: int = 0
    time_seconds: float = 0.0

    def merge(self, other: "SolverStats") -> None:
        self.queries += other.queries
        self.valid += other.valid
        self.invalid += other.invalid
        self.sat_calls += other.sat_calls
        self.theory_checks += other.theory_checks
        self.blocking_clauses += other.blocking_clauses
        self.cache_hits += other.cache_hits
        self.time_seconds += other.time_seconds

    def copy(self) -> "SolverStats":
        return SolverStats(**self.to_dict())

    def delta_since(self, earlier: "SolverStats") -> "SolverStats":
        """The stats accumulated since the ``earlier`` snapshot was taken."""
        return SolverStats(
            queries=self.queries - earlier.queries,
            valid=self.valid - earlier.valid,
            invalid=self.invalid - earlier.invalid,
            sat_calls=self.sat_calls - earlier.sat_calls,
            theory_checks=self.theory_checks - earlier.theory_checks,
            blocking_clauses=self.blocking_clauses - earlier.blocking_clauses,
            cache_hits=self.cache_hits - earlier.cache_hits,
            time_seconds=self.time_seconds - earlier.time_seconds,
        )

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "valid": self.valid,
            "invalid": self.invalid,
            "sat_calls": self.sat_calls,
            "theory_checks": self.theory_checks,
            "blocking_clauses": self.blocking_clauses,
            "cache_hits": self.cache_hits,
            "time_seconds": self.time_seconds,
        }


class Solver:
    """A stateless (per query) SMT solver with accumulated statistics.

    The query/result cache is keyed by the (hashable) formula and survives
    for the lifetime of the solver, so a long-lived solver shared by a
    :class:`repro.core.session.Session` amortises repeated obligations
    across many files.
    """

    def __init__(self, max_theory_iterations: int = 5000,
                 cache_results: bool = True,
                 cache_size_limit: int = 200_000) -> None:
        self.max_theory_iterations = max_theory_iterations
        self.stats = SolverStats()
        self.cache_results = cache_results
        self.cache_size_limit = cache_size_limit
        self._cache: dict = {}

    # -- public queries ------------------------------------------------------

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop every cached query result (statistics are kept)."""
        self._cache.clear()

    def check(self, formula: Expr) -> Result:
        """Satisfiability of ``formula``."""
        if self.cache_results and formula in self._cache:
            self.stats.cache_hits += 1
            return self._cache[formula]
        start = time.perf_counter()
        self.stats.queries += 1
        try:
            result = self._check_sat(formula)
        finally:
            self.stats.time_seconds += time.perf_counter() - start
        if self.cache_results and len(self._cache) < self.cache_size_limit:
            self._cache[formula] = result
        return result

    def is_satisfiable(self, formula: Expr) -> bool:
        return self.check(formula) is Result.SAT

    def is_valid(self, formula: Expr) -> bool:
        """Validity of ``formula`` (unsatisfiability of its negation)."""
        result = self.check(neg(formula))
        valid = result is Result.UNSAT
        if valid:
            self.stats.valid += 1
        else:
            self.stats.invalid += 1
        return valid

    def check_implication(self, hypotheses: Sequence[Expr], goal: Expr) -> bool:
        """Validity of ``/\\ hypotheses => goal`` — the VC entry point."""
        antecedent = conj(*hypotheses) if hypotheses else BoolLit(True)
        return self.is_valid(implies(antecedent, goal))

    def check_implication_batch(self, hypotheses: Sequence[Expr],
                                goals: Sequence[Expr]) -> List[bool]:
        """Validity of ``/\\ hypotheses => goal`` for each goal in turn.

        The antecedent conjunction is built once and every query still flows
        through the result cache, so batches sharing hypotheses (the liquid
        fixpoint weakening a kappa) amortise both the term construction and
        any repeated obligations."""
        antecedent = conj(*hypotheses) if hypotheses else BoolLit(True)
        return [self.is_valid(implies(antecedent, goal)) for goal in goals]

    def environment_inconsistent(self, hypotheses: Sequence[Expr]) -> bool:
        """True iff the hypotheses are unsatisfiable (dead code detection)."""
        antecedent = conj(*hypotheses) if hypotheses else BoolLit(True)
        return self.check(antecedent) is Result.UNSAT

    # -- the lazy SMT loop ---------------------------------------------------

    def _check_sat(self, formula: Expr) -> Result:
        formula = simplify(formula)
        if isinstance(formula, BoolLit):
            return Result.SAT if formula.value else Result.UNSAT

        atoms = AtomMap()
        nnf = to_nnf(formula, True)
        clauses = tseitin(nnf, atoms)

        sat = SatSolver()
        for clause in clauses:
            if not sat.add_clause(clause):
                return Result.UNSAT

        for _ in range(self.max_theory_iterations):
            self.stats.sat_calls += 1
            if not sat.solve():
                return Result.UNSAT
            model = sat.model()
            literals = []
            for var, value in model.items():
                atom = atoms.atom_of(var)
                if atom is not None:
                    literals.append((atom, value))
            self.stats.theory_checks += 1
            result = check_with_core(literals)
            if result.satisfiable:
                return Result.SAT
            # Block this theory-inconsistent assignment.
            core = result.core or literals
            blocking = []
            for atom, value in core:
                var = atoms.atom_to_var.get(atom)
                if var is None:
                    continue
                blocking.append(-var if value else var)
            if not blocking:
                # The conflict does not mention any decidable atom; give up
                # conservatively (formula may or may not be satisfiable).
                return Result.UNKNOWN
            self.stats.blocking_clauses += 1
            if not sat.add_clause(blocking):
                return Result.UNSAT
        return Result.UNKNOWN


_DEFAULT_SOLVER: Optional[Solver] = None


def default_solver() -> Solver:
    """A process-wide solver instance (keeps cumulative statistics)."""
    global _DEFAULT_SOLVER
    if _DEFAULT_SOLVER is None:
        _DEFAULT_SOLVER = Solver()
    return _DEFAULT_SOLVER
