"""A small SMT solver for the decidable fragment RSC relies on.

The paper discharges verification conditions with Z3.  Z3 is not available in
this environment, so this package implements the required fragment from
scratch:

* :mod:`repro.smt.sat`      — a CDCL propositional SAT solver,
* :mod:`repro.smt.cnf`      — NNF / Tseitin conversion of formulas to CNF over
                              theory atoms,
* :mod:`repro.smt.euf`      — congruence closure for equality and
                              uninterpreted functions,
* :mod:`repro.smt.lia`      — linear integer arithmetic (Fourier–Motzkin with
                              integer-tightened strict inequalities),
* :mod:`repro.smt.bvmask`   — the constant bit-mask bit-vector fragment used
                              by the tsc interface-hierarchy benchmark,
* :mod:`repro.smt.theory`   — Nelson–Oppen-style combination of the theories,
* :mod:`repro.smt.solver`   — the lazy-SMT loop and the public ``Solver``
                              facade (``is_valid`` / ``is_satisfiable``).

The combination is sound for validity: whenever :meth:`Solver.is_valid`
returns ``True`` the formula really is valid in QF_UFLIA + constant masks.
Incompleteness only ever causes spurious "not valid" answers (i.e. spurious
type errors), never unsoundness.
"""

from repro.smt.solver import Solver, SolverStats, Result

__all__ = ["Solver", "SolverStats", "Result"]
