"""A small SMT solver for the decidable fragment RSC relies on.

The paper discharges verification conditions with Z3.  Z3 is not available in
this environment, so this package implements the required fragment from
scratch:

* :mod:`repro.smt.sat`      — a CDCL propositional SAT solver,
* :mod:`repro.smt.cnf`      — NNF / Tseitin conversion of formulas to CNF over
                              theory atoms,
* :mod:`repro.smt.euf`      — congruence closure for equality and
                              uninterpreted functions,
* :mod:`repro.smt.lia`      — linear integer arithmetic (Fourier–Motzkin with
                              integer-tightened strict inequalities),
* :mod:`repro.smt.bvmask`   — the constant bit-mask bit-vector fragment used
                              by the tsc interface-hierarchy benchmark,
* :mod:`repro.smt.theory`   — Nelson–Oppen-style combination of the theories,
* :mod:`repro.smt.context`  — persistent assumption-based contexts: one
                              long-lived SAT solver per hypothesis
                              environment, goals checked under selector
                              assumptions, learned/theory clauses retained,
* :mod:`repro.smt.backend`  — the pluggable ``Backend`` protocol and
                              registry (the built-in engine is
                              ``"internal"``; a z3 adapter can drop in),
* :mod:`repro.smt.solver`   — the lazy-SMT loop and the public ``Solver``
                              facade (``is_valid`` / ``is_satisfiable``),
                              routing implications through contexts when
                              ``smt_mode="incremental"``.

The combination is sound for validity: whenever :meth:`Solver.is_valid`
returns ``True`` the formula really is valid in QF_UFLIA + constant masks.
Incompleteness only ever causes spurious "not valid" answers (i.e. spurious
type errors), never unsoundness.
"""

from repro.smt.solver import SMT_MODES, Result, Solver, SolverStats
from repro.smt.backend import (
    Backend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.smt.context import ContextManager, SolverContext, TheoryLemmaStore

__all__ = [
    "Solver",
    "SolverStats",
    "Result",
    "SMT_MODES",
    "Backend",
    "available_backends",
    "create_backend",
    "register_backend",
    "ContextManager",
    "SolverContext",
    "TheoryLemmaStore",
]
