"""The pluggable SMT backend seam.

The checker only ever talks to the solver through the narrow surface below:
satisfiability of one formula, validity of an implication (optionally
batched over one hypothesis environment), and accumulated statistics.
:class:`Backend` captures that surface as a runtime-checkable protocol so an
external solver (a z3 adapter, a remote solving service) can drop in behind
the same :class:`repro.core.session.Session` machinery without touching the
pipeline.

Backends are registered by name in a process-wide registry; the built-in
engine (:class:`repro.smt.solver.Solver`, registered as ``"internal"``) is
the only one shipped — it is selected implicitly everywhere today.  A future
adapter registers a factory::

    from repro.smt.backend import register_backend

    register_backend("z3", lambda **options: Z3Backend(**options))

and constructs with the same keyword options :class:`Solver` accepts (extra
options it does not understand should be ignored, not rejected).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Protocol, Sequence, runtime_checkable

from repro.logic.terms import Expr
from repro.smt.solver import Result, Solver, SolverStats


@runtime_checkable
class Backend(Protocol):
    """What the checking pipeline requires of an SMT engine."""

    stats: SolverStats

    def check(self, formula: Expr) -> Result:
        """Satisfiability of ``formula``."""
        ...

    def is_satisfiable(self, formula: Expr) -> bool:
        ...

    def is_valid(self, formula: Expr) -> bool:
        ...

    def check_implication(self, hypotheses: Sequence[Expr],
                          goal: Expr) -> bool:
        ...

    def check_implication_batch(self, hypotheses: Sequence[Expr],
                                goals: Sequence[Expr]) -> List[bool]:
        ...

    def environment_inconsistent(self, hypotheses: Sequence[Expr]) -> bool:
        ...

    def clear_cache(self) -> None:
        ...


BackendFactory = Callable[..., Backend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    return sorted(_REGISTRY)


def create_backend(name: str = "internal", **options) -> Backend:
    """Instantiate the named backend with solver keyword options."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown SMT backend {name!r} "
            f"(available: {', '.join(available_backends())})") from None
    return factory(**options)


register_backend("internal", Solver)
