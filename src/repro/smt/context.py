"""Persistent, assumption-based SMT contexts for implication batches.

The refinement checker discharges *batches* of validity queries that share
one hypothesis environment: the liquid fixpoint weakens a kappa by asking
``/\\ hyps => goal_i`` for every candidate qualifier, and revisits the same
environment across fixpoint rounds.  The classic fresh-solver loop
(:meth:`repro.smt.solver.Solver._check_sat`) rebuilds the Tseitin CNF and a
new :class:`repro.smt.sat.SatSolver` per goal, discarding every learned
clause and theory lemma each time.

A :class:`SolverContext` keeps one long-lived SAT solver per hypothesis
environment instead:

* the environment's CNF is asserted **once** (incremental Tseitin into a
  shared :class:`repro.smt.cnf.AtomMap`),
* each goal adds the negated-goal clauses guarded by a fresh *selector*
  literal and solves under the assumption that the selector holds
  (``SatSolver.solve(assumptions)``), so retiring a goal is one permanent
  unit clause (``[-selector]``) rather than a solver rebuild,
* CDCL-learned clauses and theory conflict clauses (which are valid lemmas
  over the shared atoms, independent of any goal) persist across all goals
  of a batch *and* across fixpoint rounds that revisit the environment.

Contexts live in an LRU (:class:`ContextManager`) keyed by the environment's
antecedent term — the hypothesis fingerprint — and a :class:`TheoryLemmaStore`
of unsat cores is shared by every context of one solver and survives both
LRU eviction and the periodic context resets that bound SAT-variable
growth: a model that re-enters a known core is blocked without re-running
the Nelson–Oppen theory check.

Soundness notes.  A theory blocking clause built from an unsat core is a
tautology of the combined theory, so asserting it *unguarded* is sound for
every later goal over the same atoms.  Learned clauses are resolvents of
database clauses (including goal clauses guarded by their selector), so they
are implied by the database; once a selector is retired with ``[-selector]``
every clause mentioning it is permanently satisfied and
:meth:`repro.smt.sat.SatSolver.compact` can drop it.  Theory checks are
restricted to the *active* atoms (hypotheses plus the current goal): retired
goals' atoms are unconstrained and would only enlarge cores.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.logic.simplify import simplify
from repro.logic.terms import BoolLit, Expr, neg
from repro.smt.cnf import AtomMap, collect_atoms, to_nnf, tseitin
from repro.smt.sat import SatSolver
from repro.smt.theory import TheoryLiteral, check_with_core
from repro.obs.trace import span as trace_span

#: Retire this many goals before compacting the clause database.
COMPACT_EVERY = 8

#: Reset (rebuild) a context once its SAT solver grows past this many
#: variables — full models must assign every variable, so an unbounded
#: context would make each ``solve()`` quadratically slower.  The theory
#: lemma memo outlives the reset.
RESET_VAR_LIMIT = 1200


class TheoryLemmaStore:
    """Unsat cores discovered by theory checks, shared across contexts.

    A core is a set of theory literals ``(atom, polarity)`` whose conjunction
    is theory-inconsistent.  The store indexes each core under a
    deterministic *key literal* so that :meth:`find` visits every candidate
    core at most once per lookup.
    """

    def __init__(self, limit: int = 50_000) -> None:
        self.limit = limit
        self._cores: List[FrozenSet[TheoryLiteral]] = []
        self._seen: Set[FrozenSet[TheoryLiteral]] = set()
        self._index: Dict[FrozenSet[TheoryLiteral], int] = {}
        self._by_key: Dict[TheoryLiteral, List[int]] = {}
        self._by_atom: Dict[Expr, List[int]] = {}

    def __len__(self) -> int:
        return len(self._cores)

    @staticmethod
    def _key_literal(core: FrozenSet[TheoryLiteral]) -> TheoryLiteral:
        return min(core, key=lambda lit: (str(lit[0]), lit[1]))

    def record(self, core: Sequence[TheoryLiteral]) -> Optional[int]:
        """Store a core; returns its index (existing index for duplicates,
        ``None`` once the store is full)."""
        lits = frozenset(core)
        if not lits:
            return None
        if lits in self._seen:
            return self._index[lits]
        if len(self._cores) >= self.limit:
            return None
        self._seen.add(lits)
        self._cores.append(lits)
        index = len(self._cores) - 1
        self._index[lits] = index
        self._by_key.setdefault(self._key_literal(lits), []).append(index)
        for atom, _polarity in lits:
            self._by_atom.setdefault(atom, []).append(index)
        return index

    def core_at(self, index: int) -> FrozenSet[TheoryLiteral]:
        return self._cores[index]

    def cores_mentioning(self, atom: Expr) -> Sequence[int]:
        """Indices of every recorded core that mentions ``atom``.

        Drives eager replay: a context that has just mapped ``atom`` checks
        these candidates, and asserts the blocking clause of any core whose
        atoms are now all mapped — the conflict is then never enumerated.
        """
        return self._by_atom.get(atom, ())

    def find(self, literals: FrozenSet[TheoryLiteral]) -> Optional[int]:
        """The index of a recorded core contained in ``literals``, or None.

        Any subset of ``literals`` has its key literal in ``literals``, so
        scanning the index rows of the given literals is exhaustive.
        """
        for lit in literals:
            for index in self._by_key.get(lit, ()):
                if self._cores[index] <= literals:
                    return index
        return None


class SolverContext:
    """A persistent SAT solver holding one hypothesis environment's CNF.

    Goals are checked with :meth:`check_goal`; the context may be reused for
    any number of goals (and is, by the fixpoint engine, across rounds).
    """

    def __init__(self, antecedent: Expr, lemmas: TheoryLemmaStore,
                 max_theory_iterations: int = 5000) -> None:
        self.antecedent = antecedent
        self.lemmas = lemmas
        self.max_theory_iterations = max_theory_iterations
        self.goals_checked = 0
        self.resets = 0
        self._env_result: Optional[bool] = None  # cached env satisfiability
        self._build()

    # -- construction / reset ------------------------------------------------

    def _build(self) -> None:
        self.atoms = AtomMap()
        self.sat = SatSolver()
        self._hyp_vars: Set[int] = set()
        self._retired = 0
        self._inconsistent = False
        #: lemma-store indices whose blocking clause this context asserted
        self._asserted_cores: Set[int] = set()
        antecedent = simplify(self.antecedent)
        if isinstance(antecedent, BoolLit):
            self._inconsistent = not antecedent.value
            return
        nnf = to_nnf(antecedent, True)
        atoms_before = len(self.atoms.atom_to_var)
        clauses = tseitin(nnf, self.atoms)
        for clause in clauses:
            if not self.sat.add_clause(clause):
                self._inconsistent = True
                return
        self._hyp_vars = self._vars_of(nnf)
        self._replay_lemmas(atoms_before, None)

    def _reset(self) -> None:
        """Rebuild the SAT solver from the hypotheses alone.

        Bounds variable growth; the :class:`TheoryLemmaStore` (shared by
        all of the owning solver's contexts) re-supplies discovered theory
        conflicts on demand, so a reset costs SAT enumeration but never
        repeats a theory check.
        """
        self.resets += 1
        self._build()

    def _vars_of(self, nnf: Expr) -> Set[int]:
        # collect_atoms is memoised per interned term, so repeat goals cost
        # one dict probe per (shared) atom here.
        get = self.atoms.atom_to_var.get
        return {var for var in map(get, collect_atoms(nnf))
                if var is not None}

    # -- queries -------------------------------------------------------------

    def check_goal(self, goal: Expr, stats) -> Optional[bool]:
        """Is ``antecedent => goal`` valid?  (UNSAT of ``antecedent /\\ !goal``.)

        Returns True (valid: the conjunction is unsat), False (not valid: a
        theory-consistent model exists), or ``None`` when the theory
        iteration budget ran out — the caller must treat that as *unknown*
        (not valid, but also not a cacheable "satisfiable" verdict).

        ``stats`` is the owning solver's :class:`SolverStats`; the context
        bumps ``sat_calls`` / ``theory_checks`` / ``blocking_clauses`` /
        ``lemmas_reused`` / ``clauses_learned`` exactly like the fresh path.
        """
        self.goals_checked += 1
        if self._inconsistent:
            return True
        if self.sat.num_vars > RESET_VAR_LIMIT:
            self._reset()
            if self._inconsistent:
                return True
        negated = simplify(neg(goal))
        if isinstance(negated, BoolLit):
            if not negated.value:
                return True  # goal is trivially true under any environment
            # goal is trivially false: valid iff the environment is unsat
            env = self._env_satisfiable(stats)
            return None if env is None else not env
        nnf = to_nnf(negated, True)
        atoms_before = len(self.atoms.atom_to_var)
        clauses = tseitin(nnf, self.atoms)
        active = self._hyp_vars | self._vars_of(nnf)
        selector = self.atoms.fresh_aux()
        self.sat.ensure_var(selector)
        for clause in clauses:
            if not self.sat.add_clause([-selector] + clause):
                # Root-level conflict without the selector assumed: the
                # environment itself became propositionally unsat.
                self._inconsistent = True
                return True
        self._replay_lemmas(atoms_before, stats)
        if self._inconsistent:
            return True
        if self.sat.propagate_probe((selector,)):
            # Retained clauses refute the goal by unit propagation alone —
            # no SAT search needed.  This is the steady-state fast path for
            # re-derivable obligations and the reason incremental mode
            # issues fewer sat_calls than the fresh engine.
            self._retire(selector)
            return True
        learned_before = self.sat.num_learned
        try:
            unsat = self._theory_loop((selector,), active, stats)
        finally:
            stats.clauses_learned += self.sat.num_learned - learned_before
            self._retire(selector)
        if unsat is None:
            return None  # resource limit: unknown
        return unsat

    def _env_satisfiable(self, stats) -> Optional[bool]:
        """Satisfiability of the bare environment (no goal).

        ``None`` means the iteration budget ran out — unknown, and not
        memoised so a later (cheaper-after-lemmas) attempt may still decide.
        """
        if self._env_result is None:
            learned_before = self.sat.num_learned
            unsat = self._theory_loop((), self._hyp_vars, stats)
            stats.clauses_learned += self.sat.num_learned - learned_before
            if unsat is None:
                return None
            if unsat:
                self._inconsistent = True
            self._env_result = not unsat
        return self._env_result

    # -- internals -----------------------------------------------------------

    def _replay_lemmas(self, atoms_before: int, stats) -> None:
        """Eagerly assert memoised theory lemmas that just became relevant.

        Called whenever new atoms were mapped into this context (hypothesis
        build, each goal encoding): any stored core whose atoms are now all
        mapped is blocked up front, so its conflict is never enumerated by
        the SAT search at all — this is where the incremental engine beats
        the fresh one on ``sat_calls``, and why the memo matters across both
        LRU eviction and context resets.

        A core only becomes fully mapped when its *last* atom is mapped, and
        that atom is new, so scanning the new atoms' index rows is complete.
        """
        all_atoms = list(self.atoms.atom_to_var)
        new_atoms = all_atoms[atoms_before:]
        mapped = self.atoms.atom_to_var
        for atom in new_atoms:
            for index in self.lemmas.cores_mentioning(atom):
                if index in self._asserted_cores:
                    continue
                core = self.lemmas.core_at(index)
                if not all(a in mapped for a, _pol in core):
                    continue
                if stats is not None:
                    stats.lemmas_reused += 1
                if not self._assert_core(index, core):
                    self._inconsistent = True
                    return

    def _assert_core(self, index: Optional[int],
                     core: FrozenSet[TheoryLiteral]) -> bool:
        """Permanently block a theory-inconsistent literal set.

        Theory lemmas hold under every goal, so the clause is unguarded and
        persists for the rest of the context's lifetime.  Returns False when
        the clause database became unsat at the root — the environment is
        theory-inconsistent.
        """
        if index is not None:
            self._asserted_cores.add(index)
        blocking: List[int] = []
        for atom, value in core:
            var = self.atoms.atom_to_var.get(atom)
            if var is None:
                continue
            blocking.append(-var if value else var)
        if not blocking:
            return True
        return self.sat.add_clause(blocking)

    def _theory_loop(self, assumptions: Tuple[int, ...], active: Set[int],
                     stats) -> Optional[bool]:
        """The lazy CDCL(T) loop over the persistent solver.

        Returns True for UNSAT, False for SAT (a theory-consistent model
        exists), None when the iteration budget runs out.
        """
        for _ in range(self.max_theory_iterations):
            stats.sat_calls += 1
            if not self.sat.solve(assumptions):
                return True
            model = self.sat.model()
            literals: List[TheoryLiteral] = []
            for var in active:
                value = model.get(var)
                if value is None:
                    continue
                atom = self.atoms.atom_of(var)
                if atom is not None:
                    literals.append((atom, value))
            litset = frozenset(literals)
            index = self.lemmas.find(litset)
            if index is not None:
                # Memoised conflict (recorded by another context after this
                # one last mapped an atom): no theory check needed.
                stats.lemmas_reused += 1
                core = self.lemmas.core_at(index)
            else:
                stats.theory_checks += 1
                result = check_with_core(literals)
                if result.satisfiable:
                    return False
                core = frozenset(result.core or literals)
                index = self.lemmas.record(core)
            if not any(self.atoms.atom_to_var.get(atom) is not None
                       for atom, _value in core):
                # The conflict mentions no decidable atom; give up
                # conservatively (mirrors the fresh path).
                return None
            stats.blocking_clauses += 1
            if not self._assert_core(index, core):
                return True
            if self.sat.propagate_probe(assumptions):
                # The new lemma refutes the goal by propagation alone — the
                # fresh engine detects the same situation as a root-level
                # conflict while inserting its blocking clause.
                return True
        return None

    def _retire(self, selector: int) -> None:
        """Permanently disable a goal's guarded clauses."""
        self.sat.add_clause([-selector])
        self._retired += 1
        if self._retired % COMPACT_EVERY == 0:
            self.sat.compact()


class ContextManager:
    """An LRU of :class:`SolverContext` objects keyed by environment.

    The key is the antecedent term itself — structural hashing of the
    (immutable, interned-by-value) logic terms makes it a precise
    environment fingerprint.  The theory-lemma store is shared across every
    context and survives eviction.
    """

    def __init__(self, limit: int = 64, max_theory_iterations: int = 5000,
                 lemmas: Optional[TheoryLemmaStore] = None) -> None:
        if limit < 1:
            raise ValueError("context cache limit must be positive")
        self.limit = limit
        self.max_theory_iterations = max_theory_iterations
        self.lemmas = lemmas if lemmas is not None else TheoryLemmaStore()
        self._contexts: "OrderedDict[Expr, SolverContext]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._contexts)

    def context_for(self, antecedent: Expr, stats) -> SolverContext:
        context = self._contexts.get(antecedent)
        if context is not None:
            self._contexts.move_to_end(antecedent)
            stats.contexts_reused += 1
            return context
        with trace_span("smt.context_build", "smt",
                        cached=len(self._contexts)):
            context = SolverContext(antecedent, self.lemmas,
                                    self.max_theory_iterations)
        stats.contexts_created += 1
        self._contexts[antecedent] = context
        while len(self._contexts) > self.limit:
            self._contexts.popitem(last=False)
        return context

    def clear(self) -> None:
        """Drop every context (the lemma store is kept)."""
        self._contexts.clear()
