"""Constant bit-mask bit-vector theory.

Section 4.3 of the paper verifies downcasts guarded by bit-mask tests such as

    if (t.flags & TypeFlags.Object) { var o = <ObjectType> t; ... }

The refinements involved only ever test a variable against *constant* masks:
``mask(v, m)`` meaning ``(v & m) != 0``.  For this fragment the theory is easy
to decide per base term:

* every positive literal ``mask(t, c)`` requires at least one bit of ``c`` to
  be set in ``t``,
* every negative literal ``!mask(t, c)`` requires all bits of ``c`` to be
  clear in ``t``,
* an equality ``t = k`` with an integer constant ``k`` fixes all bits.

A conjunction over the same base term is satisfiable iff every positive mask
has at least one bit outside the union of the negative masks (and consistent
with a fixed constant value when present).  Different base terms are
independent; base terms are canonicalised by EUF representative so equalities
between flag variables are respected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

WIDTH = 32
MASK_ALL = (1 << WIDTH) - 1


@dataclass
class _TermConstraints:
    positive_masks: List[int] = field(default_factory=list)
    negative_masks: List[int] = field(default_factory=list)
    fixed_value: Optional[int] = None


class BvMaskSolver:
    """Decides conjunctions of constant-mask literals, grouped by base term."""

    def __init__(self) -> None:
        self._by_term: Dict[Hashable, _TermConstraints] = {}
        self._conflict = False

    def _entry(self, term_key: Hashable) -> _TermConstraints:
        return self._by_term.setdefault(term_key, _TermConstraints())

    def assert_mask(self, term_key: Hashable, mask: int, positive: bool) -> None:
        """Assert ``(t & mask) != 0`` (positive) or ``(t & mask) == 0``."""
        mask &= MASK_ALL
        entry = self._entry(term_key)
        if positive:
            if mask == 0:
                self._conflict = True
                return
            entry.positive_masks.append(mask)
        else:
            entry.negative_masks.append(mask)

    def assert_value(self, term_key: Hashable, value: int) -> None:
        """Assert that the base term equals the integer constant ``value``."""
        value &= MASK_ALL
        entry = self._entry(term_key)
        if entry.fixed_value is not None and entry.fixed_value != value:
            self._conflict = True
            return
        entry.fixed_value = value

    def check(self) -> bool:
        """True iff the asserted constraints are satisfiable."""
        if self._conflict:
            return False
        for entry in self._by_term.values():
            forbidden = 0
            for m in entry.negative_masks:
                forbidden |= m
            if entry.fixed_value is not None:
                value = entry.fixed_value
                if value & forbidden:
                    return False
                for m in entry.positive_masks:
                    if (value & m) == 0:
                        return False
                continue
            for m in entry.positive_masks:
                if (m & ~forbidden & MASK_ALL) == 0:
                    return False
        return True

    @property
    def in_conflict(self) -> bool:
        return self._conflict or not self.check()


def mask_implies(sub_mask: int, super_mask: int) -> bool:
    """``(v & sub) != 0`` implies ``(v & super) != 0`` iff sub's bits are a
    subset of super's bits.  Exposed for tests and the prelude axioms."""
    sub_mask &= MASK_ALL
    super_mask &= MASK_ALL
    return (sub_mask & ~super_mask) == 0 and sub_mask != 0
