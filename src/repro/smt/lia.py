"""Linear integer arithmetic for conjunctions of literals.

The theory solver receives a conjunction of arithmetic literals (produced by
the lazy-SMT loop from a SAT model) and decides satisfiability.  Atoms are
normalised to the form ``sum(c_i * x_i) + c <= 0``:

* ``a <  b``  becomes ``a - b + 1 <= 0``   (integer tightening),
* ``a <= b``  becomes ``a - b     <= 0``,
* ``a =  b``  becomes the pair ``a - b <= 0`` and ``b - a <= 0``,
* ``a != b``  is kept as a disequality and checked for entailed equality.

Satisfiability of the inequality system is decided with Fourier–Motzkin
elimination over the rationals.  Because every strict inequality has been
tightened to a non-strict one with an integer slack, rational satisfiability
of the tightened system coincides with integer satisfiability on the class of
constraints RSC generates (difference-bound-like constraints); in the general
case the procedure may report "satisfiable" for an integer-infeasible system,
which for validity checking is the sound direction (fewer VCs are proved).

Non-linear products and divisions are treated as opaque (uninterpreted)
variables, exactly like the paper does (section 5.1 "Ghost Functions").

Coefficients are exact: since division is opaque, every coefficient that
:func:`linearize` produces is an integer, and Fourier–Motzkin combinations
of integer constraints stay integer (cross-multiplication, no division).
By default the solver therefore seeds plain Python ints, which makes the
elimination loop an order of magnitude cheaper than the historical
``fractions.Fraction`` arithmetic.  The Fraction-seeded path is kept,
bit-for-bit, as the reference implementation: :func:`set_exact_ints`
switches back to it, and ``repro bench speed`` runs both and asserts the
verdicts are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence

from repro.logic.terms import BinOp, Expr, IntLit, UnOp

VarKey = Hashable

#: Safety valve for Fourier–Motzkin blow-up; beyond this we give up and answer
#: "satisfiable" (sound for validity checking).
MAX_CONSTRAINTS = 4000

#: Seed plain ints (the fast path) instead of Fractions (the reference).
#: Both paths run the same algorithm on the same values — ints and the
#: Fractions they equal compare and combine identically — only the cost of
#: each arithmetic operation differs.
_EXACT_INTS = [True]


def set_exact_ints(enabled: bool) -> None:
    """Select integer (default) or reference Fraction coefficient seeding."""
    _EXACT_INTS[0] = bool(enabled)


def exact_ints_enabled() -> bool:
    return _EXACT_INTS[0]


def _seed(value: "int | Fraction") -> "int | Fraction":
    """A coefficient/constant in the active arithmetic representation."""
    if _EXACT_INTS[0]:
        if isinstance(value, int):
            return value
        if isinstance(value, Fraction) and value.denominator == 1:
            return value.numerator
    return Fraction(value)


@dataclass
class LinExpr:
    """A linear expression ``sum(coeffs[k] * k) + const`` over variable keys."""

    coeffs: Dict[VarKey, "int | Fraction"] = field(default_factory=dict)
    const: "int | Fraction" = 0

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.const)

    def add(self, other: "LinExpr", factor: "int | Fraction" = 1) -> "LinExpr":
        out = self.copy()
        for k, c in other.coeffs.items():
            out.coeffs[k] = out.coeffs.get(k, 0) + factor * c
            if out.coeffs[k] == 0:
                del out.coeffs[k]
        out.const += factor * other.const
        return out

    def scale(self, factor: "int | Fraction") -> "LinExpr":
        return LinExpr({k: c * factor for k, c in self.coeffs.items() if c * factor != 0},
                       self.const * factor)

    def is_constant(self) -> bool:
        return not self.coeffs

    def variables(self) -> Iterable[VarKey]:
        return self.coeffs.keys()

    @staticmethod
    def constant(value: int | Fraction) -> "LinExpr":
        return LinExpr({}, _seed(value))

    @staticmethod
    def variable(key: VarKey) -> "LinExpr":
        return LinExpr({key: _seed(1)}, _seed(0))

    def __str__(self) -> str:
        parts = [f"{c}*{k}" for k, c in sorted(self.coeffs.items(), key=lambda kv: str(kv[0]))]
        parts.append(str(self.const))
        return " + ".join(parts)


def linearize(e: Expr, opaque: Callable[[Expr], VarKey],
              const_of: Optional[Callable[[Expr], Optional[int]]] = None) -> LinExpr:
    """Interpret ``e`` as a linear expression.

    ``opaque`` maps non-arithmetic subterms (variables, uninterpreted
    applications, non-linear products...) to variable keys — typically EUF
    representative ids so that congruent terms share a key.

    ``const_of`` optionally maps a subterm to a known integer value (derived
    from equality reasoning); this recovers a useful slice of non-linear
    arithmetic — products of terms whose values are pinned by the context —
    without a general non-linear decision procedure.
    """
    if const_of is not None and not isinstance(e, IntLit):
        known = const_of(e)
        if known is not None:
            return LinExpr.constant(known)
    if isinstance(e, IntLit):
        return LinExpr.constant(e.value)
    if isinstance(e, UnOp) and e.op == "-":
        return linearize(e.operand, opaque, const_of).scale(-1)
    if isinstance(e, BinOp):
        if e.op == "+":
            return linearize(e.left, opaque, const_of).add(
                linearize(e.right, opaque, const_of))
        if e.op == "-":
            return linearize(e.left, opaque, const_of).add(
                linearize(e.right, opaque, const_of), -1)
        if e.op == "*":
            left = linearize(e.left, opaque, const_of)
            right = linearize(e.right, opaque, const_of)
            if left.is_constant():
                return right.scale(left.const)
            if right.is_constant():
                return left.scale(right.const)
            # non-linear: opaque
            return LinExpr.variable(opaque(e))
        if e.op in ("/", "%", "&", "|"):
            return LinExpr.variable(opaque(e))
    return LinExpr.variable(opaque(e))


@dataclass
class LiaProblem:
    """A conjunction of linear constraints plus disequalities."""

    #: each entry is a LinExpr ``t`` meaning ``t <= 0``
    leqs: List[LinExpr] = field(default_factory=list)
    #: each entry is a LinExpr ``t`` meaning ``t != 0``
    diseqs: List[LinExpr] = field(default_factory=list)

    def add_le(self, lhs: LinExpr, rhs: LinExpr) -> None:
        self.leqs.append(lhs.add(rhs, -1))

    def add_lt(self, lhs: LinExpr, rhs: LinExpr) -> None:
        # a < b  over integers: a - b + 1 <= 0
        diff = lhs.add(rhs, -1)
        diff.const += 1
        self.leqs.append(diff)

    def add_eq(self, lhs: LinExpr, rhs: LinExpr) -> None:
        self.add_le(lhs, rhs)
        self.add_le(rhs, lhs)

    def add_neq(self, lhs: LinExpr, rhs: LinExpr) -> None:
        self.diseqs.append(lhs.add(rhs, -1))


def is_satisfiable(problem: LiaProblem) -> bool:
    """Decide satisfiability of the problem (sound "unsat" answers only)."""
    if not _leqs_satisfiable(problem.leqs):
        return False
    for d in problem.diseqs:
        if d.is_constant():
            if d.const == 0:
                return False
            continue
        # The disequality t != 0 conflicts only if the inequalities entail
        # t == 0, i.e. both t >= 1 and t <= -1 are infeasible (integers).
        ge_one = d.scale(-1)
        ge_one.const += 1  # -t + 1 <= 0  <=>  t >= 1
        le_minus_one = d.copy()
        le_minus_one.const += 1  # t + 1 <= 0  <=>  t <= -1
        if not _leqs_satisfiable(problem.leqs + [ge_one]) and \
           not _leqs_satisfiable(problem.leqs + [le_minus_one]):
            return False
    return True


def entails(problem: LiaProblem, goal_leq: LinExpr) -> bool:
    """Does the problem entail ``goal_leq <= 0``?  (Used by tests/qualifiers.)"""
    negated = goal_leq.scale(-1)
    negated.const += 1  # goal > 0  <=>  -goal + 1 <= 0 over integers
    return not _leqs_satisfiable(problem.leqs + [negated])


def _gcd_normalised(c: LinExpr) -> LinExpr:
    """Divide a constraint by the gcd of its terms when the division is exact.

    Cross-multiplication makes Fourier–Motzkin coefficients grow with every
    elimination round; dividing all coefficients *and* the constant by a
    common factor is equivalence-preserving over the rationals (the factor
    is positive), so the decision is unchanged while the integers stay
    word-sized.  Constraints with non-integer entries (callers may seed
    Fractions explicitly) are returned untouched.
    """
    g = 0
    for coeff in c.coeffs.values():
        if not isinstance(coeff, int):
            return c
        g = gcd(g, coeff)
    if g <= 1 or not isinstance(c.const, int) or c.const % g:
        return c
    return LinExpr({k: v // g for k, v in c.coeffs.items()}, c.const // g)


def _leqs_satisfiable(leqs: Sequence[LinExpr]) -> bool:
    """Fourier–Motzkin elimination; True means "satisfiable or unknown"."""
    constraints = [c.copy() for c in leqs]
    # Quick constant check first.
    for c in constraints:
        if c.is_constant() and c.const > 0:
            return False
    variables = sorted({v for c in constraints for v in c.variables()},
                       key=lambda v: str(v))
    for v in variables:
        lowers: List[LinExpr] = []   # constraints giving v >= something
        uppers: List[LinExpr] = []   # constraints giving v <= something
        rest: List[LinExpr] = []
        for c in constraints:
            coeff = c.coeffs.get(v)
            if coeff is None or coeff == 0:
                rest.append(c)
            elif coeff > 0:
                uppers.append(c)
            else:
                lowers.append(c)
        new_constraints = rest
        if len(uppers) * len(lowers) + len(rest) > MAX_CONSTRAINTS:
            return True  # give up: treat as satisfiable (sound for validity)
        for up in uppers:
            cu = up.coeffs[v]
            for lo in lowers:
                cl = lo.coeffs[v]
                # up: cu*v + ru <= 0 with cu > 0  =>  v <= -ru/cu
                # lo: cl*v + rl <= 0 with cl < 0  =>  v >= -rl/cl
                # combine: (-rl/cl) <= (-ru/cu)  i.e.  ru*(-cl) + rl*cu <= 0
                combined = up.scale(-cl).add(lo.scale(cu))
                combined.coeffs.pop(v, None)
                if combined.is_constant():
                    if combined.const > 0:
                        return False
                else:
                    if _EXACT_INTS[0]:
                        combined = _gcd_normalised(combined)
                    new_constraints.append(combined)
        constraints = new_constraints
        for c in constraints:
            if c.is_constant() and c.const > 0:
                return False
    for c in constraints:
        if c.is_constant() and c.const > 0:
            return False
    return True
