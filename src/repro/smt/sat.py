"""A CDCL propositional SAT solver.

Literals are non-zero integers in DIMACS convention: variable ``v`` appears
positively as ``v`` and negatively as ``-v``.  The solver implements:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style decaying variable activities,
* non-chronological backjumping,
* incremental addition of clauses between ``solve()`` calls (used by the lazy
  SMT loop to add theory conflict clauses).

The formulas produced by refinement type checking are small (tens to a few
hundred variables), so the emphasis is on correctness and clarity rather than
raw throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence


@dataclass
class _Clause:
    lits: List[int]
    learned: bool = False


class SatSolver:
    """A CDCL SAT solver over integer literals."""

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: List[_Clause] = []
        self._watches: Dict[int, List[_Clause]] = {}
        # assignment[v] is True/False/None
        self._assign: Dict[int, Optional[bool]] = {}
        self._level: Dict[int, int] = {}
        self._reason: Dict[int, Optional[_Clause]] = {}
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._activity: Dict[int, float] = {}
        self._act_inc = 1.0
        self._act_decay = 0.95
        self._ok = True
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0
        self.num_learned = 0

    # -- public API ---------------------------------------------------------

    def new_var(self) -> int:
        self._num_vars += 1
        v = self._num_vars
        self._assign[v] = None
        self._level[v] = 0
        self._reason[v] = None
        self._activity[v] = 0.0
        return v

    def ensure_var(self, v: int) -> None:
        while self._num_vars < v:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def add_clause(self, lits: Sequence[int], learned: bool = False) -> bool:
        """Add a clause; returns False if the formula became trivially unsat."""
        if not self._ok:
            return False
        for lit in lits:
            self.ensure_var(abs(lit))
        # Remove duplicates; drop tautologies.
        seen = set()
        out: List[int] = []
        for lit in lits:
            if -lit in seen:
                return True  # tautology: always satisfied
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        # At top level we can discard falsified literals.
        if self._decision_level() == 0:
            out = [lit for lit in out if self._value(lit) is not False]
            if any(self._value(lit) is True for lit in out):
                return True
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if self._decision_level() != 0:
                self._backtrack(0)
            if self._value(out[0]) is False:
                self._ok = False
                return False
            if self._value(out[0]) is None:
                self._enqueue(out[0], None)
                conflict = self._propagate()
                if conflict is not None:
                    self._ok = False
                    return False
            return True
        # Clauses may be added between solve() calls (theory blocking clauses);
        # restart the search and make sure the watch invariant holds with
        # respect to the persistent level-0 assignment.
        if self._decision_level() != 0:
            self._backtrack(0)
        out.sort(key=lambda lit: 0 if self._value(lit) is not False else 1)
        clause = _Clause(out, learned)
        if self._value(out[0]) is False:
            # every literal is already false at the root level
            self._ok = False
            return False
        if self._value(out[1]) is False:
            # unit under the root-level assignment
            self._clauses.append(clause)
            self._watch(clause)
            if self._value(out[0]) is None:
                self._enqueue(out[0], clause)
                conflict = self._propagate()
                if conflict is not None:
                    self._ok = False
                    return False
            return True
        self._clauses.append(clause)
        self._watch(clause)
        return True

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Return True iff the clause set (plus assumptions) is satisfiable."""
        if not self._ok:
            return False
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            return False
        # Push assumptions as decisions.
        for a in assumptions:
            self.ensure_var(abs(a))
            if self._value(a) is False:
                return False
            if self._value(a) is None:
                self._new_decision_level()
                self._enqueue(a, None)
                conflict = self._propagate()
                if conflict is not None:
                    return False
        base_level = self._decision_level()
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.num_conflicts += 1
                if self._decision_level() <= base_level:
                    self._backtrack(0)
                    return False
                learned, back_level = self._analyze(conflict)
                self.num_learned += 1
                back_level = max(back_level, base_level)
                self._backtrack(back_level)
                if len(learned) == 1:
                    if self._value(learned[0]) is None:
                        self._enqueue(learned[0], None)
                    elif self._value(learned[0]) is False:
                        self._backtrack(0)
                        return False
                else:
                    clause = _Clause(list(learned), learned=True)
                    self._clauses.append(clause)
                    self._watch(clause)
                    if self._value(learned[0]) is None:
                        self._enqueue(learned[0], clause)
                self._decay_activities()
            else:
                lit = self._pick_branch()
                if lit is None:
                    return True  # full assignment
                self.num_decisions += 1
                self._new_decision_level()
                self._enqueue(lit, None)

    def propagate_probe(self, assumptions: Sequence[int] = ()) -> bool:
        """Unit-propagation-only unsatisfiability probe (no search).

        Returns True when the clause set plus ``assumptions`` is refuted by
        unit propagation alone — a decision-free conflict.  Returns False
        when propagation completes without conflict, which says nothing
        about satisfiability.  The incremental context layer uses this to
        discharge goals whose refutation is already propagation-evident
        from retained lemmas, without starting a SAT search.
        """
        if not self._ok:
            return True
        self._backtrack(0)
        if self._propagate() is not None:
            return True
        for a in assumptions:
            self.ensure_var(abs(a))
            if self._value(a) is False:
                self._backtrack(0)
                return True
            if self._value(a) is None:
                self._new_decision_level()
                self._enqueue(a, None)
                if self._propagate() is not None:
                    self._backtrack(0)
                    return True
        self._backtrack(0)
        return False

    def model(self) -> Dict[int, bool]:
        """The satisfying assignment found by the last successful solve()."""
        return {v: val for v, val in self._assign.items() if val is not None}

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def compact(self) -> int:
        """Drop clauses that are permanently satisfied at the root level.

        Long-lived solvers (the incremental context layer) retire a goal by
        asserting its selector's negation as a root-level unit, which
        permanently satisfies every clause guarded by that selector —
        including CDCL-learned clauses that mention it.  Compaction removes
        them and rebuilds the watch lists; returns the number removed.
        """
        if not self._ok:
            return 0
        self._backtrack(0)

        def rooted_true(lit: int) -> bool:
            return self._value(lit) is True and self._level[abs(lit)] == 0

        kept: List[_Clause] = []
        removed = 0
        for clause in self._clauses:
            if any(rooted_true(lit) for lit in clause.lits):
                removed += 1
            else:
                kept.append(clause)
        if not removed:
            return 0
        self._clauses = kept
        self._watches = {}
        for clause in kept:
            # Re-establish the watch invariant under the root assignment:
            # watch two non-false literals whenever they exist.
            clause.lits.sort(
                key=lambda lit: 0 if self._value(lit) is not False else 1)
            if self._value(clause.lits[0]) is False:
                self._ok = False  # whole clause false at root
                return removed
            self._watch(clause)
            if len(clause.lits) > 1 and self._value(clause.lits[1]) is False \
                    and self._value(clause.lits[0]) is None:
                # Unit under the root assignment (cannot normally happen —
                # root propagation ran before compaction — but keep the
                # solver consistent regardless).
                self._enqueue(clause.lits[0], clause)
        if self._propagate() is not None:
            self._ok = False
        return removed

    # -- internals ----------------------------------------------------------

    def _value(self, lit: int) -> Optional[bool]:
        val = self._assign.get(abs(lit))
        if val is None:
            return None
        return val if lit > 0 else (not val)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> None:
        v = abs(lit)
        self._assign[v] = lit > 0
        self._level[v] = self._decision_level()
        self._reason[v] = reason
        self._trail.append(lit)

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            v = abs(lit)
            self._assign[v] = None
            self._reason[v] = None
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._prop_head = min(getattr(self, "_prop_head", 0), len(self._trail))

    def _watch(self, clause: _Clause) -> None:
        for lit in clause.lits[:2]:
            self._watches.setdefault(-lit, []).append(clause)

    def _propagate(self) -> Optional[_Clause]:
        head = getattr(self, "_prop_head", 0)
        while head < len(self._trail):
            lit = self._trail[head]
            head += 1
            self.num_propagations += 1
            watchers = self._watches.get(lit, [])
            self._watches[lit] = []
            i = 0
            while i < len(watchers):
                clause = watchers[i]
                i += 1
                if not self._propagate_clause(clause, lit):
                    # Conflict: the conflicting clause already re-registered
                    # itself inside _propagate_clause, so only the watchers we
                    # have not visited yet need to be restored.
                    self._watches[lit].extend(watchers[i:])
                    self._prop_head = len(self._trail)
                    return clause
        self._prop_head = head
        return None

    def _propagate_clause(self, clause: _Clause, false_lit: int) -> bool:
        """Returns False on conflict. ``false_lit`` just became true, so
        ``-false_lit`` is the falsified watched literal."""
        lits = clause.lits
        # Ensure the falsified literal is at position 1.
        if lits[0] == -false_lit:
            lits[0], lits[1] = lits[1], lits[0]
        # If the other watch is already true, keep watching.
        if self._value(lits[0]) is True:
            self._watches.setdefault(false_lit, []).append(clause)
            return True
        # Look for a new literal to watch.
        for k in range(2, len(lits)):
            if self._value(lits[k]) is not False:
                lits[1], lits[k] = lits[k], lits[1]
                self._watches.setdefault(-lits[1], []).append(clause)
                return True
        # Clause is unit or conflicting.
        self._watches.setdefault(false_lit, []).append(clause)
        if self._value(lits[0]) is False:
            return False
        self._enqueue(lits[0], clause)
        return True

    def _analyze(self, conflict: _Clause) -> tuple[List[int], int]:
        """First-UIP conflict analysis; returns (learned clause, backjump level).

        The learned clause has the asserting literal in position 0."""
        learned: List[int] = []
        seen: set[int] = set()
        counter = 0
        lit_to_resolve: Optional[int] = None
        clause: Optional[_Clause] = conflict
        trail_index = len(self._trail) - 1
        cur_level = self._decision_level()

        while True:
            assert clause is not None
            for lit in clause.lits:
                if lit_to_resolve is not None and lit == lit_to_resolve:
                    continue
                v = abs(lit)
                if v in seen or self._level[v] == 0:
                    continue
                seen.add(v)
                self._bump_activity(v)
                if self._level[v] == cur_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Find the next literal on the trail to resolve on.
            while trail_index >= 0 and abs(self._trail[trail_index]) not in seen:
                trail_index -= 1
            if trail_index < 0:
                break
            resolved_lit = self._trail[trail_index]
            v = abs(resolved_lit)
            seen.discard(v)
            trail_index -= 1
            counter -= 1
            if counter <= 0:
                learned.insert(0, -resolved_lit)
                break
            clause = self._reason[v]
            lit_to_resolve = resolved_lit
            if clause is None:
                # Decision literal reached without UIP (shouldn't happen);
                # learn the decision negation.
                learned.insert(0, -resolved_lit)
                break

        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the learned clause.
        levels = sorted((self._level[abs(l)] for l in learned[1:]), reverse=True)
        back_level = levels[0] if levels else 0
        # Put a literal from back_level at position 1 (watch invariant).
        for idx in range(1, len(learned)):
            if self._level[abs(learned[idx])] == back_level:
                learned[1], learned[idx] = learned[idx], learned[1]
                break
        return learned, back_level

    def _pick_branch(self) -> Optional[int]:
        best_v = None
        best_act = -1.0
        for v in range(1, self._num_vars + 1):
            if self._assign[v] is None and self._activity[v] > best_act:
                best_v = v
                best_act = self._activity[v]
        if best_v is None:
            return None
        return -best_v  # prefer False first: good for blocking-clause workloads

    def _bump_activity(self, v: int) -> None:
        self._activity[v] += self._act_inc
        if self._activity[v] > 1e100:
            for u in self._activity:
                self._activity[u] *= 1e-100
            self._act_inc *= 1e-100

    def _decay_activities(self) -> None:
        self._act_inc /= self._act_decay


def solve_cnf(clauses: Iterable[Sequence[int]]) -> Optional[Dict[int, bool]]:
    """Convenience helper: solve a CNF given as an iterable of literal lists.

    Returns a model (variable -> bool) or ``None`` if unsatisfiable.
    """
    solver = SatSolver()
    for clause in clauses:
        solver.add_clause(list(clause))
    if solver.solve():
        return solver.model()
    return None
