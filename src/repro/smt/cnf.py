"""Conversion of logical formulas to CNF over theory atoms.

The pipeline is:

1. :func:`to_nnf` — rewrite implications/iffs and push negations down to the
   atoms (negated atoms stay as negative literals, they are not rewritten
   into complementary atoms here; the theory layer understands negation).
2. :func:`tseitin` — structural (Tseitin) CNF conversion.  Each distinct
   theory atom is mapped to a propositional variable; auxiliary variables are
   introduced for internal conjunctions/disjunctions so the output size is
   linear in the input.

The :class:`AtomMap` records the bijection between propositional variables
and theory atoms so the lazy-SMT loop can translate SAT models back into sets
of theory literals.

All conversions are iterative — deeply nested formulas (thousands of
conjuncts from a long function body) must not hit the recursion limit — and
:func:`to_nnf`/:func:`collect_atoms` are memoised per interned term
(:func:`repro.logic.terms.clear_memos` drops the tables).  :func:`tseitin`
is inherently stateful (it allocates SAT variables in visit order) and is
recomputed per call, but its traversal reproduces the historical recursive
order exactly: clause emission and variable allocation are byte-for-byte
stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.logic.terms import (
    App,
    BinOp,
    BoolLit,
    Expr,
    Field,
    Ite,
    UnOp,
    Var,
    memoisation_enabled,
)
from repro.logic.sorts import BOOL

#: (term, polarity) -> NNF term.
_NNF_MEMO: Dict[Tuple[Expr, bool], Expr] = {}
#: NNF term -> the atoms its Tseitin encoding references.
_ATOMS_MEMO: Dict[Expr, FrozenSet[Expr]] = {}


def _clear_local_memos() -> None:
    _NNF_MEMO.clear()
    _ATOMS_MEMO.clear()


@dataclass
class AtomMap:
    """Bijection between theory atoms (boolean-sorted Exprs) and SAT variables."""

    atom_to_var: Dict[Expr, int] = field(default_factory=dict)
    var_to_atom: Dict[int, Expr] = field(default_factory=dict)
    _next_var: int = 1

    def var_for(self, atom: Expr) -> int:
        if atom in self.atom_to_var:
            return self.atom_to_var[atom]
        v = self._next_var
        self._next_var += 1
        self.atom_to_var[atom] = v
        self.var_to_atom[v] = atom
        return v

    def fresh_aux(self) -> int:
        """A fresh propositional variable with no associated theory atom."""
        v = self._next_var
        self._next_var += 1
        return v

    def atom_of(self, var: int) -> Expr | None:
        return self.var_to_atom.get(var)

    @property
    def num_vars(self) -> int:
        return self._next_var - 1


def to_nnf(e: Expr, polarity: bool = True) -> Expr:
    """Negation normal form.  ``polarity=False`` computes NNF of ``not e``.

    Iterative worklist over ``(term, polarity)`` pairs with a per-process
    memo; produces exactly the formula the old recursion did.
    """
    memo = _NNF_MEMO if memoisation_enabled() else {}
    key = (e, polarity)
    hit = memo.get(key)
    if hit is not None:
        return hit
    # Frames: ("visit", node, pol) computes memo[(node, pol)];
    # ("alias", key, src_key) copies an already-computed entry;
    # ("combine", key, op, lkey, rkey) joins two computed children.
    stack: List[tuple] = [("visit", e, polarity)]
    while stack:
        frame = stack.pop()
        kind = frame[0]
        if kind == "alias":
            memo[frame[1]] = memo[frame[2]]
            continue
        if kind == "combine":
            _, k, op, lk, rk = frame
            memo[k] = BinOp(op, memo[lk], memo[rk], BOOL)
            continue
        node, pol = frame[1], frame[2]
        k = (node, pol)
        if k in memo:
            continue
        if isinstance(node, BoolLit):
            memo[k] = BoolLit(node.value if pol else not node.value)
            continue
        if isinstance(node, UnOp) and node.op == "!":
            sub = (node.operand, not pol)
            stack.append(("alias", k, sub))
            stack.append(("visit", node.operand, not pol))
            continue
        if isinstance(node, BinOp):
            op = node.op
            if op == "&&" or op == "||":
                flipped = "||" if op == "&&" else "&&"
                new_op = op if pol else flipped
                stack.append(("combine", k, new_op,
                              (node.left, pol), (node.right, pol)))
                stack.append(("visit", node.right, pol))
                stack.append(("visit", node.left, pol))
                continue
            if op == "=>":
                # p => q  ==  ~p \/ q
                if pol:
                    stack.append(("combine", k, "||",
                                  (node.left, False), (node.right, True)))
                    stack.append(("visit", node.right, True))
                    stack.append(("visit", node.left, False))
                else:
                    stack.append(("combine", k, "&&",
                                  (node.left, True), (node.right, False)))
                    stack.append(("visit", node.right, False))
                    stack.append(("visit", node.left, True))
                continue
            if op == "<=>":
                # p <=> q  ==  (p => q) /\ (q => p)
                expanded = BinOp("&&",
                                 BinOp("=>", node.left, node.right, BOOL),
                                 BinOp("=>", node.right, node.left, BOOL),
                                 BOOL)
                stack.append(("alias", k, (expanded, pol)))
                stack.append(("visit", expanded, pol))
                continue
            # Comparison over booleans: "b = true" style atoms stay atoms.
        if isinstance(node, Ite):
            # Boolean ITE: (c /\ t) \/ (~c /\ e)
            expanded = BinOp("||",
                             BinOp("&&", node.cond, node.then, BOOL),
                             BinOp("&&", UnOp("!", node.cond, BOOL),
                                   node.els, BOOL),
                             BOOL)
            stack.append(("alias", k, (expanded, pol)))
            stack.append(("visit", expanded, pol))
            continue
        # Atom (Var, App, Field, comparison BinOp, ...)
        memo[k] = node if pol else UnOp("!", node, BOOL)
    return memo[key]


def _is_atom(e: Expr) -> bool:
    if isinstance(e, (Var, App, Field, BoolLit)):
        return True
    if isinstance(e, BinOp) and e.op not in ("&&", "||", "=>", "<=>"):
        return True
    return False


def tseitin(formula: Expr, atoms: AtomMap) -> List[List[int]]:
    """Convert an NNF formula to CNF clauses via Tseitin encoding.

    The returned clauses assert the formula (the root's definition literal is
    asserted as a unit clause).  The explicit-stack traversal visits nodes in
    the same order as the old recursive ``encode``, so SAT variable numbering
    and clause order are unchanged.
    """
    clauses: List[List[int]] = []
    root_slot = [0]
    # Frames: ("visit", node, dest, i) stores the literal for node in
    # dest[i]; ("neg", dest, i, tmp) negates a computed sub-literal;
    # ("emit", op, lits, dest, i) allocates the aux var for a finished
    # conjunction/disjunction and emits its defining clauses.
    stack: List[tuple] = [("visit", formula, root_slot, 0)]
    while stack:
        frame = stack.pop()
        kind = frame[0]
        if kind == "neg":
            _, dest, i, tmp = frame
            dest[i] = -tmp[0]
            continue
        if kind == "emit":
            _, op, lits, dest, i = frame
            aux = atoms.fresh_aux()
            if op == "&&":
                # aux -> each lit ; (all lits) -> aux
                for lit in lits:
                    clauses.append([-aux, lit])
                clauses.append([aux] + [-lit for lit in lits])
            else:
                # aux -> (l1 \/ ... \/ ln); each lit -> aux
                clauses.append([-aux] + lits)
                for lit in lits:
                    clauses.append([-lit, aux])
            dest[i] = aux
            continue
        _, node, dest, i = frame
        if isinstance(node, BoolLit):
            v = atoms.fresh_aux()
            clauses.append([v] if node.value else [-v])
            dest[i] = v
            continue
        if isinstance(node, UnOp) and node.op == "!":
            if _is_atom(node.operand):
                dest[i] = -atoms.var_for(node.operand)
            else:
                tmp = [0]
                stack.append(("neg", dest, i, tmp))
                stack.append(("visit", node.operand, tmp, 0))
            continue
        if _is_atom(node):
            dest[i] = atoms.var_for(node)
            continue
        if isinstance(node, BinOp) and node.op in ("&&", "||"):
            parts = _flatten(node, node.op)
            lits = [0] * len(parts)
            stack.append(("emit", node.op, lits, dest, i))
            for index in range(len(parts) - 1, -1, -1):
                stack.append(("visit", parts[index], lits, index))
            continue
        # Anything else (shouldn't appear after NNF) is treated as an atom.
        dest[i] = atoms.var_for(node)
    clauses.append([root_slot[0]])
    return clauses


def collect_atoms(e: Expr) -> FrozenSet[Expr]:
    """The theory atoms an NNF formula's Tseitin encoding will reference.

    Mirrors :func:`tseitin`'s traversal exactly (including the conservative
    fall-through that treats unexpected nodes as atoms), so
    ``{atoms.atom_to_var[a] for a in collect_atoms(nnf)}`` is precisely the
    set of atom variables the encoded clauses mention.  The incremental
    context layer uses this to restrict theory checks to the *active* atoms
    of a query.  Returns a (memoised) frozenset.
    """
    memo = _ATOMS_MEMO if memoisation_enabled() else {}
    hit = memo.get(e)
    if hit is not None:
        return hit
    stack: List[Tuple[Expr, bool]] = [(e, False)]
    while stack:
        node, ready = stack.pop()
        if ready:
            out: set = set()
            for c in _atom_children(node):
                out |= memo[c]
            memo[node] = frozenset(out)
            continue
        if node in memo:
            continue
        if isinstance(node, BoolLit):
            memo[node] = frozenset()
            continue
        if isinstance(node, UnOp) and node.op == "!":
            if _is_atom(node.operand):
                memo[node] = frozenset((node.operand,))
                continue
        elif _is_atom(node) or not (isinstance(node, BinOp)
                                    and node.op in ("&&", "||")):
            memo[node] = frozenset((node,))
            continue
        stack.append((node, True))
        for c in _atom_children(node):
            if c not in memo:
                stack.append((c, False))
    return memo[e]


def _atom_children(node: Expr) -> Tuple[Expr, ...]:
    """Sub-formulas :func:`collect_atoms` descends into for ``node``."""
    if isinstance(node, UnOp):
        return (node.operand,)
    return (node.left, node.right)  # type: ignore[union-attr]


def _flatten(e: Expr, op: str) -> List[Expr]:
    """Left-to-right leaves of an ``op`` spine (iterative: the spine can be
    as deep as the conjunct count)."""
    out: List[Expr] = []
    stack: List[Expr] = [e]
    while stack:
        node = stack.pop()
        if isinstance(node, BinOp) and node.op == op:
            stack.append(node.right)
            stack.append(node.left)
        else:
            out.append(node)
    return out


def formula_to_cnf(formula: Expr) -> Tuple[List[List[int]], AtomMap]:
    """NNF + Tseitin in one call; returns (clauses, atom map)."""
    atoms = AtomMap()
    nnf = to_nnf(formula, True)
    clauses = tseitin(nnf, atoms)
    return clauses, atoms
