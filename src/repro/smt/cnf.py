"""Conversion of logical formulas to CNF over theory atoms.

The pipeline is:

1. :func:`to_nnf` — rewrite implications/iffs and push negations down to the
   atoms (negated atoms stay as negative literals, they are not rewritten
   into complementary atoms here; the theory layer understands negation).
2. :func:`tseitin` — structural (Tseitin) CNF conversion.  Each distinct
   theory atom is mapped to a propositional variable; auxiliary variables are
   introduced for internal conjunctions/disjunctions so the output size is
   linear in the input.

The :class:`AtomMap` records the bijection between propositional variables
and theory atoms so the lazy-SMT loop can translate SAT models back into sets
of theory literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.logic.terms import App, BinOp, BoolLit, Expr, Field, Ite, UnOp, Var
from repro.logic.sorts import BOOL


@dataclass
class AtomMap:
    """Bijection between theory atoms (boolean-sorted Exprs) and SAT variables."""

    atom_to_var: Dict[Expr, int] = field(default_factory=dict)
    var_to_atom: Dict[int, Expr] = field(default_factory=dict)
    _next_var: int = 1

    def var_for(self, atom: Expr) -> int:
        if atom in self.atom_to_var:
            return self.atom_to_var[atom]
        v = self._next_var
        self._next_var += 1
        self.atom_to_var[atom] = v
        self.var_to_atom[v] = atom
        return v

    def fresh_aux(self) -> int:
        """A fresh propositional variable with no associated theory atom."""
        v = self._next_var
        self._next_var += 1
        return v

    def atom_of(self, var: int) -> Expr | None:
        return self.var_to_atom.get(var)

    @property
    def num_vars(self) -> int:
        return self._next_var - 1


def to_nnf(e: Expr, polarity: bool = True) -> Expr:
    """Negation normal form.  ``polarity=False`` computes NNF of ``not e``."""
    if isinstance(e, BoolLit):
        return BoolLit(e.value if polarity else not e.value)
    if isinstance(e, UnOp) and e.op == "!":
        return to_nnf(e.operand, not polarity)
    if isinstance(e, BinOp):
        op = e.op
        if op == "&&":
            new_op = "&&" if polarity else "||"
            return BinOp(new_op, to_nnf(e.left, polarity),
                         to_nnf(e.right, polarity), BOOL)
        if op == "||":
            new_op = "||" if polarity else "&&"
            return BinOp(new_op, to_nnf(e.left, polarity),
                         to_nnf(e.right, polarity), BOOL)
        if op == "=>":
            # p => q  ==  ~p \/ q
            if polarity:
                return BinOp("||", to_nnf(e.left, False),
                             to_nnf(e.right, True), BOOL)
            return BinOp("&&", to_nnf(e.left, True),
                         to_nnf(e.right, False), BOOL)
        if op == "<=>":
            # p <=> q  ==  (p => q) /\ (q => p)
            expanded = BinOp("&&",
                             BinOp("=>", e.left, e.right, BOOL),
                             BinOp("=>", e.right, e.left, BOOL), BOOL)
            return to_nnf(expanded, polarity)
        # Comparison over booleans: "b = true" style atoms are kept as atoms.
    if isinstance(e, Ite):
        # Boolean ITE: (c /\ t) \/ (~c /\ e)
        expanded = BinOp("||",
                         BinOp("&&", e.cond, e.then, BOOL),
                         BinOp("&&", UnOp("!", e.cond, BOOL), e.els, BOOL),
                         BOOL)
        return to_nnf(expanded, polarity)
    # Atom (Var, App, Field, comparison BinOp, ...)
    if polarity:
        return e
    return UnOp("!", e, BOOL)


def _is_atom(e: Expr) -> bool:
    if isinstance(e, (Var, App, Field, BoolLit)):
        return True
    if isinstance(e, BinOp) and e.op not in ("&&", "||", "=>", "<=>"):
        return True
    return False


def tseitin(formula: Expr, atoms: AtomMap) -> List[List[int]]:
    """Convert an NNF formula to CNF clauses via Tseitin encoding.

    The returned clauses assert the formula (the root's definition literal is
    asserted as a unit clause).
    """
    clauses: List[List[int]] = []

    def encode(e: Expr) -> int:
        """Return a literal equivalent (equisatisfiably) to ``e``."""
        if isinstance(e, BoolLit):
            v = atoms.fresh_aux()
            clauses.append([v] if e.value else [-v])
            return v
        if isinstance(e, UnOp) and e.op == "!":
            if _is_atom(e.operand):
                return -atoms.var_for(e.operand)
            return -encode(e.operand)
        if _is_atom(e):
            return atoms.var_for(e)
        if isinstance(e, BinOp) and e.op in ("&&", "||"):
            parts = _flatten(e, e.op)
            lits = [encode(p) for p in parts]
            aux = atoms.fresh_aux()
            if e.op == "&&":
                # aux -> each lit ; (all lits) -> aux
                for lit in lits:
                    clauses.append([-aux, lit])
                clauses.append([aux] + [-lit for lit in lits])
            else:
                # aux -> (l1 \/ ... \/ ln); each lit -> aux
                clauses.append([-aux] + lits)
                for lit in lits:
                    clauses.append([-lit, aux])
            return aux
        # Anything else (shouldn't appear after NNF) is treated as an atom.
        return atoms.var_for(e)

    root = encode(formula)
    clauses.append([root])
    return clauses


def collect_atoms(e: Expr) -> Set[Expr]:
    """The theory atoms an NNF formula's Tseitin encoding will reference.

    Mirrors :func:`tseitin`'s ``encode`` recursion exactly (including the
    conservative fall-through that treats unexpected nodes as atoms), so
    ``{atoms.atom_to_var[a] for a in collect_atoms(nnf)}`` is precisely the
    set of atom variables the encoded clauses mention.  The incremental
    context layer uses this to restrict theory checks to the *active* atoms
    of a query.
    """
    if isinstance(e, BoolLit):
        return set()
    if isinstance(e, UnOp) and e.op == "!":
        if _is_atom(e.operand):
            return {e.operand}
        return collect_atoms(e.operand)
    if _is_atom(e):
        return {e}
    if isinstance(e, BinOp) and e.op in ("&&", "||"):
        return collect_atoms(e.left) | collect_atoms(e.right)
    return {e}


def _flatten(e: Expr, op: str) -> List[Expr]:
    if isinstance(e, BinOp) and e.op == op:
        return _flatten(e.left, op) + _flatten(e.right, op)
    return [e]


def formula_to_cnf(formula: Expr) -> Tuple[List[List[int]], AtomMap]:
    """NNF + Tseitin in one call; returns (clauses, atom map)."""
    atoms = AtomMap()
    nnf = to_nnf(formula, True)
    clauses = tseitin(nnf, atoms)
    return clauses, atoms
