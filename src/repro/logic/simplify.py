"""Light-weight syntactic simplification of logical expressions.

The simplifier is used before formulas are handed to the SMT layer and by the
liquid fixpoint solver to keep intermediate predicates small.  It performs
constant folding, boolean unit laws and a handful of arithmetic identities; it
never changes the meaning of a formula.
"""

from __future__ import annotations

from repro.logic.terms import (
    BinOp,
    BoolLit,
    Expr,
    IntLit,
    Ite,
    StrLit,
    UnOp,
    children,
    rebuild,
)


def simplify(e: Expr) -> Expr:
    """Recursively simplify ``e``."""
    kids = children(e)
    if kids:
        new_kids = [simplify(c) for c in kids]
        if any(nk is not k for nk, k in zip(new_kids, kids)):
            e = rebuild(e, new_kids)
    return _simplify_node(e)


def _simplify_node(e: Expr) -> Expr:
    if isinstance(e, UnOp):
        return _simplify_unop(e)
    if isinstance(e, BinOp):
        return _simplify_binop(e)
    if isinstance(e, Ite):
        if isinstance(e.cond, BoolLit):
            return e.then if e.cond.value else e.els
        if e.then == e.els:
            return e.then
    return e


def _simplify_unop(e: UnOp) -> Expr:
    if e.op == "!":
        if isinstance(e.operand, BoolLit):
            return BoolLit(not e.operand.value)
        if isinstance(e.operand, UnOp) and e.operand.op == "!":
            return e.operand.operand
    if e.op == "-" and isinstance(e.operand, IntLit):
        return IntLit(-e.operand.value)
    return e


def _simplify_binop(e: BinOp) -> Expr:  # noqa: C901 - a dispatch table in disguise
    left, right = e.left, e.right
    op = e.op

    if op == "&&":
        if isinstance(left, BoolLit):
            return right if left.value else BoolLit(False)
        if isinstance(right, BoolLit):
            return left if right.value else BoolLit(False)
        if left == right:
            return left
    elif op == "||":
        if isinstance(left, BoolLit):
            return BoolLit(True) if left.value else right
        if isinstance(right, BoolLit):
            return BoolLit(True) if right.value else left
        if left == right:
            return left
    elif op == "=>":
        if isinstance(left, BoolLit):
            return right if left.value else BoolLit(True)
        if isinstance(right, BoolLit) and right.value:
            return BoolLit(True)
    elif op == "<=>":
        if isinstance(left, BoolLit):
            return right if left.value else _simplify_node(UnOp("!", right))
        if isinstance(right, BoolLit):
            return left if right.value else _simplify_node(UnOp("!", left))
        if left == right:
            return BoolLit(True)

    if isinstance(left, IntLit) and isinstance(right, IntLit):
        folded = _fold_int(op, left.value, right.value)
        if folded is not None:
            return folded

    if isinstance(left, StrLit) and isinstance(right, StrLit):
        if op == "=":
            return BoolLit(left.value == right.value)
        if op == "!=":
            return BoolLit(left.value != right.value)

    if op in ("=", "<=", ">=") and left == right:
        return BoolLit(True)
    if op in ("!=", "<", ">") and left == right and not _has_effects(left):
        return BoolLit(False)

    if op == "+" and isinstance(right, IntLit) and right.value == 0:
        return left
    if op == "+" and isinstance(left, IntLit) and left.value == 0:
        return right
    if op == "-" and isinstance(right, IntLit) and right.value == 0:
        return left
    if op == "*" and isinstance(right, IntLit) and right.value == 1:
        return left
    if op == "*" and isinstance(left, IntLit) and left.value == 1:
        return right

    return e


def _has_effects(e: Expr) -> bool:
    # Logical terms never have effects; kept for clarity/extension.
    return False


def _fold_int(op: str, a: int, b: int) -> Expr | None:
    if op == "+":
        return IntLit(a + b)
    if op == "-":
        return IntLit(a - b)
    if op == "*":
        return IntLit(a * b)
    if op == "/" and b != 0:
        return IntLit(int(a / b))
    if op == "%" and b != 0:
        return IntLit(a % b)
    if op == "&":
        return IntLit(a & b)
    if op == "|":
        return IntLit(a | b)
    if op == "=":
        return BoolLit(a == b)
    if op == "!=":
        return BoolLit(a != b)
    if op == "<":
        return BoolLit(a < b)
    if op == "<=":
        return BoolLit(a <= b)
    if op == ">":
        return BoolLit(a > b)
    if op == ">=":
        return BoolLit(a >= b)
    return None
