"""Light-weight syntactic simplification of logical expressions.

The simplifier is used before formulas are handed to the SMT layer and by the
liquid fixpoint solver to keep intermediate predicates small.  It performs
constant folding, boolean unit laws and a handful of arithmetic identities; it
never changes the meaning of a formula.

Integer constant folding is *exact* (arbitrary-precision) and uses one
documented convention throughout: ``/`` is truncating division (round toward
zero, as in C and in JavaScript's ``Math.trunc(a / b)``) and ``%`` is the
matching remainder, so ``a == b * (a / b) + a % b`` holds for every folded
pair and the remainder takes the sign of the dividend.  The theory solver in
``smt/lia.py`` treats both operators as opaque, so the fold only has to agree
with itself — but it must never lose precision, which the previous
float-based ``int(a / b)`` did above 2**53 (and overflowed outright on huge
literals).

``simplify`` is iterative (no recursion limit on deep terms) and memoised per
interned term; the memo is cleared via
:func:`repro.logic.terms.clear_memos`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.logic.terms import (
    BinOp,
    BoolLit,
    Expr,
    IntLit,
    Ite,
    StrLit,
    UnOp,
    children,
    memoisation_enabled,
    rebuild,
)

#: term -> simplified term, keyed by interned node.  Cleared by
#: :func:`repro.logic.terms.clear_memos` (wired into ``Solver.clear_cache``).
_SIMPLIFY_MEMO: Dict[Expr, Expr] = {}


def _clear_local_memos() -> None:
    _SIMPLIFY_MEMO.clear()


def simplify(e: Expr) -> Expr:
    """Simplify ``e`` bottom-up (iteratively; results memoised per term)."""
    memo = _SIMPLIFY_MEMO if memoisation_enabled() else {}
    hit = memo.get(e)
    if hit is not None:
        return hit
    stack: List[Tuple[Expr, bool]] = [(e, False)]
    while stack:
        node, ready = stack.pop()
        if ready:
            kids = children(node)
            new_kids = [memo[c] for c in kids]
            if any(nk is not k for nk, k in zip(new_kids, kids)):
                node2 = rebuild(node, new_kids)
            else:
                node2 = node
            memo[node] = _simplify_node(node2)
            continue
        if node in memo:
            continue
        kids = children(node)
        if not kids:
            memo[node] = _simplify_node(node)
            continue
        stack.append((node, True))
        for c in kids:
            if c not in memo:
                stack.append((c, False))
    return memo[e]


def _simplify_node(e: Expr) -> Expr:
    if isinstance(e, UnOp):
        return _simplify_unop(e)
    if isinstance(e, BinOp):
        return _simplify_binop(e)
    if isinstance(e, Ite):
        if isinstance(e.cond, BoolLit):
            return e.then if e.cond.value else e.els
        if e.then == e.els:
            return e.then
    return e


def _simplify_unop(e: UnOp) -> Expr:
    if e.op == "!":
        if isinstance(e.operand, BoolLit):
            return BoolLit(not e.operand.value)
        if isinstance(e.operand, UnOp) and e.operand.op == "!":
            return e.operand.operand
    if e.op == "-" and isinstance(e.operand, IntLit):
        return IntLit(-e.operand.value)
    return e


def _simplify_binop(e: BinOp) -> Expr:  # noqa: C901 - a dispatch table in disguise
    left, right = e.left, e.right
    op = e.op

    if op == "&&":
        if isinstance(left, BoolLit):
            return right if left.value else BoolLit(False)
        if isinstance(right, BoolLit):
            return left if right.value else BoolLit(False)
        if left == right:
            return left
    elif op == "||":
        if isinstance(left, BoolLit):
            return BoolLit(True) if left.value else right
        if isinstance(right, BoolLit):
            return BoolLit(True) if right.value else left
        if left == right:
            return left
    elif op == "=>":
        if isinstance(left, BoolLit):
            return right if left.value else BoolLit(True)
        if isinstance(right, BoolLit) and right.value:
            return BoolLit(True)
    elif op == "<=>":
        if isinstance(left, BoolLit):
            return right if left.value else _simplify_node(UnOp("!", right))
        if isinstance(right, BoolLit):
            return left if right.value else _simplify_node(UnOp("!", left))
        if left == right:
            return BoolLit(True)

    if isinstance(left, IntLit) and isinstance(right, IntLit):
        folded = _fold_int(op, left.value, right.value)
        if folded is not None:
            return folded

    if isinstance(left, StrLit) and isinstance(right, StrLit):
        if op == "=":
            return BoolLit(left.value == right.value)
        if op == "!=":
            return BoolLit(left.value != right.value)

    if op in ("=", "<=", ">=") and left == right:
        return BoolLit(True)
    if op in ("!=", "<", ">") and left == right and not _has_effects(left):
        return BoolLit(False)

    if op == "+" and isinstance(right, IntLit) and right.value == 0:
        return left
    if op == "+" and isinstance(left, IntLit) and left.value == 0:
        return right
    if op == "-" and isinstance(right, IntLit) and right.value == 0:
        return left
    if op == "*" and isinstance(right, IntLit) and right.value == 1:
        return left
    if op == "*" and isinstance(left, IntLit) and left.value == 1:
        return right

    return e


def _has_effects(e: Expr) -> bool:
    # Logical terms never have effects; kept for clarity/extension.
    return False


def _fold_int(op: str, a: int, b: int) -> Expr | None:
    """Fold a binary operation over integer literals, exactly.

    Division and remainder use *truncating* semantics (round toward zero),
    computed with integer arithmetic only — Python's ``//``/``%`` floor
    toward negative infinity, so both are corrected when exactly one operand
    is negative.  The pair satisfies ``a == b * trunc_div + trunc_rem`` with
    the remainder carrying the dividend's sign: ``-7 / 2 == -3``,
    ``-7 % 2 == -1``, ``7 / -2 == -3``, ``7 % -2 == 1``.
    """
    if op == "+":
        return IntLit(a + b)
    if op == "-":
        return IntLit(a - b)
    if op == "*":
        return IntLit(a * b)
    if op == "/" and b != 0:
        q = a // b
        if a % b != 0 and (a < 0) != (b < 0):
            q += 1
        return IntLit(q)
    if op == "%" and b != 0:
        r = a % b
        if r != 0 and (a < 0) != (b < 0):
            r -= b
        return IntLit(r)
    if op == "&":
        return IntLit(a & b)
    if op == "|":
        return IntLit(a | b)
    if op == "=":
        return BoolLit(a == b)
    if op == "!=":
        return BoolLit(a != b)
    if op == "<":
        return BoolLit(a < b)
    if op == "<=":
        return BoolLit(a <= b)
    if op == ">":
        return BoolLit(a > b)
    if op == ">=":
        return BoolLit(a >= b)
    return None
