"""Builtin uninterpreted functions of the refinement logic.

The paper's measure/uninterpreted functions:

* ``len(a)``      — the length of an array (section 2: "len is an uninterpreted
                    function that describes the size of the array a").
* ``ttag(x)``     — the runtime type tag of a value (section 4.2, reflection).
* ``impl(x, I)``  — "x implements interface I" (section 4.3, hierarchies).
* ``mask(v, m)``  — bit-mask test ``(v & m) != 0`` (section 4.3); the SMT layer
                    expands it to the bit-vector formula.
* ``instanceof(x, C)`` — class-membership predicate used by class invariants.
"""

from __future__ import annotations

from repro.logic.sorts import BOOL, INT, STR, Sort
from repro.logic.terms import App, Expr, app

LEN = "len"
TTAG = "ttag"
IMPL = "impl"
MASK = "mask"
INSTANCEOF = "instanceof"
FIELD_PREFIX = "fld$"

#: Result sorts of the builtin uninterpreted functions.
BUILTIN_SORTS: dict[str, Sort] = {
    LEN: INT,
    TTAG: STR,
    IMPL: BOOL,
    MASK: BOOL,
    INSTANCEOF: BOOL,
}

#: The type tags produced by ``typeof`` in the source language.
TYPE_TAGS = ("number", "string", "boolean", "object", "function", "undefined")


def len_of(a: Expr) -> App:
    """``len(a)`` — length of array ``a``."""
    return app(LEN, a, sort=INT)


def ttag_of(x: Expr) -> App:
    """``ttag(x)`` — the ``typeof`` tag of ``x``."""
    return app(TTAG, x, sort=STR)


def impl_of(x: Expr, iface: Expr) -> App:
    """``impl(x, I)`` — ``x`` implements interface named by ``I``."""
    return app(IMPL, x, iface, sort=BOOL)


def mask_of(v: Expr, m: Expr) -> App:
    """``mask(v, m)`` — ``(v & m) != 0`` over 32-bit bit-vectors."""
    return app(MASK, v, m, sort=BOOL)


def instanceof_of(x: Expr, cls: Expr) -> App:
    """``instanceof(x, C)`` — ``x`` is an instance of class ``C``."""
    return app(INSTANCEOF, x, cls, sort=BOOL)


def field_fn(name: str) -> str:
    """The uninterpreted-function name used for immutable field ``name``."""
    return FIELD_PREFIX + name


def is_builtin(fn: str) -> bool:
    return fn in BUILTIN_SORTS or fn.startswith(FIELD_PREFIX)


def result_sort(fn: str) -> Sort:
    if fn in BUILTIN_SORTS:
        return BUILTIN_SORTS[fn]
    return INT
