"""Terms and predicates of the refinement logic.

Expressions are immutable (frozen dataclasses) so they can be hashed, shared
and used as dictionary keys by the SMT layer and the liquid fixpoint solver.

The special variables ``nu`` (the refined value, written ``v`` in source
syntax) and ``this`` (the receiver object) are ordinary :class:`Var` nodes
with reserved names; helpers :data:`VALUE_VAR` and :data:`THIS_VAR` construct
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Mapping, Sequence, Tuple, Union

from repro.logic.sorts import ANY, BOOL, INT, STR, Sort

# ---------------------------------------------------------------------------
# Expression nodes
# ---------------------------------------------------------------------------


class Expr:
    """Base class of all logical expressions."""

    sort: Sort

    # The subclasses are frozen dataclasses; Expr itself carries no state.

    def is_true(self) -> bool:
        return isinstance(self, BoolLit) and self.value is True

    def is_false(self) -> bool:
        return isinstance(self, BoolLit) and self.value is False

    def __and__(self, other: "Expr") -> "Expr":
        return conj(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return disj(self, other)

    def __invert__(self) -> "Expr":
        return neg(self)


@dataclass(frozen=True)
class Var(Expr):
    """A logical variable (program variable, nu, this, or a kappa argument)."""

    name: str
    sort: Sort = ANY

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntLit(Expr):
    value: int
    sort: Sort = INT

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool
    sort: Sort = BOOL

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class StrLit(Expr):
    value: str
    sort: Sort = STR

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class App(Expr):
    """Application of an uninterpreted function, e.g. ``len(a)``, ``ttag(x)``."""

    fn: str
    args: Tuple[Expr, ...]
    sort: Sort = INT

    def __str__(self) -> str:
        return f"{self.fn}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Field(Expr):
    """Field access ``t.f`` on an object term (an uninterpreted selector)."""

    target: Expr
    name: str
    sort: Sort = ANY

    def __str__(self) -> str:
        return f"{self.target}.{self.name}"


# Binary operators recognised by the logic. Arithmetic, comparison, boolean
# connectives and the two bit-vector operators the tsc benchmark requires.
ARITH_OPS = ("+", "-", "*", "/", "%")
CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")
BOOL_OPS = ("&&", "||", "=>", "<=>")
BV_OPS = ("&", "|")
ALL_BINOPS = ARITH_OPS + CMP_OPS + BOOL_OPS + BV_OPS


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr
    sort: Sort = ANY

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(Expr):
    op: str  # "!" or "-"
    operand: Expr
    sort: Sort = ANY

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass(frozen=True)
class Ite(Expr):
    """If-then-else term."""

    cond: Expr
    then: Expr
    els: Expr
    sort: Sort = ANY

    def __str__(self) -> str:
        return f"(if {self.cond} then {self.then} else {self.els})"


# ---------------------------------------------------------------------------
# Reserved variables
# ---------------------------------------------------------------------------

VALUE_NAME = "v"
THIS_NAME = "this"

VALUE_VAR = Var(VALUE_NAME)
THIS_VAR = Var(THIS_NAME)


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def var(name: str, sort: Sort = ANY) -> Var:
    return Var(name, sort)


def lit(value: Union[int, bool, str]) -> Expr:
    if isinstance(value, bool):
        return BoolLit(value)
    if isinstance(value, int):
        return IntLit(value)
    if isinstance(value, str):
        return StrLit(value)
    raise TypeError(f"cannot build a literal from {value!r}")


def true() -> BoolLit:
    return BoolLit(True)


def false() -> BoolLit:
    return BoolLit(False)


def conj(*ps: Expr) -> Expr:
    """Conjunction, flattening nested ANDs and dropping ``true`` units."""
    parts: list[Expr] = []
    for p in ps:
        if p is None or p.is_true():
            continue
        if isinstance(p, BinOp) and p.op == "&&":
            parts.extend(_flatten(p, "&&"))
        else:
            parts.append(p)
    if not parts:
        return true()
    if any(p.is_false() for p in parts):
        return false()
    result = parts[0]
    for p in parts[1:]:
        result = BinOp("&&", result, p, BOOL)
    return result


def disj(*ps: Expr) -> Expr:
    parts: list[Expr] = []
    for p in ps:
        if p is None or p.is_false():
            continue
        if isinstance(p, BinOp) and p.op == "||":
            parts.extend(_flatten(p, "||"))
        else:
            parts.append(p)
    if not parts:
        return false()
    if any(p.is_true() for p in parts):
        return true()
    result = parts[0]
    for p in parts[1:]:
        result = BinOp("||", result, p, BOOL)
    return result


def _flatten(e: Expr, op: str) -> list[Expr]:
    if isinstance(e, BinOp) and e.op == op:
        return _flatten(e.left, op) + _flatten(e.right, op)
    return [e]


def conjuncts(e: Expr) -> list[Expr]:
    """Split a conjunction into its conjuncts (dropping literal ``true``)."""
    parts = _flatten(e, "&&")
    return [p for p in parts if not p.is_true()]


def neg(p: Expr) -> Expr:
    if isinstance(p, BoolLit):
        return BoolLit(not p.value)
    if isinstance(p, UnOp) and p.op == "!":
        return p.operand
    return UnOp("!", p, BOOL)


def implies(p: Expr, q: Expr) -> Expr:
    if p.is_true():
        return q
    if p.is_false() or q.is_true():
        return true()
    return BinOp("=>", p, q, BOOL)


def iff(p: Expr, q: Expr) -> Expr:
    return BinOp("<=>", p, q, BOOL)


def eq(a: Expr, b: Expr) -> Expr:
    return BinOp("=", a, b, BOOL)


def ne(a: Expr, b: Expr) -> Expr:
    return BinOp("!=", a, b, BOOL)


def lt(a: Expr, b: Expr) -> Expr:
    return BinOp("<", a, b, BOOL)


def le(a: Expr, b: Expr) -> Expr:
    return BinOp("<=", a, b, BOOL)


def gt(a: Expr, b: Expr) -> Expr:
    return BinOp(">", a, b, BOOL)


def ge(a: Expr, b: Expr) -> Expr:
    return BinOp(">=", a, b, BOOL)


def plus(a: Expr, b: Expr) -> Expr:
    return BinOp("+", a, b, INT)


def minus(a: Expr, b: Expr) -> Expr:
    return BinOp("-", a, b, INT)


def times(a: Expr, b: Expr) -> Expr:
    return BinOp("*", a, b, INT)


def app(fn: str, *args: Expr, sort: Sort = INT) -> App:
    return App(fn, tuple(args), sort)


# ---------------------------------------------------------------------------
# Traversal utilities
# ---------------------------------------------------------------------------


def children(e: Expr) -> Tuple[Expr, ...]:
    if isinstance(e, App):
        return e.args
    if isinstance(e, Field):
        return (e.target,)
    if isinstance(e, BinOp):
        return (e.left, e.right)
    if isinstance(e, UnOp):
        return (e.operand,)
    if isinstance(e, Ite):
        return (e.cond, e.then, e.els)
    return ()


def rebuild(e: Expr, new_children: Sequence[Expr]) -> Expr:
    if isinstance(e, App):
        return App(e.fn, tuple(new_children), e.sort)
    if isinstance(e, Field):
        return Field(new_children[0], e.name, e.sort)
    if isinstance(e, BinOp):
        return BinOp(e.op, new_children[0], new_children[1], e.sort)
    if isinstance(e, UnOp):
        return UnOp(e.op, new_children[0], e.sort)
    if isinstance(e, Ite):
        return Ite(new_children[0], new_children[1], new_children[2], e.sort)
    return e


def free_vars(e: Expr) -> FrozenSet[str]:
    """The set of variable names occurring in ``e``."""
    if isinstance(e, Var):
        return frozenset({e.name})
    out: set[str] = set()
    for c in children(e):
        out |= free_vars(c)
    return frozenset(out)


def subterms(e: Expr) -> Iterable[Expr]:
    """All subterms of ``e`` (including ``e`` itself), pre-order."""
    yield e
    for c in children(e):
        yield from subterms(c)


def substitute(e: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Capture-free substitution of variables by terms (no binders in Expr)."""
    if not mapping:
        return e
    if isinstance(e, Var):
        return mapping.get(e.name, e)
    kids = children(e)
    if not kids:
        return e
    new_kids = [substitute(c, mapping) for c in kids]
    if all(nk is k for nk, k in zip(new_kids, kids)):
        return e
    return rebuild(e, new_kids)


def subst_term(e: Expr, old: Expr, new: Expr) -> Expr:
    """Replace every occurrence of the subterm ``old`` by ``new``."""
    if e == old:
        return new
    kids = children(e)
    if not kids:
        return e
    new_kids = [subst_term(c, old, new) for c in kids]
    if all(nk is k for nk, k in zip(new_kids, kids)):
        return e
    return rebuild(e, new_kids)


def expr_size(e: Expr) -> int:
    """Number of AST nodes — used by tests and the fixpoint solver heuristics."""
    return 1 + sum(expr_size(c) for c in children(e))
