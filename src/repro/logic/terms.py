"""Terms and predicates of the refinement logic.

Expressions are immutable (frozen dataclasses) so they can be hashed, shared
and used as dictionary keys by the SMT layer and the liquid fixpoint solver.

Every node is *hash-consed*: the constructors intern each distinct
``(class, field values)`` combination in a process-wide table, so

* structurally equal terms are the **same object** (``conj(a, b) is
  conj(a, b)``), making ``==`` a pointer comparison on the hot paths,
* ``hash()`` is O(1) — computed once at interning time and cached, which
  matters because terms key the solver's result cache, the Tseitin atom
  maps and the persistent-context LRU, and
* the traversal utilities (:func:`free_vars`, :func:`substitute`,
  :func:`expr_size`, :func:`repro.logic.simplify.simplify`, the CNF
  conversion) can memoise per term in plain dictionaries.

The traversal memos are per-process caches with an explicit
:func:`clear_memos` (wired into :meth:`repro.smt.solver.Solver.clear_cache`);
the intern table itself is never cleared — dropping it would break the
pointer-equality invariant between terms created before and after the drop.
All traversals are iterative: a program with thousands of conjuncts must
produce a verdict, not a ``RecursionError``.

The special variables ``nu`` (the refined value, written ``v`` in source
syntax) and ``this`` (the receiver object) are ordinary :class:`Var` nodes
with reserved names; helpers :data:`VALUE_VAR` and :data:`THIS_VAR` construct
them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, \
    Sequence, Tuple, Union

from repro.logic.sorts import ANY, BOOL, INT, STR, Sort

# ---------------------------------------------------------------------------
# hash-consing machinery
# ---------------------------------------------------------------------------

#: The process-wide intern table: ``(class, *field values) -> node``.
#: Interned nodes are immortal (the table holds the only strong reference a
#: term needs), so the memo tables below may key on them safely.
_INTERN: Dict[tuple, "Expr"] = {}

#: ``[hits, misses]`` — constructor calls served from the table vs. nodes
#: actually allocated.  ``hits + misses`` is the number of term
#: constructions *requested*; ``misses`` is the number of allocations.
#: (Plain list indexing keeps the hot path free of ``global`` rebinds; the
#: counters are statistics, not synchronisation.)
_INTERN_STATS = [0, 0]


def intern_stats() -> dict:
    """Interning counters for the speed bench: hits, misses (allocations),
    the derived hit rate, and the live table size."""
    hits, misses = _INTERN_STATS
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "constructions": total,
        "hit_rate": (hits / total) if total else 0.0,
        "live_terms": len(_INTERN),
    }


def reset_intern_stats() -> None:
    _INTERN_STATS[0] = 0
    _INTERN_STATS[1] = 0


#: Memoisation switch for the traversal caches (the intern table is not
#: affected).  The speed bench flips this off to measure the memo layer's
#: contribution; everything still computes identical results, just without
#: cross-call reuse.
_MEMO_ON = [True]

_FREE_VARS_MEMO: Dict["Expr", FrozenSet[str]] = {}
_EXPR_SIZE_MEMO: Dict["Expr", int] = {}
_SUBST_MEMO: Dict[tuple, "Expr"] = {}


def set_memoisation(enabled: bool) -> None:
    """Enable/disable the traversal memo tables (bench instrumentation).

    Disabling also drops the current tables so a later re-enable starts
    cold; interning is unaffected either way.
    """
    _MEMO_ON[0] = bool(enabled)
    clear_memos()


def memoisation_enabled() -> bool:
    return _MEMO_ON[0]


def clear_memos() -> None:
    """Drop the traversal memo tables (results recompute identically).

    Wired into :meth:`repro.smt.solver.Solver.clear_cache` so the explicit
    cache-reset entry points (workspace/session) bound memo growth together
    with the solver's own query cache.  The intern table is deliberately
    *not* cleared — see the module docstring.
    """
    _FREE_VARS_MEMO.clear()
    _EXPR_SIZE_MEMO.clear()
    _SUBST_MEMO.clear()
    # simplify/CNF keep their own tables next to their implementations.
    # (importlib: ``repro.logic`` re-exports the ``simplify`` *function*,
    # which would shadow the module under a plain ``from ... import``.)
    import importlib
    importlib.import_module("repro.logic.simplify")._clear_local_memos()
    for mod_name in ("repro.smt.cnf", "repro.smt.theory"):
        try:
            mod = importlib.import_module(mod_name)
        except ImportError:  # pragma: no cover - smt layer absent
            continue
        mod._clear_local_memos()


def _interned(cls):
    """Class decorator: freeze the dataclass and intern every construction.

    The wrapped ``__new__`` normalises the constructor arguments against the
    field defaults, looks the value tuple up in the process-wide table and
    returns the canonical instance; ``__init__`` is skipped for instances
    that are already initialised.  ``dict.get``/``dict.setdefault`` keep the
    table consistent under free-threaded construction (the fixpoint's rank
    workers build terms concurrently).
    """
    cls = dataclass(frozen=True)(cls)
    field_names = tuple(f.name for f in dataclasses.fields(cls))
    defaults = {f.name: f.default for f in dataclasses.fields(cls)
                if f.default is not dataclasses.MISSING}
    arity = len(field_names)
    orig_init = cls.__init__

    def __new__(klass, *args, **kwargs):
        if kwargs or len(args) != arity:
            vals = list(args)
            for name in field_names[len(args):]:
                if name in kwargs:
                    vals.append(kwargs[name])
                elif name in defaults:
                    vals.append(defaults[name])
                else:
                    raise TypeError(
                        f"{klass.__name__}() missing required argument: "
                        f"{name!r}")
            key = (klass, *vals)
        else:
            key = (klass, *args)
        node = _INTERN.get(key)
        if node is not None:
            _INTERN_STATS[0] += 1
            return node
        _INTERN_STATS[1] += 1
        created = object.__new__(klass)
        created.__dict__["_hash"] = hash(key)
        return _INTERN.setdefault(key, created)

    def __init__(self, *args, **kwargs):
        # Re-running the (frozen) field assignments on an interned instance
        # would be harmless — the values are identical by construction — but
        # the skip keeps repeat constructions at one dict probe.
        if "_dc_init" in self.__dict__:
            return
        orig_init(self, *args, **kwargs)
        self.__dict__["_dc_init"] = True

    def __eq__(self, other):
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        # Only reachable for out-of-band instances (never produced by the
        # constructors); interned nodes compare by the identity fast path.
        return all(getattr(self, name) == getattr(other, name)
                   for name in field_names)

    def __ne__(self, other):
        result = __eq__(self, other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self):
        h = self.__dict__.get("_hash")
        if h is None:  # out-of-band instance (e.g. object.__new__)
            h = hash((self.__class__,
                      *(getattr(self, name) for name in field_names)))
            self.__dict__["_hash"] = h
        return h

    def __reduce__(self):
        # Pickle as a constructor call so cross-process terms (the project
        # scheduler ships kappa solutions through a ProcessPoolExecutor)
        # re-intern on load: unpickling preserves pointer equality.
        return (self.__class__,
                tuple(getattr(self, name) for name in field_names))

    cls.__new__ = __new__
    cls.__init__ = __init__
    cls.__eq__ = __eq__
    cls.__ne__ = __ne__
    cls.__hash__ = __hash__
    cls.__reduce__ = __reduce__
    return cls


def interned_count() -> int:
    """Number of distinct live terms in the intern table."""
    return len(_INTERN)


# ---------------------------------------------------------------------------
# Expression nodes
# ---------------------------------------------------------------------------


class Expr:
    """Base class of all logical expressions."""

    sort: Sort

    # The subclasses are frozen, interned dataclasses; Expr itself carries
    # no state.

    def is_true(self) -> bool:
        return isinstance(self, BoolLit) and self.value is True

    def is_false(self) -> bool:
        return isinstance(self, BoolLit) and self.value is False

    def __and__(self, other: "Expr") -> "Expr":
        return conj(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return disj(self, other)

    def __invert__(self) -> "Expr":
        return neg(self)

    def __str__(self) -> str:
        return _render(self)


@_interned
class Var(Expr):
    """A logical variable (program variable, nu, this, or a kappa argument)."""

    name: str
    sort: Sort = ANY


@_interned
class IntLit(Expr):
    value: int
    sort: Sort = INT


@_interned
class BoolLit(Expr):
    value: bool
    sort: Sort = BOOL


@_interned
class StrLit(Expr):
    value: str
    sort: Sort = STR


@_interned
class App(Expr):
    """Application of an uninterpreted function, e.g. ``len(a)``, ``ttag(x)``."""

    fn: str
    args: Tuple[Expr, ...]
    sort: Sort = INT


@_interned
class Field(Expr):
    """Field access ``t.f`` on an object term (an uninterpreted selector)."""

    target: Expr
    name: str
    sort: Sort = ANY


# Binary operators recognised by the logic. Arithmetic, comparison, boolean
# connectives and the two bit-vector operators the tsc benchmark requires.
ARITH_OPS = ("+", "-", "*", "/", "%")
CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")
BOOL_OPS = ("&&", "||", "=>", "<=>")
BV_OPS = ("&", "|")
ALL_BINOPS = ARITH_OPS + CMP_OPS + BOOL_OPS + BV_OPS


@_interned
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr
    sort: Sort = ANY


@_interned
class UnOp(Expr):
    op: str  # "!" or "-"
    operand: Expr
    sort: Sort = ANY


@_interned
class Ite(Expr):
    """If-then-else term."""

    cond: Expr
    then: Expr
    els: Expr
    sort: Sort = ANY


def _render(e: Expr) -> str:
    """Iterative renderer shared by every ``__str__`` (recursion-free, so a
    diagnostic may print a deeply nested term without blowing the stack).
    Byte-identical to the historical per-class formatting."""
    parts: List[str] = []
    stack: List[Union[str, Expr]] = [e]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            parts.append(item)
        elif isinstance(item, Var):
            parts.append(item.name)
        elif isinstance(item, IntLit):
            parts.append(str(item.value))
        elif isinstance(item, BoolLit):
            parts.append("true" if item.value else "false")
        elif isinstance(item, StrLit):
            parts.append(repr(item.value))
        elif isinstance(item, App):
            stack.append(")")
            for index in range(len(item.args) - 1, -1, -1):
                stack.append(item.args[index])
                if index:
                    stack.append(", ")
            parts.append(f"{item.fn}(")
        elif isinstance(item, Field):
            stack.append(f".{item.name}")
            stack.append(item.target)
        elif isinstance(item, BinOp):
            stack.extend((")", item.right, f" {item.op} ", item.left, "("))
        elif isinstance(item, UnOp):
            stack.append(item.operand)
            parts.append(item.op)
        elif isinstance(item, Ite):
            stack.extend((")", item.els, " else ", item.then, " then ",
                          item.cond, "(if "))
        else:  # pragma: no cover - unknown node
            parts.append(repr(item))
    return "".join(parts)


# ---------------------------------------------------------------------------
# Reserved variables
# ---------------------------------------------------------------------------

VALUE_NAME = "v"
THIS_NAME = "this"

VALUE_VAR = Var(VALUE_NAME)
THIS_VAR = Var(THIS_NAME)


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def var(name: str, sort: Sort = ANY) -> Var:
    return Var(name, sort)


def lit(value: Union[int, bool, str]) -> Expr:
    if isinstance(value, bool):
        return BoolLit(value)
    if isinstance(value, int):
        return IntLit(value)
    if isinstance(value, str):
        return StrLit(value)
    raise TypeError(f"cannot build a literal from {value!r}")


def true() -> BoolLit:
    return BoolLit(True)


def false() -> BoolLit:
    return BoolLit(False)


def conj(*ps: Expr) -> Expr:
    """Conjunction, flattening nested ANDs and dropping ``true`` units."""
    parts: list[Expr] = []
    for p in ps:
        if p is None or p.is_true():
            continue
        if isinstance(p, BinOp) and p.op == "&&":
            parts.extend(_flatten(p, "&&"))
        else:
            parts.append(p)
    if not parts:
        return true()
    if any(p.is_false() for p in parts):
        return false()
    result = parts[0]
    for p in parts[1:]:
        result = BinOp("&&", result, p, BOOL)
    return result


def disj(*ps: Expr) -> Expr:
    parts: list[Expr] = []
    for p in ps:
        if p is None or p.is_false():
            continue
        if isinstance(p, BinOp) and p.op == "||":
            parts.extend(_flatten(p, "||"))
        else:
            parts.append(p)
    if not parts:
        return false()
    if any(p.is_true() for p in parts):
        return true()
    result = parts[0]
    for p in parts[1:]:
        result = BinOp("||", result, p, BOOL)
    return result


def _flatten(e: Expr, op: str) -> list[Expr]:
    """Left-to-right leaves of an ``op`` spine, iteratively (the spine of a
    ``conj`` over thousands of parts is as deep as the part count)."""
    out: list[Expr] = []
    stack: list[Expr] = [e]
    while stack:
        node = stack.pop()
        if isinstance(node, BinOp) and node.op == op:
            stack.append(node.right)
            stack.append(node.left)
        else:
            out.append(node)
    return out


def conjuncts(e: Expr) -> list[Expr]:
    """Split a conjunction into its conjuncts (dropping literal ``true``)."""
    parts = _flatten(e, "&&")
    return [p for p in parts if not p.is_true()]


def neg(p: Expr) -> Expr:
    if isinstance(p, BoolLit):
        return BoolLit(not p.value)
    if isinstance(p, UnOp) and p.op == "!":
        return p.operand
    return UnOp("!", p, BOOL)


def implies(p: Expr, q: Expr) -> Expr:
    if p.is_true():
        return q
    if p.is_false() or q.is_true():
        return true()
    return BinOp("=>", p, q, BOOL)


def iff(p: Expr, q: Expr) -> Expr:
    return BinOp("<=>", p, q, BOOL)


def eq(a: Expr, b: Expr) -> Expr:
    return BinOp("=", a, b, BOOL)


def ne(a: Expr, b: Expr) -> Expr:
    return BinOp("!=", a, b, BOOL)


def lt(a: Expr, b: Expr) -> Expr:
    return BinOp("<", a, b, BOOL)


def le(a: Expr, b: Expr) -> Expr:
    return BinOp("<=", a, b, BOOL)


def gt(a: Expr, b: Expr) -> Expr:
    return BinOp(">", a, b, BOOL)


def ge(a: Expr, b: Expr) -> Expr:
    return BinOp(">=", a, b, BOOL)


def plus(a: Expr, b: Expr) -> Expr:
    return BinOp("+", a, b, INT)


def minus(a: Expr, b: Expr) -> Expr:
    return BinOp("-", a, b, INT)


def times(a: Expr, b: Expr) -> Expr:
    return BinOp("*", a, b, INT)


def app(fn: str, *args: Expr, sort: Sort = INT) -> App:
    return App(fn, tuple(args), sort)


# ---------------------------------------------------------------------------
# Traversal utilities
# ---------------------------------------------------------------------------


def children(e: Expr) -> Tuple[Expr, ...]:
    if isinstance(e, App):
        return e.args
    if isinstance(e, Field):
        return (e.target,)
    if isinstance(e, BinOp):
        return (e.left, e.right)
    if isinstance(e, UnOp):
        return (e.operand,)
    if isinstance(e, Ite):
        return (e.cond, e.then, e.els)
    return ()


def rebuild(e: Expr, new_children: Sequence[Expr]) -> Expr:
    # With interning, rebuilding with identical children returns ``e``
    # itself, so callers' ``is``-based change detection keeps working.
    if isinstance(e, App):
        return App(e.fn, tuple(new_children), e.sort)
    if isinstance(e, Field):
        return Field(new_children[0], e.name, e.sort)
    if isinstance(e, BinOp):
        return BinOp(e.op, new_children[0], new_children[1], e.sort)
    if isinstance(e, UnOp):
        return UnOp(e.op, new_children[0], e.sort)
    if isinstance(e, Ite):
        return Ite(new_children[0], new_children[1], new_children[2], e.sort)
    return e


_EMPTY_NAMES: FrozenSet[str] = frozenset()


def free_vars(e: Expr) -> FrozenSet[str]:
    """The set of variable names occurring in ``e``.

    Iterative post-order with a per-term memo: interned subterms shared
    across formulas are computed once per process (until
    :func:`clear_memos`).
    """
    memo = _FREE_VARS_MEMO if _MEMO_ON[0] else {}
    hit = memo.get(e)
    if hit is not None:
        return hit
    stack: List[Tuple[Expr, bool]] = [(e, False)]
    while stack:
        node, ready = stack.pop()
        if ready:
            out: set = set()
            for c in children(node):
                out |= memo[c]
            memo[node] = frozenset(out) if out else _EMPTY_NAMES
            continue
        if node in memo:
            continue
        if isinstance(node, Var):
            memo[node] = frozenset((node.name,))
            continue
        kids = children(node)
        if not kids:
            memo[node] = _EMPTY_NAMES
            continue
        stack.append((node, True))
        for c in kids:
            if c not in memo:
                stack.append((c, False))
    return memo[e]


def subterms(e: Expr) -> Iterable[Expr]:
    """All subterms of ``e`` (including ``e`` itself), pre-order."""
    stack: List[Expr] = [e]
    while stack:
        node = stack.pop()
        yield node
        kids = children(node)
        for index in range(len(kids) - 1, -1, -1):
            stack.append(kids[index])


def substitute(e: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Capture-free substitution of variables by terms (no binders in Expr).

    Memoised on ``(term, mapping)`` — the fixpoint re-substitutes the same
    qualifier templates under the same occurrence substitutions every
    round.  Subterms not mentioning any substituted variable are returned
    as-is without descending (checked via the :func:`free_vars` memo).
    """
    if not mapping:
        return e
    if _MEMO_ON[0]:
        top_key = (e, *sorted(mapping.items()))
        hit = _SUBST_MEMO.get(top_key)
        if hit is not None:
            return hit
    else:
        top_key = None
    keys = frozenset(mapping)
    done: Dict[Expr, Expr] = {}
    stack: List[Tuple[Expr, bool]] = [(e, False)]
    while stack:
        node, ready = stack.pop()
        if ready:
            kids = children(node)
            new_kids = [done[c] for c in kids]
            if all(nk is k for nk, k in zip(new_kids, kids)):
                done[node] = node
            else:
                done[node] = rebuild(node, new_kids)
            continue
        if node in done:
            continue
        if isinstance(node, Var):
            done[node] = mapping.get(node.name, node)
            continue
        if free_vars(node).isdisjoint(keys):
            done[node] = node
            continue
        kids = children(node)
        if not kids:
            done[node] = node
            continue
        stack.append((node, True))
        for c in kids:
            if c not in done:
                stack.append((c, False))
    result = done[e]
    if top_key is not None:
        _SUBST_MEMO[top_key] = result
    return result


def subst_term(e: Expr, old: Expr, new: Expr) -> Expr:
    """Replace every occurrence of the subterm ``old`` by ``new``."""
    done: Dict[Expr, Expr] = {}
    stack: List[Tuple[Expr, bool]] = [(e, False)]
    while stack:
        node, ready = stack.pop()
        if ready:
            kids = children(node)
            new_kids = [done[c] for c in kids]
            if all(nk is k for nk, k in zip(new_kids, kids)):
                done[node] = node
            else:
                done[node] = rebuild(node, new_kids)
            continue
        if node in done:
            continue
        if node == old:
            done[node] = new
            continue
        kids = children(node)
        if not kids:
            done[node] = node
            continue
        stack.append((node, True))
        for c in kids:
            if c not in done:
                stack.append((c, False))
    return done[e]


def expr_size(e: Expr) -> int:
    """Number of AST nodes — used by tests and the fixpoint solver heuristics."""
    memo = _EXPR_SIZE_MEMO if _MEMO_ON[0] else {}
    hit = memo.get(e)
    if hit is not None:
        return hit
    stack: List[Tuple[Expr, bool]] = [(e, False)]
    while stack:
        node, ready = stack.pop()
        if ready:
            memo[node] = 1 + sum(memo[c] for c in children(node))
            continue
        if node in memo:
            continue
        kids = children(node)
        if not kids:
            memo[node] = 1
            continue
        stack.append((node, True))
        for c in kids:
            if c not in memo:
                stack.append((c, False))
    return memo[e]
