"""The refinement logic: sorts, terms, predicates, substitution and embedding.

This package implements the predicate language of the paper (section 3.2):

    p ::= p1 /\\ p2 | ~p | t
    t ::= x | c | nu | this | t.f | f(t...) | b(t...)

In the implementation predicates and terms share a single expression type
(:class:`repro.logic.terms.Expr`); predicates are simply expressions of sort
``BOOL``.
"""

from repro.logic.sorts import Sort, INT, BOOL, STR, BV32, REF, FUN, ANY
from repro.logic.terms import (
    Expr,
    Var,
    IntLit,
    BoolLit,
    StrLit,
    App,
    BinOp,
    UnOp,
    Ite,
    Field,
    VALUE_VAR,
    THIS_VAR,
    var,
    lit,
    true,
    false,
    conj,
    disj,
    neg,
    implies,
    iff,
    eq,
    ne,
    lt,
    le,
    gt,
    ge,
    plus,
    minus,
    times,
    app,
    free_vars,
    substitute,
    subst_term,
)
from repro.logic.simplify import simplify
from repro.logic import builtins

__all__ = [
    "Sort", "INT", "BOOL", "STR", "BV32", "REF", "FUN", "ANY",
    "Expr", "Var", "IntLit", "BoolLit", "StrLit", "App", "BinOp", "UnOp",
    "Ite", "Field", "VALUE_VAR", "THIS_VAR",
    "var", "lit", "true", "false", "conj", "disj", "neg", "implies", "iff",
    "eq", "ne", "lt", "le", "gt", "ge", "plus", "minus", "times", "app",
    "free_vars", "substitute", "subst_term", "simplify", "builtins",
]
