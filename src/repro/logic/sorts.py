"""Sorts (logical base types) used by the refinement logic and the SMT layer.

The decidable fragment RSC targets is quantifier-free formulas over:

* linear integer arithmetic (``INT``),
* booleans (``BOOL``),
* string literals compared only for (dis)equality (``STR``),
* 32-bit bit-vectors restricted to constant-mask tests (``BV32``),
* object references compared only for (dis)equality (``REF``), and
* uninterpreted functions over those sorts.

``ANY`` is the sort given to terms whose sort could not be resolved; the SMT
layer treats such terms as uninterpreted integers which keeps validity
checking sound (it only makes fewer formulas provable).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Sort:
    """A logical sort. Identity is by name."""

    name: str

    def __str__(self) -> str:
        return self.name

    def is_numeric(self) -> bool:
        return self.name in ("Int", "BV32")


INT = Sort("Int")
BOOL = Sort("Bool")
STR = Sort("Str")
BV32 = Sort("BV32")
REF = Sort("Ref")
FUN = Sort("Fun")
ANY = Sort("Any")

_BY_NAME = {s.name: s for s in (INT, BOOL, STR, BV32, REF, FUN, ANY)}


def sort_named(name: str) -> Sort:
    """Look up a sort by its name, defaulting to ``ANY`` for unknown names."""
    return _BY_NAME.get(name, ANY)


def lub(a: Sort, b: Sort) -> Sort:
    """Least upper bound of two sorts (used when joining branches)."""
    if a == b:
        return a
    if ANY in (a, b):
        return ANY
    if {a, b} == {INT, BV32}:
        return INT
    return ANY
