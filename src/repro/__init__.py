"""Refined TypeScript (RSC) - a reproduction of "Refinement Types for
TypeScript" (Vekris, Cosman, Jhala; PLDI 2016) in pure Python.

Session API (preferred — one solver amortised across runs)::

    from repro import CheckConfig, Session

    session = Session(CheckConfig(warnings_as_errors=True))
    result = session.check_source(source)
    batch = session.check_files(["a.rsc", "b.rsc"])

One-shot convenience wrappers::

    from repro import check_source
    result = check_source("function f(x: {v: number | 0 <= v}): number { return x; }")
    assert result.ok
"""

from repro.core.api import check_program, check_source
from repro.core.config import CheckConfig, SolverOptions
from repro.core.result import (BatchResult, CheckResult, SolveStats,
                               StageTimings)
from repro.core.session import Session
from repro.errors import ERROR_CATALOG, Diagnostic, explain_code

__version__ = "2.0.0"

__all__ = [
    "BatchResult",
    "CheckConfig",
    "CheckResult",
    "Diagnostic",
    "ERROR_CATALOG",
    "Session",
    "SolveStats",
    "SolverOptions",
    "StageTimings",
    "check_program",
    "check_source",
    "explain_code",
    "__version__",
]
