"""Refined TypeScript (RSC) - a reproduction of "Refinement Types for
TypeScript" (Vekris, Cosman, Jhala; PLDI 2016) in pure Python.

Top-level convenience re-exports::

    from repro import check_source
    result = check_source("function f(x: {v: number | 0 <= v}): number { return x; }")
    assert result.ok
"""

from repro.core.api import CheckResult, check_program, check_source

__version__ = "1.0.0"

__all__ = ["CheckResult", "check_program", "check_source", "__version__"]
