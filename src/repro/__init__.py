"""Refined TypeScript (RSC) - a reproduction of "Refinement Types for
TypeScript" (Vekris, Cosman, Jhala; PLDI 2016) in pure Python.

Workspace API (preferred — long-lived documents, incremental re-checks)::

    from repro import CheckConfig, Workspace

    ws = Workspace(CheckConfig())
    result = ws.open("a.rsc", source)      # cold check
    result = ws.update("a.rsc", edited)    # warm re-check of the edit only

Session API (one-shot facade — one solver amortised across batch runs)::

    from repro import Session

    session = Session(CheckConfig(warnings_as_errors=True))
    result = session.check_source(source)
    batch = session.check_files(["a.rsc", "b.rsc"])

Project API (multi-module graphs: imports/exports, interface summaries,
topo-parallel build, signature-cut incremental re-checks)::

    from repro import ProjectWorkspace, Session

    project = Session().check_project("my-project", jobs=4)
    pw = ProjectWorkspace(root="my-project")
    pw.check()
    update = pw.update("my-project/lib.rsc")   # body edit -> 1 module

One-shot convenience wrappers (deprecated)::

    from repro import check_source
    result = check_source("function f(x: {v: number | 0 <= v}): number { return x; }")
    assert result.ok
"""

from repro.core.api import check_program, check_source
from repro.core.config import CheckConfig, SolverOptions
from repro.core.result import (BatchResult, CheckResult, SolveStats,
                               StageTimings)
from repro.core.session import Session
from repro.core.workspace import Workspace
from repro.errors import ERROR_CATALOG, Diagnostic, explain_code
from repro.project import (ProjectResult, ProjectUpdate, ProjectWorkspace,
                           check_project)

__version__ = "2.2.0"

__all__ = [
    "BatchResult",
    "CheckConfig",
    "CheckResult",
    "Diagnostic",
    "ERROR_CATALOG",
    "ProjectResult",
    "ProjectUpdate",
    "ProjectWorkspace",
    "Session",
    "SolveStats",
    "SolverOptions",
    "StageTimings",
    "Workspace",
    "check_program",
    "check_project",
    "check_source",
    "explain_code",
    "__version__",
]
