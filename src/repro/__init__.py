"""Refined TypeScript (RSC) - a reproduction of "Refinement Types for
TypeScript" (Vekris, Cosman, Jhala; PLDI 2016) in pure Python.

Workspace API (preferred — long-lived documents, incremental re-checks)::

    from repro import CheckConfig, Workspace

    ws = Workspace(CheckConfig())
    result = ws.open("a.rsc", source)      # cold check
    result = ws.update("a.rsc", edited)    # warm re-check of the edit only

Session API (one-shot facade — one solver amortised across batch runs)::

    from repro import Session

    session = Session(CheckConfig(warnings_as_errors=True))
    result = session.check_source(source)
    batch = session.check_files(["a.rsc", "b.rsc"])

Project API (multi-module graphs: imports/exports, interface summaries,
topo-parallel build, signature-cut incremental re-checks)::

    from repro import ProjectWorkspace, Session

    project = Session().check_project("my-project", jobs=4)
    pw = ProjectWorkspace(root="my-project")
    pw.check()
    update = pw.update("my-project/lib.rsc")   # body edit -> 1 module

Persistent artifact store (cross-process caching — interface summaries,
kappa solutions, SMT verdict memos; see :mod:`repro.store`)::

    from repro import CheckConfig, Session

    config = CheckConfig(store_path="/var/cache/repro")
    Session(config).check_file("a.rsc")    # cold: populates the store
    Session(config).check_file("a.rsc")    # fresh process: zero SMT queries

Check service (multi-tenant serve protocol v3; see :mod:`repro.service`
and :mod:`repro.client`)::

    from repro import Client

    client = Client.connect("127.0.0.1", 7345, tenant="alice")
    payload = client.check("a.rsc", source)     # typed CheckPayload
    client.update("a.rsc", edited)
    print(client.stats().tenants["alice"]["latency"]["p50_ms"])
"""

from repro.client import Client
from repro.core.cancel import CancelToken, CheckCancelled
from repro.core.config import CheckConfig, ServiceOptions, SolverOptions
from repro.core.result import (BatchResult, CheckResult, SolveStats,
                               StageTimings)
from repro.core.session import Session
from repro.core.workspace import Workspace
from repro.errors import ERROR_CATALOG, Diagnostic, explain_code
from repro.project import (ProjectResult, ProjectUpdate, ProjectWorkspace,
                           check_project)
from repro.store import ArtifactStore

__version__ = "3.0.0"

__all__ = [
    "ArtifactStore",
    "BatchResult",
    "CancelToken",
    "CheckCancelled",
    "CheckConfig",
    "CheckResult",
    "Client",
    "Diagnostic",
    "ERROR_CATALOG",
    "ServiceOptions",
    "ProjectResult",
    "ProjectUpdate",
    "ProjectWorkspace",
    "Session",
    "SolveStats",
    "SolverOptions",
    "StageTimings",
    "Workspace",
    "check_project",
    "explain_code",
    "__version__",
]
