"""Token definitions for the nanoTS lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import SourceSpan


class TokenKind(Enum):
    IDENT = "identifier"
    NUMBER = "number"
    STRING = "string"
    KEYWORD = "keyword"
    PUNCT = "punctuation"
    EOF = "eof"


KEYWORDS = frozenset({
    "function", "return", "var", "let", "const", "if", "else", "while", "for",
    "new", "class", "interface", "extends", "implements", "constructor",
    "this", "true", "false", "null", "undefined", "typeof", "instanceof",
    "type", "enum", "spec", "declare", "immutable", "mutable", "readonly",
    "public", "private", "break", "continue", "in", "of", "as", "invariant",
    "qualifier", "void", "number", "boolean", "string", "any",
})

# `import`, `export` and `from` are *contextual* keywords: they are lexed as
# plain identifiers (so `var from = 1;` keeps parsing, as in TypeScript) and
# only recognised by the parser in module-declaration position.

# Multi-character punctuation, longest first so the lexer matches greedily.
PUNCTUATION = (
    "===", "!==", "<=>", "=>", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "::", "(", ")", "{", "}", "[", "]", "<", ">", ",",
    ";", ":", ".", "?", "=", "+", "-", "*", "/", "%", "&", "|", "!", "@",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    span: SourceSpan
    value: object = None

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def is_ident(self, text: str | None = None) -> bool:
        if self.kind is not TokenKind.IDENT:
            return False
        return text is None or self.text == text

    def __str__(self) -> str:
        return f"{self.kind.value}({self.text!r})"
