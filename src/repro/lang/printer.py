"""Rendering nanoTS ASTs back to parseable source text.

The inverse of :mod:`repro.lang.parser`: ``render_program(parse_program(s))``
produces source that re-parses to a fingerprint-identical AST (asserted over
every benchmark port by the test-suite).  The printer exists for the project
subsystem — a :class:`repro.project.summary.ModuleSummary` is *rendered
source* (body-less signatures) injected into every importing module's
document, so the whole incremental workspace machinery (content hashing,
signature fingerprints, warm starts) applies to cross-module interfaces with
no extra plumbing — but it is generally useful for tooling and debugging.

Expressions are parenthesized conservatively: every binary/conditional
operand gets parentheses, which keeps the printer independent of the
precedence table at the cost of noisier output.  Spans are not preserved
(rendered text has its own layout); fingerprints are span-insensitive, so
round-trips compare equal where it matters.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast

__all__ = ["render_expr", "render_type", "render_decl", "render_program"]


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


def render_expr(expr: ast.Expression) -> str:
    if isinstance(expr, ast.NumberLit):
        return expr.raw or repr(expr.value)
    if isinstance(expr, ast.StringLit):
        return _quote(expr.value)
    if isinstance(expr, ast.BoolLitE):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.NullLit):
        return "null"
    if isinstance(expr, ast.UndefinedLit):
        return "undefined"
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.ThisRef):
        return "this"
    if isinstance(expr, ast.Unary):
        operand = render_expr(expr.operand)
        if expr.op == "typeof":
            return f"typeof ({operand})"
        return f"{expr.op}({operand})"
    if isinstance(expr, ast.Binary):
        # `=>`/`<=>` operands are parenthesized like every other binary:
        # implications only occur inside predicates, where the parser's
        # arrow-function lookahead is disabled, so `(p => q) => r` parses
        # as logic and left-nested implications round-trip exactly.
        return (f"({render_expr(expr.left)}) {expr.op} "
                f"({render_expr(expr.right)})")
    if isinstance(expr, ast.Conditional):
        # Branches are rendered without an added outer paren group: the
        # parser reads `... ? (x) : ...` as an arrow-function head.  The
        # grammar parses branches greedily, so no parens are needed.
        return (f"(({render_expr(expr.cond)}) ? {render_expr(expr.then)} "
                f": {render_expr(expr.els)})")
    if isinstance(expr, ast.Call):
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"{_render_postfix_target(expr.callee)}({args})"
    if isinstance(expr, ast.New):
        targs = _render_targs(expr.targs)
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"new {expr.class_name}{targs}({args})"
    if isinstance(expr, ast.Member):
        return f"{_render_postfix_target(expr.target)}.{expr.name}"
    if isinstance(expr, ast.Index):
        return (f"{_render_postfix_target(expr.target)}"
                f"[{render_expr(expr.index)}]")
    if isinstance(expr, ast.Cast):
        return f"({render_expr(expr.target)} as {render_type(expr.type)})"
    if isinstance(expr, ast.ArrayLit):
        return "[" + ", ".join(render_expr(e) for e in expr.elements) + "]"
    if isinstance(expr, ast.ObjectLit):
        fields = ", ".join(f"{name}: {render_expr(value)}"
                           for name, value in expr.fields)
        # Parenthesized so the literal never opens a statement (where `{`
        # would parse as a block).
        return "({" + fields + "})"
    if isinstance(expr, ast.FunctionExpr):
        name = f" {expr.name}" if expr.name else ""
        ret = f": {render_type(expr.ret)}" if expr.ret is not None else ""
        body = _render_block(expr.body, 0)
        return f"(function{name}({_render_params(expr.params)}){ret} {body})"
    raise ValueError(f"cannot render expression {type(expr).__name__}")


def _render_postfix_target(expr: ast.Expression) -> str:
    """Render the target of a member/index/call suffix.

    Postfix binds tightest, so a compound target must keep its own paren
    group: `(a) + (b)[0]` would re-associate the index onto `b`.  Number
    literals also need wrapping (`1.f` lexes as a float).  Conditional,
    Cast, ObjectLit and FunctionExpr already render fully parenthesized.
    """
    rendered = render_expr(expr)
    if isinstance(expr, (ast.Binary, ast.Unary, ast.NumberLit)):
        return f"({rendered})"
    return rendered


def _quote(value: str) -> str:
    escaped = (value.replace("\\", "\\\\").replace('"', '\\"')
               .replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r"))
    return f'"{escaped}"'


# ---------------------------------------------------------------------------
# type annotations
# ---------------------------------------------------------------------------


def render_type(ann: ast.TypeAnn) -> str:
    if isinstance(ann, ast.TNameAnn):
        return f"{ann.name}{_render_targs(ann.args)}"
    if isinstance(ann, ast.TRefineAnn):
        return (f"{{{ann.value_var}: {render_type(ann.base)} | "
                f"{render_expr(ann.pred)}}}")
    if isinstance(ann, ast.TArrayAnn):
        if ann.mutability is not None:
            return f"Array<{ann.mutability}, {render_type(ann.elem)}>"
        return f"{render_type(ann.elem)}[]"
    if isinstance(ann, ast.TFunAnn):
        tparams = f"<{', '.join(ann.tparams)}>" if ann.tparams else ""
        params = ", ".join(
            f"{name}: {render_type(ptype)}" if name is not None
            else render_type(ptype)
            for name, ptype in ann.params)
        return f"{tparams}({params}) => {render_type(ann.ret)}"
    if isinstance(ann, ast.TUnionAnn):
        return " + ".join(_render_union_member(m) for m in ann.members)
    raise ValueError(f"cannot render type annotation {type(ann).__name__}")


def _render_union_member(ann: ast.TypeAnn) -> str:
    rendered = render_type(ann)
    # A nested union or function member must not swallow the outer `+`.
    if isinstance(ann, (ast.TUnionAnn, ast.TFunAnn)):
        return f"({rendered})"
    return rendered


def _render_targs(args: List[ast.TypeArg]) -> str:
    if not args:
        return ""
    parts = []
    for arg in args:
        if arg.is_type():
            parts.append(render_type(arg.type))
        else:
            parts.append(render_expr(arg.expr))
    return f"<{', '.join(parts)}>"


def _render_params(params: List[ast.Param]) -> str:
    parts = []
    for param in params:
        if param.type is not None:
            parts.append(f"{param.name}: {render_type(param.type)}")
        else:
            parts.append(param.name)
    return ", ".join(parts)


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


def _indent(depth: int) -> str:
    return "  " * depth


def _render_block(block: ast.Block, depth: int) -> str:
    if not block.statements:
        return "{ }"
    lines = ["{"]
    for stmt in block.statements:
        lines.append(_render_stmt(stmt, depth + 1))
    lines.append(_indent(depth) + "}")
    return "\n".join(lines)


def _render_stmt(stmt: ast.Statement, depth: int) -> str:
    pad = _indent(depth)
    if isinstance(stmt, ast.Block):
        return pad + _render_block(stmt, depth)
    if isinstance(stmt, ast.VarDecl):
        vtype = f": {render_type(stmt.type)}" if stmt.type is not None else ""
        init = f" = {render_expr(stmt.init)}" if stmt.init is not None else ""
        return f"{pad}{stmt.kind} {stmt.name}{vtype}{init};"
    if isinstance(stmt, ast.Assign):
        return f"{pad}{render_expr(stmt.target)} = {render_expr(stmt.value)};"
    if isinstance(stmt, ast.ExprStmt):
        return f"{pad}{render_expr(stmt.expr)};"
    if isinstance(stmt, ast.If):
        text = (f"{pad}if ({render_expr(stmt.cond)}) "
                f"{_render_block(stmt.then, depth)}")
        if stmt.els is not None:
            text += f" else {_render_block(stmt.els, depth)}"
        return text
    if isinstance(stmt, ast.While):
        invariant = (f" invariant ({render_expr(stmt.invariant)})"
                     if stmt.invariant is not None else "")
        return (f"{pad}while ({render_expr(stmt.cond)}){invariant} "
                f"{_render_block(stmt.body, depth)}")
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return f"{pad}return;"
        return f"{pad}return {render_expr(stmt.value)};"
    if isinstance(stmt, ast.FunctionDeclStmt):
        return _render_function(stmt.decl, depth)
    if isinstance(stmt, ast.Skip):
        return f"{pad};"
    raise ValueError(f"cannot render statement {type(stmt).__name__}")


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


def _render_tparams(tparams: List[str]) -> str:
    return f"<{', '.join(tparams)}>" if tparams else ""


def _render_function(decl: ast.FunctionDecl, depth: int) -> str:
    pad = _indent(depth)
    ret = f": {render_type(decl.ret)}" if decl.ret is not None else ""
    head = (f"{pad}function {decl.name}{_render_tparams(decl.tparams)}"
            f"({_render_params(decl.params)}){ret}")
    if decl.body is None:
        return head + ";"
    return f"{head} {_render_block(decl.body, depth)}"


def _render_field(fld: ast.FieldDecl, depth: int,
                  allow_optional: bool) -> str:
    modifier = "immutable " if fld.immutable else ""
    optional = "?" if (fld.optional and allow_optional) else ""
    return (f"{_indent(depth)}{modifier}{fld.name}{optional} : "
            f"{render_type(fld.type)};")


def _render_receiver(mutability: Optional[str]) -> str:
    return f"@{mutability} " if mutability else ""


def _render_method_sig(sig: ast.MethodSig, depth: int) -> str:
    ret = f": {render_type(sig.ret)}" if sig.ret is not None else ""
    return (f"{_indent(depth)}{_render_receiver(sig.receiver_mutability)}"
            f"{sig.name}{_render_tparams(sig.tparams)}"
            f"({_render_params(sig.params)}){ret}")


def render_decl(decl: ast.Declaration, depth: int = 0) -> str:
    prefix = "export " if decl.exported else ""
    pad = _indent(depth)
    if isinstance(decl, ast.ImportDecl):
        names = ", ".join(decl.names)
        return f"{pad}import {{{names}}} from {_quote(decl.module)};"
    if isinstance(decl, ast.TypeAliasDecl):
        return (f"{pad}{prefix}type {decl.name}{_render_tparams(decl.params)}"
                f" = {render_type(decl.body)};")
    if isinstance(decl, ast.EnumDecl):
        members = ", ".join(f"{name} = {value}"
                            for name, value in decl.members)
        return f"{pad}{prefix}enum {decl.name} {{ {members} }}"
    if isinstance(decl, ast.SpecDecl):
        return f"{pad}{prefix}spec {decl.name} :: {render_type(decl.type)};"
    if isinstance(decl, ast.DeclareDecl):
        return (f"{pad}{prefix}declare {decl.name} :: "
                f"{render_type(decl.type)};")
    if isinstance(decl, ast.QualifierDecl):
        return f"{pad}{prefix}qualifier {render_expr(decl.pred)};"
    if isinstance(decl, ast.InterfaceDecl):
        extends = (f" extends {', '.join(decl.extends)}"
                   if decl.extends else "")
        lines = [f"{pad}{prefix}interface {decl.name}"
                 f"{_render_tparams(decl.tparams)}{extends} {{"]
        for fld in decl.fields:
            lines.append(_render_field(fld, depth + 1, allow_optional=True))
        for sig in decl.methods:
            lines.append(_render_method_sig(sig, depth + 1) + ";")
        lines.append(pad + "}")
        return "\n".join(lines)
    if isinstance(decl, ast.ClassDecl):
        extends = f" extends {decl.extends}" if decl.extends else ""
        implements = (f" implements {', '.join(decl.implements)}"
                      if decl.implements else "")
        lines = [f"{pad}{prefix}class {decl.name}"
                 f"{_render_tparams(decl.tparams)}{extends}{implements} {{"]
        if decl.invariant is not None:
            lines.append(f"{_indent(depth + 1)}invariant "
                         f"{render_expr(decl.invariant)};")
        for fld in decl.fields:
            lines.append(_render_field(fld, depth + 1, allow_optional=False))
        if decl.constructor is not None:
            ctor = decl.constructor
            head = (f"{_indent(depth + 1)}"
                    f"{_render_receiver(ctor.sig.receiver_mutability)}"
                    f"constructor({_render_params(ctor.sig.params)})")
            if ctor.body is None:
                lines.append(head + ";")
            else:
                lines.append(f"{head} {_render_block(ctor.body, depth + 1)}")
        for method in decl.methods:
            head = _render_method_sig(method.sig, depth + 1)
            if method.body is None:
                lines.append(head + ";")
            else:
                lines.append(f"{head} {_render_block(method.body, depth + 1)}")
        lines.append(pad + "}")
        return "\n".join(lines)
    if isinstance(decl, ast.FunctionDecl):
        return f"{pad}{prefix}" + _render_function(decl, depth).lstrip() \
            if prefix else _render_function(decl, depth)
    raise ValueError(f"cannot render declaration {type(decl).__name__}")


def render_program(program: ast.Program) -> str:
    return "\n\n".join(render_decl(d) for d in program.declarations) + "\n"
