"""Abstract syntax of nanoTS (the FRSC source language plus section-4 extensions).

Two node families live here:

* *Type annotations* (``TypeAnn`` and subclasses) — the surface syntax of
  refinement types; they are resolved into semantic types
  (:mod:`repro.rtypes.types`) by :mod:`repro.core.resolve`.
* *Program syntax* (expressions, statements, declarations) — the FRSC
  fragment of the paper extended with loops, enums, interfaces, specs and
  function expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.errors import SourceSpan


# ---------------------------------------------------------------------------
# Type annotations (surface syntax of types)
# ---------------------------------------------------------------------------


@dataclass
class TypeAnn:
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


@dataclass
class TNameAnn(TypeAnn):
    """A named type: primitive, type variable, alias, class or interface,
    optionally applied to type/term arguments: ``idx<a>``, ``Array<IM, T>``."""

    name: str
    args: List["TypeArg"] = field(default_factory=list)


@dataclass
class TRefineAnn(TypeAnn):
    """``{v: T | p}`` — a refinement of a base annotation."""

    base: TypeAnn
    pred: "Expression"
    value_var: str = "v"


@dataclass
class TArrayAnn(TypeAnn):
    """``T[]`` (mutability defaults from context) or ``IArray<T>`` forms."""

    elem: TypeAnn
    mutability: Optional[str] = None  # "IM" | "MU" | "RO" | "UQ" | None


@dataclass
class TFunAnn(TypeAnn):
    """``<A, B>(x: T1, T2) => T``."""

    tparams: List[str]
    params: List[Tuple[Optional[str], TypeAnn]]
    ret: TypeAnn


@dataclass
class TUnionAnn(TypeAnn):
    members: List[TypeAnn] = field(default_factory=list)


@dataclass
class TypeArg:
    """A type argument: either a type annotation or a logical expression
    (for value-parameterised aliases like ``idx<a>`` or ``natN<n+1>``)."""

    type: Optional[TypeAnn] = None
    expr: Optional["Expression"] = None

    def is_type(self) -> bool:
        return self.type is not None


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expression:
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


@dataclass
class NumberLit(Expression):
    value: Union[int, float]
    raw: str = ""


@dataclass
class StringLit(Expression):
    value: str


@dataclass
class BoolLitE(Expression):
    value: bool


@dataclass
class NullLit(Expression):
    pass


@dataclass
class UndefinedLit(Expression):
    pass


@dataclass
class VarRef(Expression):
    name: str


@dataclass
class ThisRef(Expression):
    pass


@dataclass
class Unary(Expression):
    op: str  # "!", "-", "+", "typeof"
    operand: Expression


@dataclass
class Binary(Expression):
    op: str
    left: Expression
    right: Expression


@dataclass
class Conditional(Expression):
    cond: Expression
    then: Expression
    els: Expression


@dataclass
class Call(Expression):
    callee: Expression
    args: List[Expression] = field(default_factory=list)
    targs: List[TypeArg] = field(default_factory=list)


@dataclass
class New(Expression):
    class_name: str
    args: List[Expression] = field(default_factory=list)
    targs: List[TypeArg] = field(default_factory=list)


@dataclass
class Member(Expression):
    target: Expression
    name: str


@dataclass
class Index(Expression):
    target: Expression
    index: Expression


@dataclass
class Cast(Expression):
    """``<T> e`` or ``e as T``."""

    target: Expression
    type: TypeAnn


@dataclass
class ArrayLit(Expression):
    elements: List[Expression] = field(default_factory=list)


@dataclass
class ObjectLit(Expression):
    fields: List[Tuple[str, Expression]] = field(default_factory=list)


@dataclass
class FunctionExpr(Expression):
    """Anonymous function / arrow function expression."""

    params: List["Param"] = field(default_factory=list)
    ret: Optional[TypeAnn] = None
    body: "Block" = None  # type: ignore[assignment]
    name: Optional[str] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Statement:
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)


@dataclass
class Block(Statement):
    statements: List[Statement] = field(default_factory=list)


@dataclass
class VarDecl(Statement):
    name: str
    init: Optional[Expression] = None
    type: Optional[TypeAnn] = None
    kind: str = "var"  # var | let | const


@dataclass
class Assign(Statement):
    """``target = value`` where target is a variable, member or index."""

    target: Expression
    value: Expression


@dataclass
class ExprStmt(Statement):
    expr: Expression


@dataclass
class If(Statement):
    cond: Expression
    then: Block
    els: Optional[Block] = None


@dataclass
class While(Statement):
    cond: Expression
    body: Block
    invariant: Optional[Expression] = None


@dataclass
class Return(Statement):
    value: Optional[Expression] = None


@dataclass
class FunctionDeclStmt(Statement):
    """A nested (closure) function declaration inside a body."""

    decl: "FunctionDecl" = None  # type: ignore[assignment]


@dataclass
class Skip(Statement):
    pass


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    type: Optional[TypeAnn] = None


@dataclass
class Declaration:
    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)
    #: ``export`` modifier — the declaration is part of the module's interface
    #: (see :mod:`repro.project.summary`).
    exported: bool = field(default=False, kw_only=True)


@dataclass
class ImportDecl(Declaration):
    """``import {a, b} from "./mod";`` — bind another module's exports.

    ``module`` is the literal module specifier; resolution against the
    importing file's directory happens in :mod:`repro.project.graph`.
    """

    names: List[str] = field(default_factory=list)
    module: str = ""


@dataclass
class TypeAliasDecl(Declaration):
    name: str
    params: List[str] = field(default_factory=list)
    body: TypeAnn = None  # type: ignore[assignment]


@dataclass
class EnumDecl(Declaration):
    name: str
    members: List[Tuple[str, int]] = field(default_factory=list)


@dataclass
class SpecDecl(Declaration):
    """``spec name :: <A>(...) => T;`` — one overload signature for ``name``."""

    name: str
    type: TypeAnn = None  # type: ignore[assignment]


@dataclass
class DeclareDecl(Declaration):
    """``declare name :: T;`` — an ambient, trusted binding (e.g. ghost fns)."""

    name: str
    type: TypeAnn = None  # type: ignore[assignment]


@dataclass
class QualifierDecl(Declaration):
    """``qualifier p;`` — an extra predicate template for liquid inference."""

    pred: Expression = None  # type: ignore[assignment]


@dataclass
class FieldDecl:
    name: str
    type: TypeAnn
    immutable: bool = False
    optional: bool = False
    span: SourceSpan = field(default_factory=SourceSpan.unknown)


@dataclass
class MethodSig:
    name: str
    tparams: List[str] = field(default_factory=list)
    params: List[Param] = field(default_factory=list)
    ret: Optional[TypeAnn] = None
    receiver_mutability: Optional[str] = None
    span: SourceSpan = field(default_factory=SourceSpan.unknown)


@dataclass
class MethodDecl:
    sig: MethodSig
    body: Optional[Block] = None
    specs: List[TypeAnn] = field(default_factory=list)


@dataclass
class InterfaceDecl(Declaration):
    name: str
    tparams: List[str] = field(default_factory=list)
    extends: List[str] = field(default_factory=list)
    fields: List[FieldDecl] = field(default_factory=list)
    methods: List[MethodSig] = field(default_factory=list)


@dataclass
class ClassDecl(Declaration):
    name: str
    tparams: List[str] = field(default_factory=list)
    extends: Optional[str] = None
    implements: List[str] = field(default_factory=list)
    fields: List[FieldDecl] = field(default_factory=list)
    constructor: Optional[MethodDecl] = None
    methods: List[MethodDecl] = field(default_factory=list)
    invariant: Optional[Expression] = None


@dataclass
class FunctionDecl(Declaration):
    name: str
    tparams: List[str] = field(default_factory=list)
    params: List[Param] = field(default_factory=list)
    ret: Optional[TypeAnn] = None
    body: Optional[Block] = None
    specs: List[TypeAnn] = field(default_factory=list)


@dataclass
class Program:
    declarations: List[Declaration] = field(default_factory=list)
    source_name: str = "<input>"

    def functions(self) -> List[FunctionDecl]:
        return [d for d in self.declarations if isinstance(d, FunctionDecl)]

    def classes(self) -> List[ClassDecl]:
        return [d for d in self.declarations if isinstance(d, ClassDecl)]

    def interfaces(self) -> List[InterfaceDecl]:
        return [d for d in self.declarations if isinstance(d, InterfaceDecl)]

    def imports(self) -> List[ImportDecl]:
        return [d for d in self.declarations if isinstance(d, ImportDecl)]

    def exports(self) -> List[Declaration]:
        return [d for d in self.declarations if d.exported]
