"""The nanoTS source language front-end (lexer, AST, parser).

nanoTS is the TypeScript-like surface language accepted by this RSC
reproduction.  It covers the formal core FRSC of the paper (classes with
immutable/mutable fields, methods, constructors, casts) plus the extensions
of section 4: interfaces, enums, generics, refinement type annotations,
overloaded ``spec`` signatures, ``typeof`` reflection and array primitives.
"""

from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_program, parse_type, parse_expression
from repro.lang import ast

__all__ = [
    "Lexer", "tokenize", "Parser", "parse_program", "parse_type",
    "parse_expression", "ast",
]
