"""Recursive-descent parser for nanoTS.

The grammar covers the paper's formal core (classes, fields with mutability
modifiers, methods, constructors, casts) and the section-4 extensions
(interfaces, enums, generics, refinement annotations, overloaded ``spec``
signatures, ``declare`` ambients, loops and nested functions).

Notable syntactic choices (documented in the README):

* refinement types are written ``{v: T | p}``;
* union types use ``+`` (as in the paper) to avoid ambiguity with ``|``
  inside refinements;
* overload signatures are attached with ``spec name :: <A>(...) => T;`` and a
  function may have several of them (their intersection is the function's
  type, checked by two-phase typing);
* ``declare name :: T;`` introduces a trusted ambient binding (used for ghost
  theorem functions exactly like the paper's ``mulThm1``);
* casts are written ``<T> e`` or ``e as T``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError, SourceSpan
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/="}


class Parser:
    def __init__(self, source: str, filename: str = "<input>") -> None:
        self.tokens = tokenize(source, filename)
        self.pos = 0
        self.filename = filename

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at_punct(self, text: str) -> bool:
        return self._peek().is_punct(text)

    def _at_keyword(self, text: str) -> bool:
        return self._peek().is_keyword(text)

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _accept_punct(self, text: str) -> bool:
        if self._at_punct(text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._at_keyword(text):
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        if not self._at_punct(text):
            raise self._error(f"expected {text!r}, found {self._peek().text!r}")
        return self._advance()

    def _expect_keyword(self, text: str) -> Token:
        if not self._at_keyword(text):
            raise self._error(f"expected keyword {text!r}, found {self._peek().text!r}")
        return self._advance()

    def _expect_name(self) -> str:
        tok = self._peek()
        # Type/primitive keywords are allowed as names in member positions.
        if tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            self._advance()
            return tok.text
        raise self._error(f"expected an identifier, found {tok.text!r}")

    def _expect_ident(self) -> str:
        tok = self._peek()
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return tok.text
        raise self._error(f"expected an identifier, found {tok.text!r}")

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self._peek().span)

    def _span(self) -> SourceSpan:
        return self._peek().span

    # -- program -------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        decls: List[ast.Declaration] = []
        while self._peek().kind is not TokenKind.EOF:
            decls.append(self._declaration())
        return ast.Program(declarations=decls, source_name=self.filename)

    #: keywords that can begin a top-level declaration (after `export`)
    _DECL_KEYWORDS = ("type", "enum", "spec", "declare", "qualifier",
                      "interface", "class", "function")

    def _declaration(self) -> ast.Declaration:
        # `import`/`export` are contextual: plain identifiers recognised
        # only here, in declaration position, so programs may still use
        # them (and `from`) as ordinary names.
        tok = self._peek()
        if tok.is_ident("import") and self._peek(1).is_punct("{"):
            return self._import()
        if tok.is_ident("export") and self._starts_exportable(self._peek(1)):
            span = self._span()
            self._advance()
            if self._peek().is_ident("import"):
                raise ParseError("an import cannot be exported (re-export is "
                                 "not supported)", span)
            # _plain_declaration rejects a repeated `export` modifier.
            decl = self._plain_declaration()
            decl.exported = True
            return decl
        return self._plain_declaration()

    def _starts_exportable(self, tok: Token) -> bool:
        if tok.kind is TokenKind.KEYWORD and tok.text in self._DECL_KEYWORDS:
            return True
        return tok.is_ident("import")  # reaches the explicit error above

    def _plain_declaration(self) -> ast.Declaration:
        if self._at_keyword("type"):
            return self._type_alias()
        if self._at_keyword("enum"):
            return self._enum()
        if self._at_keyword("spec"):
            return self._spec()
        if self._at_keyword("declare"):
            return self._declare()
        if self._at_keyword("qualifier"):
            return self._qualifier()
        if self._at_keyword("interface"):
            return self._interface()
        if self._at_keyword("class"):
            return self._class()
        if self._at_keyword("function"):
            return self._function()
        raise self._error(f"expected a declaration, found {self._peek().text!r}")

    def _import(self) -> ast.ImportDecl:
        span = self._span()
        self._advance()  # the contextual `import` identifier
        self._expect_punct("{")
        names: List[str] = []
        while not self._at_punct("}"):
            names.append(self._expect_ident())
            if not self._accept_punct(","):
                break
        self._expect_punct("}")
        if not self._peek().is_ident("from"):
            raise self._error("expected 'from' after the import name list")
        self._advance()
        tok = self._peek()
        if tok.kind is not TokenKind.STRING:
            raise self._error("expected a module specifier string after 'from'")
        self._advance()
        self._accept_punct(";")
        if not names:
            raise ParseError("an import must bind at least one name", span)
        return ast.ImportDecl(names=names, module=str(tok.value), span=span)

    def _type_alias(self) -> ast.TypeAliasDecl:
        span = self._span()
        self._expect_keyword("type")
        name = self._expect_ident()
        params: List[str] = []
        if self._accept_punct("<"):
            while True:
                params.append(self._expect_ident())
                if not self._accept_punct(","):
                    break
            self._expect_punct(">")
        self._expect_punct("=")
        body = self.parse_type()
        self._accept_punct(";")
        return ast.TypeAliasDecl(name=name, params=params, body=body, span=span)

    def _enum(self) -> ast.EnumDecl:
        span = self._span()
        self._expect_keyword("enum")
        name = self._expect_ident()
        self._expect_punct("{")
        members: List[Tuple[str, int]] = []
        env: dict[str, int] = {}
        next_value = 0
        while not self._at_punct("}"):
            member = self._expect_name()
            if self._accept_punct("="):
                expr = self._expression()
                value = _const_eval(expr, env)
            else:
                value = next_value
            members.append((member, value))
            env[member] = value
            next_value = value + 1
            if not self._accept_punct(","):
                break
        self._expect_punct("}")
        return ast.EnumDecl(name=name, members=members, span=span)

    def _spec(self) -> ast.SpecDecl:
        span = self._span()
        self._expect_keyword("spec")
        name = self._expect_ident()
        self._expect_punct("::")
        type_ann = self.parse_type()
        self._accept_punct(";")
        return ast.SpecDecl(name=name, type=type_ann, span=span)

    def _declare(self) -> ast.DeclareDecl:
        span = self._span()
        self._expect_keyword("declare")
        self._accept_keyword("function")
        name = self._expect_ident()
        self._expect_punct("::")
        type_ann = self.parse_type()
        self._accept_punct(";")
        return ast.DeclareDecl(name=name, type=type_ann, span=span)

    def _qualifier(self) -> ast.QualifierDecl:
        span = self._span()
        self._expect_keyword("qualifier")
        pred = self._expression(in_pred=True)
        self._accept_punct(";")
        return ast.QualifierDecl(pred=pred, span=span)

    def _interface(self) -> ast.InterfaceDecl:
        span = self._span()
        self._expect_keyword("interface")
        name = self._expect_ident()
        tparams = self._type_params()
        extends: List[str] = []
        if self._accept_keyword("extends"):
            while True:
                extends.append(self._expect_ident())
                if not self._accept_punct(","):
                    break
        self._expect_punct("{")
        fields: List[ast.FieldDecl] = []
        methods: List[ast.MethodSig] = []
        while not self._at_punct("}"):
            member_span = self._span()
            receiver = self._method_annotation()
            immutable = self._accept_keyword("immutable")
            if not immutable:
                self._accept_keyword("mutable")
            member_name = self._expect_name()
            optional = self._accept_punct("?")
            if self._at_punct("(") or self._at_punct("<"):
                sig = self._method_signature(member_name, receiver, member_span)
                methods.append(sig)
            else:
                self._expect_punct(":")
                field_type = self.parse_type()
                fields.append(ast.FieldDecl(name=member_name, type=field_type,
                                            immutable=immutable, optional=optional,
                                            span=member_span))
            self._accept_punct(";")
        self._expect_punct("}")
        return ast.InterfaceDecl(name=name, tparams=tparams, extends=extends,
                                 fields=fields, methods=methods, span=span)

    def _method_annotation(self) -> Optional[str]:
        if self._accept_punct("@"):
            return self._expect_name()
        return None

    def _method_signature(self, name: str, receiver: Optional[str],
                          span: SourceSpan) -> ast.MethodSig:
        tparams = self._type_params()
        params = self._params()
        ret = None
        if self._accept_punct(":"):
            ret = self.parse_type()
        return ast.MethodSig(name=name, tparams=tparams, params=params, ret=ret,
                             receiver_mutability=receiver, span=span)

    def _class(self) -> ast.ClassDecl:
        span = self._span()
        self._expect_keyword("class")
        name = self._expect_ident()
        tparams = self._type_params()
        extends = None
        implements: List[str] = []
        if self._accept_keyword("extends"):
            extends = self._expect_ident()
            # allow (and ignore) type arguments on the superclass
            self._skip_type_args()
        if self._accept_keyword("implements"):
            while True:
                implements.append(self._expect_ident())
                self._skip_type_args()
                if not self._accept_punct(","):
                    break
        self._expect_punct("{")
        fields: List[ast.FieldDecl] = []
        methods: List[ast.MethodDecl] = []
        constructor: Optional[ast.MethodDecl] = None
        invariant: Optional[ast.Expression] = None
        while not self._at_punct("}"):
            member_span = self._span()
            if self._accept_keyword("invariant"):
                invariant = self._expression(in_pred=True)
                self._accept_punct(";")
                continue
            receiver = self._method_annotation()
            self._accept_keyword("public")
            self._accept_keyword("private")
            if self._at_keyword("constructor"):
                self._advance()
                params = self._params()
                body = self._block()
                sig = ast.MethodSig(name="constructor", params=params,
                                    receiver_mutability=receiver, span=member_span)
                constructor = ast.MethodDecl(sig=sig, body=body)
                continue
            immutable = self._accept_keyword("immutable")
            if not immutable:
                self._accept_keyword("mutable")
            member_name = self._expect_name()
            if self._at_punct("(") or self._at_punct("<"):
                sig = self._method_signature(member_name, receiver, member_span)
                body = self._block() if self._at_punct("{") else None
                if body is None:
                    self._accept_punct(";")
                methods.append(ast.MethodDecl(sig=sig, body=body))
            else:
                self._expect_punct(":")
                field_type = self.parse_type()
                self._accept_punct(";")
                fields.append(ast.FieldDecl(name=member_name, type=field_type,
                                            immutable=immutable, span=member_span))
        self._expect_punct("}")
        return ast.ClassDecl(name=name, tparams=tparams, extends=extends,
                             implements=implements, fields=fields,
                             constructor=constructor, methods=methods,
                             invariant=invariant, span=span)

    def _function(self) -> ast.FunctionDecl:
        span = self._span()
        self._expect_keyword("function")
        name = self._expect_ident()
        tparams = self._type_params()
        params = self._params()
        ret = None
        if self._accept_punct(":"):
            ret = self.parse_type()
        body = self._block() if self._at_punct("{") else None
        if body is None:
            self._accept_punct(";")
        return ast.FunctionDecl(name=name, tparams=tparams, params=params,
                                ret=ret, body=body, span=span)

    def _type_params(self) -> List[str]:
        params: List[str] = []
        if self._accept_punct("<"):
            while True:
                params.append(self._expect_ident())
                # allow (and ignore) bounds: <M extends ReadOnly>
                if self._accept_keyword("extends"):
                    self._expect_name()
                if not self._accept_punct(","):
                    break
            self._expect_punct(">")
        return params

    def _skip_type_args(self) -> None:
        if self._at_punct("<"):
            depth = 0
            while True:
                tok = self._advance()
                if tok.is_punct("<"):
                    depth += 1
                elif tok.is_punct(">"):
                    depth -= 1
                    if depth == 0:
                        return
                elif tok.kind is TokenKind.EOF:
                    raise self._error("unterminated type argument list")

    def _params(self) -> List[ast.Param]:
        self._expect_punct("(")
        params: List[ast.Param] = []
        while not self._at_punct(")"):
            name = self._expect_name()
            ptype = None
            if self._accept_punct(":"):
                ptype = self.parse_type()
            params.append(ast.Param(name=name, type=ptype))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return params

    # -- type annotations ------------------------------------------------------

    def parse_type(self) -> ast.TypeAnn:
        return self._union_type()

    def _union_type(self) -> ast.TypeAnn:
        first = self._postfix_type()
        if not self._at_punct("+"):
            return first
        members = [first]
        while self._accept_punct("+"):
            members.append(self._postfix_type())
        return ast.TUnionAnn(members=members, span=first.span)

    def _postfix_type(self) -> ast.TypeAnn:
        t = self._primary_type()
        while True:
            if self._at_punct("[") and self._peek(1).is_punct("]"):
                self._advance()
                self._advance()
                t = ast.TArrayAnn(elem=t, span=t.span)
            elif self._at_punct("+") and self._peek(1).is_punct("]"):
                # not reachable; kept for symmetry
                break
            else:
                break
        return t

    def _primary_type(self) -> ast.TypeAnn:
        span = self._span()
        # refinement type {v: T | p}
        if self._at_punct("{"):
            return self._refinement_or_object_type()
        # function type, possibly generic: <A,B>(params) => T  or  (params) => T
        if self._at_punct("<") or (self._at_punct("(") and self._looks_like_fun_type()):
            return self._function_type()
        if self._at_punct("("):
            self._advance()
            inner = self.parse_type()
            self._expect_punct(")")
            return inner
        tok = self._peek()
        if tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            name = self._expect_name()
            args: List[ast.TypeArg] = []
            if self._at_punct("<"):
                args = self._type_args()
            ann = ast.TNameAnn(name=name, args=args, span=span)
            # array suffix with non-empty marker: A[]+  (non-empty array)
            return ann
        raise self._error(f"expected a type, found {tok.text!r}")

    def _refinement_or_object_type(self) -> ast.TypeAnn:
        span = self._span()
        self._expect_punct("{")
        # Refinement form: { ident : Type | pred }
        save = self.pos
        if self._peek().kind in (TokenKind.IDENT, TokenKind.KEYWORD) and \
                self._peek(1).is_punct(":"):
            value_var = self._expect_name()
            self._expect_punct(":")
            base = self.parse_type()
            if self._accept_punct("|"):
                pred = self._expression(in_pred=True)
                self._expect_punct("}")
                return ast.TRefineAnn(base=base, pred=pred, value_var=value_var,
                                      span=span)
            if self._accept_punct("}"):
                # single-field object type {x: T}
                return ast.TNameAnn(name="Object", span=span)
        self.pos = save
        # Shorthand refinement: { Type | pred }  (value variable defaults to v)
        base = self.parse_type()
        if self._accept_punct("|"):
            pred = self._expression(in_pred=True)
            self._expect_punct("}")
            return ast.TRefineAnn(base=base, pred=pred, value_var="v", span=span)
        self._expect_punct("}")
        return base

    def _looks_like_fun_type(self) -> bool:
        """At '(', scan for the matching ')' followed by '=>'."""
        depth = 0
        idx = self.pos
        while idx < len(self.tokens):
            tok = self.tokens[idx]
            if tok.is_punct("("):
                depth += 1
            elif tok.is_punct(")"):
                depth -= 1
                if depth == 0:
                    nxt = self.tokens[idx + 1] if idx + 1 < len(self.tokens) else None
                    return nxt is not None and nxt.is_punct("=>")
            elif tok.kind is TokenKind.EOF:
                return False
            idx += 1
        return False

    def _function_type(self) -> ast.TFunAnn:
        span = self._span()
        tparams = self._type_params()
        self._expect_punct("(")
        params: List[Tuple[Optional[str], ast.TypeAnn]] = []
        while not self._at_punct(")"):
            # named parameter `x: T` vs anonymous type `T`
            if self._peek().kind in (TokenKind.IDENT, TokenKind.KEYWORD) and \
                    self._peek(1).is_punct(":"):
                pname = self._expect_name()
                self._expect_punct(":")
                ptype = self.parse_type()
                params.append((pname, ptype))
            else:
                params.append((None, self.parse_type()))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        self._expect_punct("=>")
        ret = self.parse_type()
        return ast.TFunAnn(tparams=tparams, params=params, ret=ret, span=span)

    def _type_args(self) -> List[ast.TypeArg]:
        self._expect_punct("<")
        args: List[ast.TypeArg] = []
        while True:
            args.append(self._type_arg())
            if not self._accept_punct(","):
                break
        self._expect_punct(">")
        return args

    def _type_arg(self) -> ast.TypeArg:
        # Heuristic: a type argument that does not parse as a type, or that is
        # followed by an arithmetic operator, is a logical expression (value
        # parameter of an alias such as idx<a> or grid<w, h>).
        save = self.pos
        try:
            t = self.parse_type()
            if self._at_punct(",") or self._at_punct(">"):
                return ast.TypeArg(type=t)
        except ParseError:
            pass
        self.pos = save
        expr = self._additive(in_pred=True)
        return ast.TypeArg(expr=expr)

    # -- statements -------------------------------------------------------------

    def _block(self) -> ast.Block:
        span = self._span()
        self._expect_punct("{")
        statements: List[ast.Statement] = []
        while not self._at_punct("}"):
            statements.append(self._statement())
        self._expect_punct("}")
        return ast.Block(statements=statements, span=span)

    def _statement(self) -> ast.Statement:
        span = self._span()
        if self._at_punct("{"):
            return self._block()
        if self._at_keyword("var") or self._at_keyword("let") or self._at_keyword("const"):
            return self._var_decl()
        if self._at_keyword("if"):
            return self._if()
        if self._at_keyword("while"):
            return self._while()
        if self._at_keyword("for"):
            return self._for()
        if self._at_keyword("return"):
            self._advance()
            value = None
            if not self._at_punct(";") and not self._at_punct("}"):
                value = self._expression()
            self._accept_punct(";")
            return ast.Return(value=value, span=span)
        if self._at_keyword("function"):
            decl = self._function()
            return ast.FunctionDeclStmt(decl=decl, span=span)
        if self._at_punct(";"):
            self._advance()
            return ast.Skip(span=span)
        if self._at_keyword("break") or self._at_keyword("continue"):
            raise self._error(
                "break/continue are not supported; restructure the loop "
                "(the paper's benchmarks were modified the same way)")
        return self._expr_or_assign_statement(span)

    def _var_decl(self) -> ast.Statement:
        span = self._span()
        kind = self._advance().text
        decls: List[ast.Statement] = []
        while True:
            name = self._expect_ident()
            vtype = None
            init = None
            if self._accept_punct(":"):
                vtype = self.parse_type()
            if self._accept_punct("="):
                init = self._expression()
            decls.append(ast.VarDecl(name=name, init=init, type=vtype, kind=kind,
                                     span=span))
            if not self._accept_punct(","):
                break
        self._accept_punct(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(statements=decls, span=span)

    def _if(self) -> ast.If:
        span = self._span()
        self._expect_keyword("if")
        self._expect_punct("(")
        cond = self._expression()
        self._expect_punct(")")
        then = self._statement_as_block()
        els = None
        if self._accept_keyword("else"):
            els = self._statement_as_block()
        return ast.If(cond=cond, then=then, els=els, span=span)

    def _statement_as_block(self) -> ast.Block:
        stmt = self._statement()
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block(statements=[stmt], span=stmt.span)

    def _while(self) -> ast.While:
        span = self._span()
        self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._expression()
        self._expect_punct(")")
        invariant = None
        if self._accept_keyword("invariant"):
            self._expect_punct("(")
            invariant = self._expression(in_pred=True)
            self._expect_punct(")")
        body = self._statement_as_block()
        return ast.While(cond=cond, body=body, invariant=invariant, span=span)

    def _for(self) -> ast.Statement:
        """``for (init; cond; update) body`` desugars to init + while."""
        span = self._span()
        self._expect_keyword("for")
        self._expect_punct("(")
        init: Optional[ast.Statement] = None
        if not self._at_punct(";"):
            if self._at_keyword("var") or self._at_keyword("let") or self._at_keyword("const"):
                init = self._var_decl()
            else:
                init = self._expr_or_assign_statement(self._span(), consume_semi=False)
                self._accept_punct(";")
        else:
            self._advance()
        cond: ast.Expression = ast.BoolLitE(value=True, span=span)
        if not self._at_punct(";"):
            cond = self._expression()
        self._expect_punct(";")
        update: Optional[ast.Statement] = None
        if not self._at_punct(")"):
            update = self._expr_or_assign_statement(self._span(), consume_semi=False)
        self._expect_punct(")")
        body = self._statement_as_block()
        loop_body_stmts = list(body.statements)
        if update is not None:
            loop_body_stmts.append(update)
        loop = ast.While(cond=cond, body=ast.Block(statements=loop_body_stmts,
                                                   span=body.span), span=span)
        statements: List[ast.Statement] = []
        if init is not None:
            statements.append(init)
        statements.append(loop)
        return ast.Block(statements=statements, span=span)

    def _expr_or_assign_statement(self, span: SourceSpan,
                                  consume_semi: bool = True) -> ast.Statement:
        expr = self._expression()
        stmt: ast.Statement
        if self._peek().kind is TokenKind.PUNCT and self._peek().text in _ASSIGN_OPS:
            op = self._advance().text
            value = self._expression()
            if op != "=":
                value = ast.Binary(op=op[0], left=expr, right=value, span=span)
            stmt = ast.Assign(target=expr, value=value, span=span)
        elif self._at_punct("++") or self._at_punct("--"):
            op = self._advance().text
            one = ast.NumberLit(value=1, raw="1", span=span)
            value = ast.Binary(op="+" if op == "++" else "-", left=expr, right=one,
                               span=span)
            stmt = ast.Assign(target=expr, value=value, span=span)
        else:
            stmt = ast.ExprStmt(expr=expr, span=span)
        if consume_semi:
            self._accept_punct(";")
        return stmt

    # -- expressions ---------------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        return self._expression()

    def _expression(self, in_pred: bool = False) -> ast.Expression:
        return self._implication(in_pred)

    def _implication(self, in_pred: bool) -> ast.Expression:
        left = self._conditional(in_pred)
        if in_pred and self._at_punct("=>"):
            self._advance()
            right = self._implication(in_pred)
            return ast.Binary(op="=>", left=left, right=right, span=left.span)
        if in_pred and self._at_punct("<=>"):
            self._advance()
            right = self._implication(in_pred)
            return ast.Binary(op="<=>", left=left, right=right, span=left.span)
        return left

    def _conditional(self, in_pred: bool) -> ast.Expression:
        cond = self._logical_or(in_pred)
        if self._accept_punct("?"):
            then = self._expression(in_pred)
            self._expect_punct(":")
            els = self._expression(in_pred)
            return ast.Conditional(cond=cond, then=then, els=els, span=cond.span)
        return cond

    def _logical_or(self, in_pred: bool) -> ast.Expression:
        left = self._logical_and(in_pred)
        while self._at_punct("||"):
            self._advance()
            right = self._logical_and(in_pred)
            left = ast.Binary(op="||", left=left, right=right, span=left.span)
        return left

    def _logical_and(self, in_pred: bool) -> ast.Expression:
        left = self._bitwise_or(in_pred)
        while self._at_punct("&&"):
            self._advance()
            right = self._bitwise_or(in_pred)
            left = ast.Binary(op="&&", left=left, right=right, span=left.span)
        return left

    def _bitwise_or(self, in_pred: bool) -> ast.Expression:
        left = self._bitwise_and(in_pred)
        while self._at_punct("|"):
            self._advance()
            right = self._bitwise_and(in_pred)
            left = ast.Binary(op="|", left=left, right=right, span=left.span)
        return left

    def _bitwise_and(self, in_pred: bool) -> ast.Expression:
        left = self._equality(in_pred)
        while self._at_punct("&"):
            self._advance()
            right = self._equality(in_pred)
            left = ast.Binary(op="&", left=left, right=right, span=left.span)
        return left

    def _equality(self, in_pred: bool) -> ast.Expression:
        left = self._relational(in_pred)
        while True:
            if self._at_punct("===") or self._at_punct("=="):
                self._advance()
                right = self._relational(in_pred)
                left = ast.Binary(op="==", left=left, right=right, span=left.span)
            elif self._at_punct("!==") or self._at_punct("!="):
                self._advance()
                right = self._relational(in_pred)
                left = ast.Binary(op="!=", left=left, right=right, span=left.span)
            elif in_pred and self._at_punct("="):
                self._advance()
                right = self._relational(in_pred)
                left = ast.Binary(op="==", left=left, right=right, span=left.span)
            else:
                return left

    def _relational(self, in_pred: bool) -> ast.Expression:
        left = self._additive(in_pred)
        while True:
            tok = self._peek()
            if tok.is_punct("<") or tok.is_punct("<=") or tok.is_punct(">") or \
                    tok.is_punct(">="):
                op = self._advance().text
                right = self._additive(in_pred)
                left = ast.Binary(op=op, left=left, right=right, span=left.span)
            elif tok.is_keyword("instanceof"):
                self._advance()
                right = self._additive(in_pred)
                left = ast.Binary(op="instanceof", left=left, right=right,
                                  span=left.span)
            elif tok.is_keyword("in"):
                return left
            else:
                return left

    def _additive(self, in_pred: bool) -> ast.Expression:
        left = self._multiplicative(in_pred)
        while self._at_punct("+") or self._at_punct("-"):
            op = self._advance().text
            right = self._multiplicative(in_pred)
            left = ast.Binary(op=op, left=left, right=right, span=left.span)
        return left

    def _multiplicative(self, in_pred: bool) -> ast.Expression:
        left = self._unary(in_pred)
        while self._at_punct("*") or self._at_punct("/") or self._at_punct("%"):
            op = self._advance().text
            right = self._unary(in_pred)
            left = ast.Binary(op=op, left=left, right=right, span=left.span)
        return left

    def _unary(self, in_pred: bool) -> ast.Expression:
        span = self._span()
        if self._at_punct("!"):
            self._advance()
            return ast.Unary(op="!", operand=self._unary(in_pred), span=span)
        if self._at_punct("-"):
            self._advance()
            return ast.Unary(op="-", operand=self._unary(in_pred), span=span)
        if self._at_punct("+"):
            self._advance()
            return self._unary(in_pred)
        if self._at_keyword("typeof"):
            self._advance()
            return ast.Unary(op="typeof", operand=self._unary(in_pred), span=span)
        return self._postfix(in_pred)

    def _postfix(self, in_pred: bool) -> ast.Expression:
        expr = self._primary(in_pred)
        while True:
            if self._at_punct("."):
                self._advance()
                name = self._expect_name()
                expr = ast.Member(target=expr, name=name, span=expr.span)
            elif self._at_punct("["):
                self._advance()
                index = self._expression(in_pred)
                self._expect_punct("]")
                expr = ast.Index(target=expr, index=index, span=expr.span)
            elif self._at_punct("("):
                args = self._call_args()
                expr = ast.Call(callee=expr, args=args, span=expr.span)
            elif self._at_keyword("as"):
                self._advance()
                cast_type = self.parse_type()
                expr = ast.Cast(target=expr, type=cast_type, span=expr.span)
            else:
                return expr

    def _call_args(self) -> List[ast.Expression]:
        self._expect_punct("(")
        args: List[ast.Expression] = []
        while not self._at_punct(")"):
            args.append(self._expression())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return args

    def _primary(self, in_pred: bool) -> ast.Expression:
        span = self._span()
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            return ast.NumberLit(value=tok.value, raw=tok.text, span=span)
        if tok.kind is TokenKind.STRING:
            self._advance()
            return ast.StringLit(value=tok.value, span=span)
        if tok.is_keyword("true"):
            self._advance()
            return ast.BoolLitE(value=True, span=span)
        if tok.is_keyword("false"):
            self._advance()
            return ast.BoolLitE(value=False, span=span)
        if tok.is_keyword("null"):
            self._advance()
            return ast.NullLit(span=span)
        if tok.is_keyword("undefined"):
            self._advance()
            return ast.UndefinedLit(span=span)
        if tok.is_keyword("this"):
            self._advance()
            return ast.ThisRef(span=span)
        if tok.is_keyword("new"):
            self._advance()
            class_name = self._expect_ident()
            targs: List[ast.TypeArg] = []
            if self._at_punct("<"):
                targs = self._type_args()
            args = self._call_args() if self._at_punct("(") else []
            return ast.New(class_name=class_name, args=args, targs=targs, span=span)
        if tok.is_keyword("function"):
            self._advance()
            name = None
            if self._peek().kind is TokenKind.IDENT:
                name = self._expect_ident()
            params = self._params()
            ret = None
            if self._accept_punct(":"):
                ret = self.parse_type()
            body = self._block()
            return ast.FunctionExpr(params=params, ret=ret, body=body, name=name,
                                    span=span)
        if tok.is_punct("<") and not in_pred:
            # cast expression <T> e
            self._advance()
            cast_type = self.parse_type()
            self._expect_punct(">")
            target = self._unary(in_pred)
            return ast.Cast(target=target, type=cast_type, span=span)
        if tok.is_punct("("):
            # Arrow functions cannot occur inside logical predicates, and
            # skipping the lookahead there lets a parenthesized implication
            # left-hand side (`(a && b) => c`) parse as logic, not a lambda.
            if not in_pred and self._looks_like_arrow():
                return self._arrow_function(span)
            self._advance()
            inner = self._expression(in_pred)
            self._expect_punct(")")
            return inner
        if tok.is_punct("["):
            self._advance()
            elements: List[ast.Expression] = []
            while not self._at_punct("]"):
                elements.append(self._expression(in_pred))
                if not self._accept_punct(","):
                    break
            self._expect_punct("]")
            return ast.ArrayLit(elements=elements, span=span)
        if tok.is_punct("{"):
            self._advance()
            fields: List[Tuple[str, ast.Expression]] = []
            while not self._at_punct("}"):
                fname = self._expect_name()
                self._expect_punct(":")
                fields.append((fname, self._expression(in_pred)))
                if not self._accept_punct(","):
                    break
            self._expect_punct("}")
            return ast.ObjectLit(fields=fields, span=span)
        if tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            self._advance()
            return ast.VarRef(name=tok.text, span=span)
        raise self._error(f"unexpected token {tok.text!r} in expression")

    def _looks_like_arrow(self) -> bool:
        depth = 0
        idx = self.pos
        while idx < len(self.tokens):
            tok = self.tokens[idx]
            if tok.is_punct("("):
                depth += 1
            elif tok.is_punct(")"):
                depth -= 1
                if depth == 0:
                    nxt = self.tokens[idx + 1] if idx + 1 < len(self.tokens) else None
                    if nxt is None:
                        return False
                    # `(params) => ...` or `(params) : Ret => ...`
                    return nxt.is_punct("=>") or nxt.is_punct(":")
            elif tok.kind is TokenKind.EOF:
                return False
            idx += 1
        return False

    def _arrow_function(self, span: SourceSpan) -> ast.FunctionExpr:
        params = self._params()
        ret = None
        if self._accept_punct(":"):
            ret = self.parse_type()
        self._expect_punct("=>")
        if self._at_punct("{"):
            body = self._block()
        else:
            expr = self._expression()
            body = ast.Block(statements=[ast.Return(value=expr, span=span)], span=span)
        return ast.FunctionExpr(params=params, ret=ret, body=body, span=span)


# ---------------------------------------------------------------------------
# enum constant evaluation
# ---------------------------------------------------------------------------


def _const_eval(expr: ast.Expression, env: dict[str, int]) -> int:
    if isinstance(expr, ast.NumberLit):
        return int(expr.value)
    if isinstance(expr, ast.VarRef):
        if expr.name in env:
            return env[expr.name]
        raise ParseError(f"unknown enum member {expr.name!r}", expr.span)
    if isinstance(expr, ast.Member) and isinstance(expr.target, ast.VarRef):
        if expr.name in env:
            return env[expr.name]
        raise ParseError(f"unknown enum member {expr.name!r}", expr.span)
    if isinstance(expr, ast.Binary):
        left = _const_eval(expr.left, env)
        right = _const_eval(expr.right, env)
        ops = {"|": lambda a, b: a | b, "&": lambda a, b: a & b,
               "+": lambda a, b: a + b, "-": lambda a, b: a - b,
               "*": lambda a, b: a * b}
        if expr.op in ops:
            return ops[expr.op](left, right)
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -_const_eval(expr.operand, env)
    raise ParseError("enum member initializers must be integer constant "
                     "expressions", expr.span)


# ---------------------------------------------------------------------------
# public helpers
# ---------------------------------------------------------------------------


def parse_program(source: str, filename: str = "<input>") -> ast.Program:
    return Parser(source, filename).parse_program()


def parse_type(source: str) -> ast.TypeAnn:
    parser = Parser(source)
    result = parser.parse_type()
    if not parser._peek().kind is TokenKind.EOF:
        raise ParseError(f"trailing input after type: {parser._peek().text!r}",
                         parser._peek().span)
    return result


def parse_expression(source: str) -> ast.Expression:
    parser = Parser(source)
    return parser._expression(in_pred=True)
