"""The nanoTS lexer.

Hand-written scanner producing a list of :class:`repro.lang.tokens.Token`.
Supports line (``//``) and block (``/* */``) comments, decimal and
hexadecimal integer literals, floating point literals, and single- or
double-quoted strings with the usual escapes.
"""

from __future__ import annotations

from typing import List

from repro.errors import ParseError, SourceSpan
from repro.lang.tokens import KEYWORDS, PUNCTUATION, Token, TokenKind


class Lexer:
    def __init__(self, source: str, filename: str = "<input>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- helpers -------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos:self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return text

    def _span(self, start_line: int, start_col: int) -> SourceSpan:
        return SourceSpan(start_line, start_col, self.line, self.col, self.filename)

    def _error(self, message: str) -> ParseError:
        return ParseError(message, SourceSpan(self.line, self.col,
                                              self.line, self.col, self.filename))

    # -- scanning -------------------------------------------------------------

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                break
            tokens.append(self._next_token())
        tokens.append(Token(TokenKind.EOF, "",
                            SourceSpan(self.line, self.col, self.line, self.col,
                                       self.filename)))
        return tokens

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                        self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if self.pos >= len(self.source):
                    raise self._error("unterminated block comment")
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        start_line, start_col = self.line, self.col
        ch = self._peek()

        if ch.isdigit():
            return self._number(start_line, start_col)
        if ch.isalpha() or ch == "_" or ch == "$":
            return self._identifier(start_line, start_col)
        if ch in "'\"":
            return self._string(start_line, start_col)

        for punct in PUNCTUATION:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, self._span(start_line, start_col))

        raise self._error(f"unexpected character {ch!r}")

    def _number(self, start_line: int, start_col: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start:self.pos]
            return Token(TokenKind.NUMBER, text,
                         self._span(start_line, start_col), int(text, 16))
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
                self._peek(1).isdigit() or
                (self._peek(1) in "+-" and self._peek(2).isdigit())):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start:self.pos]
        value = float(text) if is_float else int(text)
        return Token(TokenKind.NUMBER, text, self._span(start_line, start_col), value)

    def _identifier(self, start_line: int, start_col: int) -> Token:
        start = self.pos
        while self._peek() and (self._peek().isalnum() or self._peek() in "_$"):
            self._advance()
        text = self.source[start:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, self._span(start_line, start_col), text)

    def _string(self, start_line: int, start_col: int) -> Token:
        quote = self._advance()
        chars: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated string literal")
            ch = self._advance()
            if ch == quote:
                break
            if ch == "\\":
                esc = self._advance()
                mapping = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\",
                           "'": "'", '"': '"', "0": "\0"}
                chars.append(mapping.get(esc, esc))
            else:
                chars.append(ch)
        text = "".join(chars)
        return Token(TokenKind.STRING, text, self._span(start_line, start_col), text)


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Tokenize ``source`` into a list of tokens (ending with EOF)."""
    return Lexer(source, filename).tokenize()
