"""The incremental workspace — the primary checking API.

A :class:`Workspace` holds *long-lived documents*: open a document once,
then push edited text through :meth:`Workspace.update` and only the work the
edit actually invalidated is redone.  One SMT solver (and its query cache)
is shared by every document for the lifetime of the workspace.

::

    ws = Workspace(CheckConfig())
    result = ws.open("a.rsc", source)          # cold check
    result = ws.update("a.rsc", edited)        # incremental re-check
    diags  = ws.diagnostics("a.rsc")           # last verdict, no work
    ws.close("a.rsc")

Three layers of reuse, from cheapest to deepest:

1. **Artifact cache** — per document, keyed by content hash (bounded by
   ``CheckConfig.document_cache_limit``).  Re-checking text the document has
   seen before (undo, revert, editor churn) returns the cached
   :class:`CheckResult` without touching the pipeline.
2. **Warm-started fixpoint** — constraints are partitioned per checkable
   declaration (function / method / constructor).  An edit that only
   changes declaration *bodies* re-seeds the liquid fixpoint with the
   kappas of the changed declarations, starting every unchanged kappa at
   its previous fixpoint value; the dependency-directed worklist then only
   revisits what a weakening actually reaches.
3. **Obligation reuse** — concrete verification conditions of unchanged
   declarations keep their previous verdicts (the formulas are identical),
   so no SMT query is issued for them at all.

Warm starts are *sound by construction*: the workspace falls back to a cold
solve whenever the signature environment changed (specs, type aliases,
class shapes, interfaces, enums, qualifier declarations, constructor
bodies), declarations were added or removed, a kappa is shared between
partitions, or the deterministic re-generation produced different kappa
names — every case in which reusing the previous solution could diverge
from a from-scratch check.  The test-suite asserts warm results are
bit-identical to cold checks on every fixture and benchmark.

The staged pipeline (parse → ssa → constraints → solve → verify) lives here
too; :class:`repro.core.session.Session` is a thin one-shot facade over it.
"""

from __future__ import annotations

import hashlib
import pathlib
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.errors import (
    Diagnostic,
    DiagnosticBag,
    ErrorKind,
    ParseError,
    Severity,
    SourceSpan,
)
from repro.lang import ast, parse_program
from repro.smt.backend import create_backend
from repro.smt.solver import Solver, SolverStats
from repro.ssa import ir
from repro.ssa.transform import SsaTransformer
from repro.core.cancel import CancelToken, CheckCancelled, checkpoint
from repro.core.checker import Checker
from repro.core.config import CheckConfig
from repro.core.fingerprint import signature_fingerprint, unit_fingerprints
from repro.core.liquid.fixpoint import (
    LiquidSolver,
    ObligationOutcome,
    Solution,
    kappa_occurrences,
)
from repro.core.liquid.qualifiers import QualifierPool
from repro.core.result import CheckResult, SolveStats, StageTimings
from repro.obs.trace import span as trace_span, stage_span
from repro.core.subtype import SubtypeSplitter
from repro.store import ArtifactStore, config_fingerprint, open_store


# ---------------------------------------------------------------------------
# stage artifacts
# ---------------------------------------------------------------------------


@dataclass
class ParseStage:
    """Output of :meth:`Workspace.parse`: the AST (or a parse diagnostic)."""

    source: str
    filename: str
    program: Optional[ast.Program]
    diagnostics: List[Diagnostic]
    timings: StageTimings

    @property
    def ok(self) -> bool:
        return self.program is not None


@dataclass
class SsaStage:
    """Output of :meth:`Workspace.ssa`: SSA/IRSC bodies keyed by function name.

    Purely inspectable — the checker re-derives SSA per callable while
    generating constraints — but handy for debugging transforms and for
    tooling that wants the intermediate representation.
    """

    parse: ParseStage
    functions: Dict[str, ir.IRFunction]
    timings: StageTimings

    @property
    def filename(self) -> str:
        return self.parse.filename


@dataclass
class ConstraintsStage:
    """Output of :meth:`Workspace.constraints`: the constraint system.

    The ``store_*`` fields carry the persistent-store bookkeeping of this
    check across the staged pipeline (all inert when no store is active):
    the document's artifact key, the solution/memos loaded for it, the
    recording sink mirroring every verdict the solver serves, and whether
    the solve stage replayed the stored solution."""

    parse: ParseStage
    checker: Checker
    diags: DiagnosticBag
    stats_base: SolverStats
    timings: StageTimings
    store_key: Optional[str] = None
    store_solution: Optional[Solution] = None
    store_memos_hit: bool = False
    store_recorded: Optional[Dict] = None
    store_plan_used: bool = False

    @property
    def num_subtypings(self) -> int:
        return len(self.checker.constraints.subtypings)

    @property
    def num_implications(self) -> int:
        return len(self.checker.constraints.implications)


@dataclass
class SolveStage:
    """Output of :meth:`Workspace.solve`: the liquid fixpoint solution."""

    constraints: ConstraintsStage
    liquid: LiquidSolver
    solution: Solution
    timings: StageTimings

    @property
    def solve_stats(self):
        """Typed fixpoint-engine counters for this solve run."""
        return self.liquid.stats


# ---------------------------------------------------------------------------
# incremental bookkeeping
# ---------------------------------------------------------------------------


@dataclass
class WarmPlan:
    """What an edit invalidated, and what can be carried over."""

    previous: Solution
    dirty_kappas: Set[str]
    dirty_owners: Set[str]
    reused_owners: Set[str]
    #: owner -> previous obligation outcomes, in emission order
    reuse_concrete: Dict[str, List[ObligationOutcome]]


@dataclass
class Snapshot:
    """Everything worth keeping from one check of one document version.

    ``partition_local`` records that the constraint system which *produced*
    ``solution`` kept every kappa inside its own partition — a warm start
    may only reuse a solution whose producing system had that property,
    otherwise a stale cross-partition weakening could be carried over.
    """

    content_hash: str
    result: CheckResult
    solution: Optional[Solution] = None
    signature_fp: Optional[str] = None
    unit_fps: Dict[str, str] = field(default_factory=dict)
    kappas_by_owner: Dict[str, List[str]] = field(default_factory=dict)
    concrete_by_owner: Dict[str, List[ObligationOutcome]] = \
        field(default_factory=dict)
    partition_local: bool = False

    @property
    def warmable(self) -> bool:
        return (self.solution is not None and self.signature_fp is not None
                and self.partition_local)


class Document:
    """One open document: its text plus a bounded snapshot cache.

    ``last_good`` is the most recent *warmable* snapshot — kept separately
    from ``current`` so a transient syntax error mid-edit does not force
    the next successful check back to a cold solve.
    """

    def __init__(self, uri: str) -> None:
        self.uri = uri
        self.text: str = ""
        self.version = 0
        self.current: Optional[Snapshot] = None
        self.last_good: Optional[Snapshot] = None
        self._snapshots: "OrderedDict[str, Snapshot]" = OrderedDict()

    def cached(self, content_hash: str) -> Optional[Snapshot]:
        snapshot = self._snapshots.get(content_hash)
        if snapshot is not None:
            self._snapshots.move_to_end(content_hash)
        return snapshot

    def store(self, snapshot: Snapshot, limit: int) -> None:
        self._snapshots[snapshot.content_hash] = snapshot
        self._snapshots.move_to_end(snapshot.content_hash)
        while len(self._snapshots) > limit:
            self._snapshots.popitem(last=False)


# ---------------------------------------------------------------------------
# the workspace
# ---------------------------------------------------------------------------


class Workspace:
    """Long-lived documents over one shared solver, checked incrementally."""

    def __init__(self, config: Optional[CheckConfig] = None,
                 solver: Optional[Solver] = None) -> None:
        self.config = config or CheckConfig()
        opts = self.config.solver
        self.solver = solver or create_backend(
            opts.backend,
            max_theory_iterations=opts.max_theory_iterations,
            cache_results=opts.cache_results,
            cache_size_limit=opts.cache_size_limit,
            smt_mode=self.config.smt_mode,
            context_cache_limit=opts.context_cache_limit)
        self._documents: Dict[str, Document] = {}
        self.checks_run = 0
        self.checks_cancelled = 0
        self.artifact_cache_hits = 0
        #: persistent cross-process artifact store (None when disabled)
        with trace_span("store.open", "store",
                        mode=self.config.store_mode) as sp:
            self.store = open_store(self.config)
            sp.note(enabled=self.store is not None)
        self._store_fp = (config_fingerprint(self.config)
                          if self.store is not None else None)

    # -- document lifecycle ------------------------------------------------

    def open(self, uri: str, text: Optional[str] = None,
             token: Optional[CancelToken] = None) -> CheckResult:
        """Open (or re-open) a document and check it.

        With ``text=None`` the document is read from ``uri`` as a path.
        Re-opening an already-open document behaves like :meth:`update`.
        A ``token`` makes the check cancellable: the pipeline polls it at
        stage boundaries (and inside the solve/verify loops) and raises
        :class:`repro.core.cancel.CheckCancelled` without recording a
        snapshot or writing to the artifact store — the document's previous
        verdict stays current.
        """
        if text is None:
            text = pathlib.Path(uri).read_text()
        document = self._documents.get(uri)
        if document is None:
            document = Document(uri)
            self._documents[uri] = document
        return self._check_document(document, text, token)

    def update(self, uri: str, text: Optional[str] = None,
               token: Optional[CancelToken] = None) -> CheckResult:
        """Replace an open document's text and re-check incrementally."""
        document = self._documents.get(uri)
        if document is None:
            raise KeyError(f"document not open: {uri!r}")
        if text is None:
            text = pathlib.Path(uri).read_text()
        return self._check_document(document, text, token)

    def close(self, uri: str) -> None:
        """Forget a document and every cached artifact for it."""
        if uri not in self._documents:
            raise KeyError(f"document not open: {uri!r}")
        del self._documents[uri]

    def diagnostics(self, uri: str) -> List[Diagnostic]:
        """The open document's current diagnostics (no re-check)."""
        return list(self.result(uri).diagnostics)

    def result(self, uri: str) -> CheckResult:
        """The open document's current :class:`CheckResult` (no re-check)."""
        document = self._documents.get(uri)
        if document is None or document.current is None:
            raise KeyError(f"document not open: {uri!r}")
        return document.current.result

    def documents(self) -> List[str]:
        """URIs of the open documents, in opening order."""
        return list(self._documents)

    @property
    def cache_size(self) -> int:
        return self.solver.cache_size

    def reset_cache(self) -> None:
        """Drop the shared solver's query cache (statistics are kept)."""
        self.solver.clear_cache()

    # -- the incremental check ---------------------------------------------

    def _check_document(self, document: Document, text: str,
                        token: Optional[CancelToken] = None) -> CheckResult:
        try:
            with trace_span("pipeline.check", "pipeline",
                            uri=document.uri):
                return self._check_document_inner(document, text, token)
        except CheckCancelled:
            # Counted here (not at the inner stage boundaries) so a check
            # aborted before it even built constraints still registers.
            self.checks_cancelled += 1
            raise
        except RecursionError:
            # The logic-layer traversals are iterative, but a pathologically
            # nested *input* can still exhaust the interpreter stack inside
            # the parser or the embedding.  Surface a diagnostic instead of
            # crashing the workspace; nothing is cached for this text.
            self.checks_run += 1
            diag = Diagnostic(
                ErrorKind.INTERNAL,
                "expression nesting is too deep for the checker "
                "(interpreter recursion limit reached); flatten the "
                "expression or split the declaration",
                SourceSpan(filename=document.uri),
                code="RSC-INT-001")
            return CheckResult(diagnostics=[diag], filename=document.uri)

    def _check_document_inner(self, document: Document, text: str,
                              token: Optional[CancelToken] = None
                              ) -> CheckResult:
        document.version += 1
        document.text = text
        checkpoint(token)
        content_hash = hashlib.sha256(text.encode()).hexdigest()
        if self.config.incremental:
            hit = document.cached(content_hash)
            if hit is not None:
                self.artifact_cache_hits += 1
                document.current = hit
                if hit.warmable:
                    document.last_good = hit
                return self._cache_hit_result(hit)
        parsed = self.parse(text, document.uri)
        if not parsed.ok:
            self.checks_run += 1
            result = CheckResult(diagnostics=list(parsed.diagnostics),
                                 time_seconds=parsed.timings.total,
                                 filename=document.uri,
                                 timings=parsed.timings)
            snapshot = Snapshot(content_hash, result)
        else:
            checkpoint(token)
            cons = self.constraints(parsed)
            try:
                checkpoint(token)
                # The fingerprint/partition bookkeeping only matters when
                # warm starts are possible at all.
                warm_capable = (self.config.incremental
                                and self.config.fixpoint_strategy
                                == "worklist")
                sig_fp: Optional[str] = None
                unit_fps: Dict[str, str] = {}
                local = False
                plan = None
                if warm_capable:
                    sig_fp = signature_fingerprint(parsed.program)
                    unit_fps = unit_fingerprints(parsed.program)
                    local = _partition_local(cons.checker)
                if warm_capable and local:
                    plan = self._plan(document.last_good, sig_fp, unit_fps,
                                      cons)
                solved = self.solve(cons, plan, token)
                if plan is None and not cons.store_plan_used:
                    solved.liquid.stats.declarations_rechecked = len(unit_fps)
                checkpoint(token)
                result, outcomes = self._verify(solved, plan, token)
            except CheckCancelled:
                # A cancelled check must leave no trace: detach the store
                # recording sink so nothing is written back and unwind —
                # the previous snapshot stays current.
                self._store_abort(cons)
                raise
            snapshot = Snapshot(
                content_hash, result,
                solution=solved.solution,
                signature_fp=sig_fp,
                unit_fps=unit_fps,
                kappas_by_owner=_kappas_by_owner(cons.checker),
                concrete_by_owner=_group_by_owner(outcomes),
                partition_local=local)
        if self.config.incremental:
            # With incrementality off nothing ever reads the snapshot
            # cache; storing would only retain dead CheckResults/Solutions.
            document.store(snapshot, self.config.document_cache_limit)
        document.current = snapshot
        if snapshot.warmable:
            document.last_good = snapshot
        return snapshot.result

    def _plan(self, previous: Optional[Snapshot], sig_fp: str,
              unit_fps: Dict[str, str],
              cons: ConstraintsStage) -> Optional[WarmPlan]:
        """Decide what the edit invalidated; ``None`` means cold solve.

        ``previous`` is the last *warmable* snapshot (its producing system
        was partition-local), and the caller has already established that
        the new system is partition-local too — the warm-soundness
        precondition of :meth:`LiquidSolver.warm_solution` therefore holds
        on both sides of the reuse.
        """
        if previous is None or not previous.warmable:
            return None
        if previous.signature_fp != sig_fp:
            return None
        if set(unit_fps) != set(previous.unit_fps):
            return None  # declarations added or removed

        checker = cons.checker
        owners = checker.kappas.owners_of()
        dirty_owners = {owner for owner, fp in unit_fps.items()
                        if previous.unit_fps.get(owner) != fp}
        kappas_by_owner = _kappas_by_owner(checker)
        new_concrete = _group_by_owner(
            imp for imp in checker.constraints.implications
            if LiquidSolver._goal_kappa(imp) is None)

        reuse_concrete: Dict[str, List[ObligationOutcome]] = {}
        for owner in unit_fps:
            if owner in dirty_owners:
                continue
            # Deterministic re-generation must have reproduced the same
            # kappa names and the same number of concrete obligations;
            # anything else demotes the declaration to dirty.
            if kappas_by_owner.get(owner, []) != \
                    previous.kappas_by_owner.get(owner, []):
                dirty_owners.add(owner)
                continue
            prev_outcomes = previous.concrete_by_owner.get(owner, [])
            if len(new_concrete.get(owner, [])) != len(prev_outcomes):
                dirty_owners.add(owner)
                continue
            reuse_concrete[owner] = prev_outcomes

        dirty_kappas = {kappa for kappa, owner in owners.items()
                        if owner is None or owner in dirty_owners
                        or owner not in unit_fps}
        reused_owners = set(unit_fps) - dirty_owners
        return WarmPlan(previous=previous.solution,
                        dirty_kappas=dirty_kappas,
                        dirty_owners=dirty_owners,
                        reused_owners=reused_owners,
                        reuse_concrete=reuse_concrete)

    def _cache_hit_result(self, snapshot: Snapshot) -> CheckResult:
        """The verdict for text the document has already checked: the cached
        diagnostics, but with this-check counters zeroed — a cache hit does
        no solver work, and reporting the historical query count would make
        reuse look like effort."""
        solve = None
        if snapshot.result.solve_stats is not None:
            solve = SolveStats(strategy=snapshot.result.solve_stats.strategy)
            solve.declarations_reused = len(snapshot.unit_fps)
        stats = None if snapshot.result.stats is None else SolverStats()
        return replace(snapshot.result, stats=stats, solve_stats=solve,
                       time_seconds=0.0, timings=StageTimings())

    # -- staged pipeline ---------------------------------------------------

    def parse(self, source: str, filename: str = "<input>") -> ParseStage:
        """Stage 1: lex and parse ``source`` into an AST."""
        timings = StageTimings()
        program: Optional[ast.Program] = None
        diagnostics: List[Diagnostic] = []
        with stage_span(timings, "parse", module=filename):
            try:
                program = parse_program(source, filename)
            except ParseError as exc:
                span = exc.span
                if span.filename != filename:
                    # a ParseError raised without a span would otherwise
                    # lose the file being checked
                    span = span.with_filename(filename)
                diagnostics.append(Diagnostic(ErrorKind.PARSE, exc.message,
                                              span, code="RSC-PARSE-001"))
            except RecursionError:
                # The recursive-descent parser follows the source's nesting
                # depth; pathological inputs must surface as a diagnostic,
                # not an interpreter crash.
                diagnostics.append(Diagnostic(
                    ErrorKind.INTERNAL,
                    "expression nesting is too deep for the checker "
                    "(interpreter recursion limit reached); flatten the "
                    "expression or split the declaration",
                    SourceSpan(filename=filename), code="RSC-INT-001"))
        return ParseStage(source, filename, program, diagnostics, timings)

    def ssa(self, parsed: ParseStage) -> SsaStage:
        """Stage 2: SSA-convert every callable body (inspectable IRSC)."""
        if parsed.program is None:
            raise ValueError("cannot run the ssa stage on a failed parse")
        functions: Dict[str, ir.IRFunction] = {}
        with stage_span(parsed.timings, "ssa", module=parsed.filename):
            for decl in parsed.program.declarations:
                if isinstance(decl, ast.FunctionDecl) and decl.body is not None:
                    functions[decl.name] = SsaTransformer().function(decl)
                elif isinstance(decl, ast.ClassDecl):
                    for method in decl.methods:
                        if method.body is None:
                            continue
                        wrapped = ast.FunctionDecl(
                            name=f"{decl.name}.{method.sig.name}",
                            params=method.sig.params, ret=method.sig.ret,
                            body=method.body, span=method.sig.span)
                        functions[wrapped.name] = \
                            SsaTransformer().function(wrapped)
        return SsaStage(parsed, functions, parsed.timings)

    def constraints(self, stage: Union[ParseStage, SsaStage]) -> ConstraintsStage:
        """Stage 3: generate and flatten the subtyping constraints."""
        parsed = stage.parse if isinstance(stage, SsaStage) else stage
        if parsed.program is None:
            raise ValueError("cannot generate constraints on a failed parse")
        store_key, store_solution, memos_hit, recorded = \
            self._store_begin(parsed)
        stats_base = self.solver.stats.copy()
        with stage_span(parsed.timings, "constraints",
                        module=parsed.filename):
            try:
                diags = DiagnosticBag()
                diags.extend(parsed.diagnostics)
                checker = Checker(parsed.program, diags, self.solver,
                                  pool=self._new_pool())
                checker.run()
                splitter = SubtypeSplitter(checker.table, checker.constraints)
                for constraint in list(checker.constraints.subtypings):
                    splitter.split(constraint)
            except BaseException:
                if recorded is not None:
                    self.solver.stop_recording(recorded)
                raise
        return ConstraintsStage(parsed, checker, diags, stats_base,
                                parsed.timings, store_key=store_key,
                                store_solution=store_solution,
                                store_memos_hit=memos_hit,
                                store_recorded=recorded)

    def _store_begin(self, parsed: ParseStage):
        """Persistent store, read side: replay a previous process's verdict
        memos into the solver cache *before* constraint generation (dead-code
        satisfiability checks run during it), fetch the stored kappa
        solution, and attach a recording sink mirroring every verdict this
        check serves, for write-back.  Keyed by content hash, so it is
        skipped for programmatically built ASTs with no source text."""
        if self.store is None or not parsed.source:
            return None, None, False, None
        content_hash = hashlib.sha256(parsed.source.encode()).hexdigest()
        store_key = ArtifactStore.document_key(content_hash, self._store_fp)
        memos = self.store.load_verdicts(store_key)
        memos_hit = False
        if memos and hasattr(self.solver, "seed_cache"):
            memos_hit = self.solver.seed_cache(memos) > 0
        store_solution = self.store.load_solution(store_key)
        recorded: Optional[Dict] = None
        if (not self.store.readonly
                and hasattr(self.solver, "record_queries")):
            recorded = {}
            self.solver.record_queries(recorded)
        return store_key, store_solution, memos_hit, recorded

    def solve(self, stage: ConstraintsStage,
              plan: Optional[WarmPlan] = None,
              token: Optional[CancelToken] = None) -> SolveStage:
        """Stage 4: liquid fixpoint — infer the kappa refinements.

        With a :class:`WarmPlan` the fixpoint starts from the previous
        solution and only the dirty partitions' kappas are re-seeded.
        """
        checker = stage.checker
        with stage_span(stage.timings, "solve",
                        module=stage.parse.filename):
            if plan is None:
                plan = self._store_plan(stage)
            liquid = LiquidSolver(
                self.solver, checker.pool, checker.kappas,
                max_iterations=self.config.max_fixpoint_iterations,
                strategy=self.config.fixpoint_strategy,
                jobs=self.config.jobs)
            if plan is not None:
                solution = liquid.solve(checker.constraints.implications,
                                        previous=plan.previous,
                                        dirty_kappas=plan.dirty_kappas,
                                        cancel=token)
                liquid.stats.declarations_rechecked = len(plan.dirty_owners)
                liquid.stats.declarations_reused = len(plan.reused_owners)
            else:
                solution = liquid.solve(checker.constraints.implications,
                                        cancel=token)
        return SolveStage(stage, liquid, solution, stage.timings)

    def _store_plan(self, stage: ConstraintsStage) -> Optional[WarmPlan]:
        """A stored solution for this exact (content, config) key *is* the
        fixpoint this deterministic pipeline would recompute: replay it with
        an empty dirty set, so the worklist never runs.  Sound without
        partition-locality — nothing is carried across an edit, the key
        equality is the whole-document match — but the replay still flows
        through the ordinary warm-start machinery (and through
        :meth:`LiquidSolver.check_concrete` against the seeded verdict
        memos).  A kappa-name mismatch (hash collision, solver divergence)
        demotes the hit to a cold solve."""
        if (stage.store_solution is None
                or self.config.fixpoint_strategy != "worklist"):
            return None
        checker = stage.checker
        if set(stage.store_solution) != set(checker.kappas.kappas):
            return None
        owners = {owner for owner in checker.kappas.owners_of().values()
                  if owner is not None}
        stage.store_plan_used = True
        return WarmPlan(previous=stage.store_solution, dirty_kappas=set(),
                        dirty_owners=set(), reused_owners=owners,
                        reuse_concrete={})

    def verify(self, stage: SolveStage,
               plan: Optional[WarmPlan] = None,
               token: Optional[CancelToken] = None) -> CheckResult:
        """Stage 5: discharge the concrete obligations, build the verdict."""
        result, _outcomes = self._verify(stage, plan, token)
        return result

    def _verify(self, stage: SolveStage, plan: Optional[WarmPlan],
                token: Optional[CancelToken] = None
                ) -> Tuple[CheckResult, List[ObligationOutcome]]:
        cons = stage.constraints
        checker = cons.checker
        with stage_span(stage.timings, "verify",
                        module=cons.parse.filename):
            if plan is None:
                results = stage.liquid.check_concrete(
                    checker.constraints.implications, stage.solution,
                    cancel=token)
            else:
                results = self._verify_selective(stage, plan)
            for outcome in results:
                if outcome.ok:
                    continue
                cons.diags.error(outcome.implication.kind, outcome.message(),
                                 outcome.span, code=outcome.code)
        diagnostics = list(cons.diags)
        if self.config.warnings_as_errors:
            diagnostics = [replace(d, severity=Severity.ERROR)
                           if d.severity is Severity.WARNING else d
                           for d in diagnostics]
        self.checks_run += 1
        result = CheckResult(
            diagnostics=diagnostics,
            checker_stats=checker.stats,
            stats=self.solver.stats.delta_since(cons.stats_base),
            solve_stats=stage.solve_stats,
            kappa_solution=stage.solution,
            num_constraints=len(checker.constraints.subtypings),
            num_implications=len(checker.constraints.implications),
            num_obligations_checked=len(results),
            time_seconds=stage.timings.total,
            filename=cons.parse.filename,
            timings=stage.timings,
        )
        self._store_end(stage)
        return result, results

    def _store_abort(self, cons: ConstraintsStage) -> None:
        """Cancelled-check store teardown: detach the recording sink and
        drop the key so neither the solution nor the verdict memos of the
        aborted check can ever reach the persistent store."""
        if cons.store_recorded is not None:
            self.solver.stop_recording(cons.store_recorded)
        cons.store_recorded = None
        cons.store_key = None

    def _store_end(self, stage: SolveStage) -> None:
        """Persistent store, write side: detach the recording sink and write
        back anything short of a full hit (a full hit's artifacts are
        already on disk, byte-identical)."""
        cons = stage.constraints
        if cons.store_recorded is not None:
            self.solver.stop_recording(cons.store_recorded)
        if (cons.store_key is None or self.store is None
                or self.store.readonly):
            cons.store_recorded = None
            return
        if not cons.store_plan_used:
            self.store.save_solution(cons.store_key, stage.solution)
        recorded = cons.store_recorded or {}
        if recorded and not (cons.store_plan_used and cons.store_memos_hit):
            self.store.save_verdicts(cons.store_key, recorded.items())
        # Once written (or skipped), a second verify() of the same stage
        # must not write again.
        cons.store_key = None
        cons.store_recorded = None

    def _verify_selective(self, stage: SolveStage,
                          plan: WarmPlan) -> List[ObligationOutcome]:
        """Re-check only dirty partitions' concrete obligations; unchanged
        partitions keep their previous verdicts (identical formulas), carried
        onto the freshly generated implications so spans stay current."""
        checker = stage.constraints.checker
        reuse_cursor = {owner: iter(outcomes)
                        for owner, outcomes in plan.reuse_concrete.items()}
        results: List[ObligationOutcome] = []
        for imp in checker.constraints.implications:
            if LiquidSolver._goal_kappa(imp) is not None:
                continue
            cursor = reuse_cursor.get(imp.owner)
            if cursor is not None:
                prev = next(cursor)
                results.append(ObligationOutcome(imp, prev.ok, prev.goal))
            else:
                results.extend(
                    stage.liquid.check_concrete([imp], stage.solution))
        return results

    # -- helpers -----------------------------------------------------------

    def _new_pool(self) -> QualifierPool:
        if self.config.qualifier_set == "harvested":
            return QualifierPool(qualifiers=[])
        return QualifierPool()


def _partition_local(checker: Checker) -> bool:
    """True when no implication mentions a kappa outside its own partition
    (and every mentioned kappa is registered and owned) — the structural
    property that makes per-partition solution reuse sound."""
    owners = checker.kappas.owners_of()
    for imp in checker.constraints.implications:
        mentioned = set(kappa_occurrences(imp.goal))
        for hyp in imp.hyps:
            mentioned |= kappa_occurrences(hyp)
        for kappa in mentioned:
            if owners.get(kappa) is None or owners[kappa] != imp.owner:
                return False
    return True


def _kappas_by_owner(checker: Checker) -> Dict[str, List[str]]:
    grouped: Dict[str, List[str]] = {}
    for name, info in checker.kappas.kappas.items():
        if info.owner is not None:
            grouped.setdefault(info.owner, []).append(name)
    return grouped


def _group_by_owner(items) -> Dict[str, List]:
    """Group implications/outcomes by their (non-None) owner, in order."""
    grouped: Dict[str, List] = {}
    for item in items:
        owner = item.owner if hasattr(item, "owner") else \
            item.implication.owner
        if owner is None:
            continue
        grouped.setdefault(owner, []).append(item)
    return grouped
