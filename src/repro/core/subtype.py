"""Structural decomposition of subtyping constraints into implications.

Implements the subtyping judgment of section 3.2: refinement implication at
the leaves (discharged by SMT or by liquid fixpoint when kappas are
involved), the usual co-/contra-variance for functions, nominal width
subtyping for classes/interfaces, element subtyping for arrays (invariant
when the target is mutable), and union/intersection handling.

A *base-type mismatch* does not raise an error directly: following two-phase
typing (section 2.1.2) it becomes a dead-code obligation — the constraint
holds only if the environment is inconsistent, i.e. this occurrence is
unreachable under the overload being checked.
"""

from __future__ import annotations

from repro.errors import ErrorKind
from repro.logic.terms import BoolLit, Var, VALUE_VAR, conjuncts
from repro.rtypes import Mutability
from repro.rtypes.types import (
    RType,
    TArray,
    TFun,
    TInter,
    TObject,
    TPrim,
    TRef,
    TUnion,
    TVar,
    embed,
    subst_terms,
    unpack_exists,
)
from repro.core.classtable import ClassTable
from repro.core.constraints import ConstraintSet, SubC
from repro.core.environment import Env


class SubtypeSplitter:
    """Turns SubC constraints into flat implications."""

    def __init__(self, table: ClassTable, constraints: ConstraintSet) -> None:
        self.table = table
        self.constraints = constraints

    def split_all(self) -> None:
        """Flatten every pending subtyping constraint into implications."""
        pending = self.constraints.subtypings
        index = 0
        while index < len(pending):
            self.split(pending[index])
            index += 1

    # -- one constraint ------------------------------------------------------------

    def split(self, c: SubC) -> None:
        env, lhs, rhs = c.env, c.lhs, c.rhs

        # Open existential binders on either side into the environment.
        binders, lhs = unpack_exists(lhs)
        for name, bound in binders:
            env = env.bind(name, bound)
        rbinders, rhs = unpack_exists(rhs)
        for name, bound in rbinders:
            env = env.bind(name, bound)

        if isinstance(rhs, TPrim) and rhs.name in ("any", "top"):
            self._leaf(env, lhs, rhs, c)
            return
        if isinstance(lhs, TPrim) and lhs.name in ("any", "bot"):
            self._leaf(env, lhs, rhs, c)
            return

        if isinstance(lhs, TUnion):
            for member in lhs.members:
                self.split(SubC(env, _carry(member, lhs), rhs, c.reason, c.span,
                                c.kind, c.code, c.owner))
            return
        if isinstance(rhs, TUnion):
            target = _matching_member(lhs, rhs)
            if target is None:
                self._mismatch(env, lhs, rhs, c)
                return
            self.split(SubC(env, lhs, _carry(target, rhs), c.reason, c.span,
                            c.kind, c.code, c.owner))
            return

        if isinstance(lhs, TPrim) and isinstance(rhs, TPrim):
            if lhs.name == rhs.name or rhs.name in ("any", "top") or \
                    lhs.name in ("bot",):
                self._leaf(env, lhs, rhs, c)
            else:
                self._mismatch(env, lhs, rhs, c)
            return

        if isinstance(lhs, TVar) and isinstance(rhs, TVar):
            if lhs.name == rhs.name:
                self._leaf(env, lhs, rhs, c)
            else:
                self._mismatch(env, lhs, rhs, c)
            return
        if isinstance(lhs, TVar) or isinstance(rhs, TVar):
            # An uninstantiated type variable against a concrete type: only
            # the refinements can be compared.
            self._leaf(env, lhs, rhs, c)
            return

        if isinstance(lhs, TArray) and isinstance(rhs, TArray):
            self._split_array(env, lhs, rhs, c)
            return

        if isinstance(lhs, TRef) and isinstance(rhs, TRef):
            rhs_info = self.table.classes.get(rhs.name)
            if self.table.is_subtype_name(lhs.name, rhs.name):
                if not lhs.mutability.is_subtype_of(rhs.mutability):
                    self.constraints.add_dead_code(
                        env, f"mutability {lhs.mutability} is not compatible with "
                             f"{rhs.mutability} ({c.reason})", c.span,
                        ErrorKind.MUTABILITY, "RSC-MUT-002", owner=c.owner)
                self._leaf(env, lhs, rhs, c)
            elif rhs_info is not None and rhs_info.is_interface:
                # A class may be used where a structurally-compatible interface
                # is expected (section 4.1: `PointC <= PointI`).
                self._split_structural_ref(env, lhs, rhs, c)
            else:
                self._mismatch(env, lhs, rhs, c)
            return

        if isinstance(lhs, (TRef, TObject)) and isinstance(rhs, TObject):
            self._split_object(env, lhs, rhs, c)
            return
        if isinstance(lhs, TObject) and isinstance(rhs, TRef):
            self._split_object_nominal(env, lhs, rhs, c)
            return

        if isinstance(lhs, TFun) and isinstance(rhs, TFun):
            self._split_fun(env, lhs, rhs, c)
            return
        if isinstance(lhs, TInter) and isinstance(rhs, TFun):
            member = _pick_overload(lhs, rhs.arity())
            self._split_fun(env, member, rhs, c)
            return
        if isinstance(lhs, TFun) and isinstance(rhs, TInter):
            for member in rhs.members:
                self._split_fun(env, lhs, member, c)
            return
        if isinstance(lhs, TInter) and isinstance(rhs, TInter):
            for member in rhs.members:
                self.split(SubC(env, lhs, member, c.reason, c.span, c.kind,
                                c.code, c.owner))
            return

        self._mismatch(env, lhs, rhs, c)

    # -- helpers ----------------------------------------------------------------------

    def _leaf(self, env: Env, lhs: RType, rhs: RType, c: SubC) -> None:
        """Emit the refinement implication ``[[env]] /\\ p_lhs => p_rhs``."""
        if rhs.pred.is_true():
            return
        hyps = env.hypotheses()
        hyps.append(embed(lhs, VALUE_VAR))
        for goal in conjuncts(rhs.pred):
            self.constraints.add_implication(hyps, goal, c.reason, c.span, c.kind,
                                             c.code, owner=c.owner)

    def _mismatch(self, env: Env, lhs: RType, rhs: RType, c: SubC) -> None:
        """Two-phase typing: a base-type mismatch is acceptable exactly when
        the context is dead code, i.e. the environment together with the
        value's own refinement is inconsistent."""
        hyps = env.hypotheses()
        hyps.append(embed(lhs, VALUE_VAR))
        self.constraints.add_implication(
            hyps, BoolLit(False),
            f"{c.reason}: incompatible types {lhs.base_name()!r} and "
            f"{rhs.base_name()!r}", c.span, c.kind, c.code, owner=c.owner)

    def _split_array(self, env: Env, lhs: TArray, rhs: TArray, c: SubC) -> None:
        if not lhs.mutability.is_subtype_of(rhs.mutability):
            self.constraints.add_dead_code(
                env, f"array mutability {lhs.mutability} is not compatible with "
                     f"{rhs.mutability} ({c.reason})", c.span, ErrorKind.MUTABILITY,
                "RSC-MUT-002", owner=c.owner)
        self._leaf(env, lhs, rhs, c)
        self.split(SubC(env, lhs.elem, rhs.elem, c.reason + " (array elements)",
                        c.span, c.kind, c.code, c.owner))
        if rhs.mutability.allows_write:
            # writes through the supertype view flow back: invariance
            self.split(SubC(env, rhs.elem, lhs.elem,
                            c.reason + " (mutable array elements, contravariant)",
                            c.span, c.kind, c.code, c.owner))

    def _split_object(self, env: Env, lhs: RType, rhs: TObject, c: SubC) -> None:
        self._leaf(env, lhs, rhs, c)
        lhs_fields = {}
        if isinstance(lhs, TObject):
            lhs_fields = lhs.fields
        elif isinstance(lhs, TRef):
            lhs_fields = {name: (Mutability.MUTABLE if not info.immutable
                                 else Mutability.IMMUTABLE, info.type)
                          for name, info in self.table.fields_of(lhs.name).items()}
        for name, (_mut, ftype) in rhs.fields.items():
            if name not in lhs_fields:
                self._mismatch(env, lhs, rhs, c)
                return
            self.split(SubC(env, lhs_fields[name][1], ftype,
                            c.reason + f" (field {name!r})", c.span, c.kind,
                            c.code, c.owner))

    def _split_structural_ref(self, env: Env, lhs: TRef, rhs: TRef, c: SubC) -> None:
        """Width subtyping of a class against a structurally-compatible
        interface: every (non-optional) interface field must exist on the
        class with a subtype."""
        lhs_fields = self.table.fields_of(lhs.name)
        for name, fld in self.table.fields_of(rhs.name).items():
            if fld.optional:
                continue
            if name not in lhs_fields:
                self._mismatch(env, lhs, rhs, c)
                return
            self.split(SubC(env, lhs_fields[name].type, fld.type,
                            c.reason + f" (field {name!r})", c.span, c.kind,
                            c.code, c.owner))
        self._leaf(env, lhs, rhs, c)

    def _split_object_nominal(self, env: Env, lhs: TObject, rhs: TRef, c: SubC) -> None:
        """A structural object used where a nominal interface is expected."""
        info = self.table.classes.get(rhs.name)
        if info is None or not info.is_interface:
            self._mismatch(env, lhs, rhs, c)
            return
        for name, fld in self.table.fields_of(rhs.name).items():
            if fld.optional:
                continue
            if name not in lhs.fields:
                self._mismatch(env, lhs, rhs, c)
                return
            self.split(SubC(env, lhs.fields[name][1], fld.type,
                            c.reason + f" (field {name!r})", c.span, c.kind,
                            c.code, c.owner))
        self._leaf(env, lhs, rhs, c)

    def _split_fun(self, env: Env, lhs: TFun, rhs: TFun, c: SubC) -> None:
        if lhs.arity() > rhs.arity():
            self._mismatch(env, lhs, rhs, c)
            return
        # Bind the supertype's parameters in the environment, then check
        # parameters contravariantly and the result covariantly, renaming the
        # subtype's dependent parameter names to the supertype's.
        inner = env
        renaming = {}
        for lp, rp in zip(lhs.params, rhs.params):
            renaming[lp.name] = Var(rp.name)
        for rp in rhs.params:
            inner = inner.bind(rp.name, rp.type)
        for lp, rp in zip(lhs.params, rhs.params):
            lhs_param = subst_terms(lp.type, renaming)
            self.split(SubC(inner, rp.type, lhs_param,
                            c.reason + f" (parameter {rp.name!r})", c.span,
                            c.kind, c.code, c.owner))
        lhs_ret = subst_terms(lhs.ret, renaming)
        self.split(SubC(inner, lhs_ret, rhs.ret, c.reason + " (result)",
                        c.span, c.kind, c.code, c.owner))


def _carry(member: RType, parent: RType) -> RType:
    """Push the union's own refinement onto the member being compared."""
    from repro.rtypes.types import refine
    return refine(member, parent.pred)


def _matching_member(lhs: RType, union: TUnion) -> RType | None:
    base = lhs.base_name()
    for member in union.members:
        if member.base_name() == base:
            return member
    for member in union.members:
        if member.base_name() in ("any", "top"):
            return member
    return None


def _pick_overload(inter: TInter, arity: int) -> TFun:
    for member in inter.members:
        if member.arity() == arity:
            return member
    return inter.members[0]
