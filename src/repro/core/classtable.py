"""The class table: global program information used throughout checking.

Collects everything declared at the top level of a program — type aliases,
enums, interfaces, classes, overload specs, ambient ``declare`` bindings,
functions and extra liquid qualifiers — and offers resolved views (class
invariants, field/method lookup including inheritance, the interface
hierarchy used for downcast verification, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import DiagnosticBag, ErrorKind
from repro.lang import ast
from repro.logic import builtins
from repro.logic.terms import Expr, StrLit, conj, substitute
from repro.rtypes import Mutability, RType, TFun


@dataclass
class FieldInfo:
    name: str
    type: RType
    immutable: bool
    optional: bool = False


@dataclass
class MethodInfo:
    name: str
    signature: TFun
    receiver_mutability: Mutability
    decl: Optional[ast.MethodDecl] = None


@dataclass
class ClassInfo:
    name: str
    tparams: List[str] = field(default_factory=list)
    extends: Optional[str] = None
    implements: List[str] = field(default_factory=list)
    fields: Dict[str, FieldInfo] = field(default_factory=dict)
    methods: Dict[str, MethodInfo] = field(default_factory=dict)
    constructor: Optional[MethodInfo] = None
    ctor_field_params: Dict[str, str] = field(default_factory=dict)
    is_interface: bool = False
    decl: Optional[ast.Declaration] = None


class ClassTable:
    """Global, name-indexed program information."""

    def __init__(self) -> None:
        self.aliases: Dict[str, Tuple[List[str], ast.TypeAnn]] = {}
        self.enums: Dict[str, Dict[str, int]] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.specs: Dict[str, List[ast.TypeAnn]] = {}
        self.declares: Dict[str, ast.TypeAnn] = {}
        self.functions: Dict[str, ast.FunctionDecl] = {}
        self.qualifiers: List[ast.Expression] = []
        self._invariant_stack: List[str] = []

    # -- construction ----------------------------------------------------------

    @staticmethod
    def from_program(program: ast.Program, diags: DiagnosticBag) -> "ClassTable":
        table = ClassTable()
        for decl in program.declarations:
            if isinstance(decl, ast.TypeAliasDecl):
                if decl.name in table.aliases:
                    diags.error(ErrorKind.RESOLUTION,
                                f"duplicate type alias {decl.name!r}", decl.span)
                table.aliases[decl.name] = (decl.params, decl.body)
            elif isinstance(decl, ast.EnumDecl):
                table.enums[decl.name] = dict(decl.members)
            elif isinstance(decl, ast.SpecDecl):
                table.specs.setdefault(decl.name, []).append(decl.type)
            elif isinstance(decl, ast.DeclareDecl):
                table.declares[decl.name] = decl.type
            elif isinstance(decl, ast.QualifierDecl):
                table.qualifiers.append(decl.pred)
            elif isinstance(decl, ast.FunctionDecl):
                table.functions[decl.name] = decl
            elif isinstance(decl, (ast.ClassDecl, ast.InterfaceDecl)):
                # classes/interfaces are registered now; their member types are
                # resolved later (they may mention aliases defined below them)
                info = ClassInfo(name=decl.name, tparams=list(decl.tparams),
                                 is_interface=isinstance(decl, ast.InterfaceDecl),
                                 decl=decl)
                if isinstance(decl, ast.ClassDecl):
                    info.extends = decl.extends
                    info.implements = list(decl.implements)
                else:
                    info.extends = decl.extends[0] if decl.extends else None
                    info.implements = list(decl.extends[1:])
                table.classes[decl.name] = info
        return table

    # -- hierarchy queries --------------------------------------------------------

    def is_class_like(self, name: str) -> bool:
        return name in self.classes

    def supertypes(self, name: str) -> List[str]:
        """All transitive supertypes (classes and interfaces) of ``name``."""
        seen: List[str] = []
        work = [name]
        while work:
            current = work.pop()
            info = self.classes.get(current)
            if info is None:
                continue
            parents = ([info.extends] if info.extends else []) + list(info.implements)
            for parent in parents:
                if parent and parent not in seen:
                    seen.append(parent)
                    work.append(parent)
        return seen

    def is_subtype_name(self, sub: str, sup: str) -> bool:
        return sub == sup or sup in self.supertypes(sub)

    def fields_of(self, name: str) -> Dict[str, FieldInfo]:
        """Fields of ``name`` including inherited ones (subclass wins)."""
        result: Dict[str, FieldInfo] = {}
        chain = [name] + self.supertypes(name)
        for cls in reversed(chain):
            info = self.classes.get(cls)
            if info is not None:
                result.update(info.fields)
        return result

    def methods_of(self, name: str) -> Dict[str, MethodInfo]:
        result: Dict[str, MethodInfo] = {}
        chain = [name] + self.supertypes(name)
        for cls in reversed(chain):
            info = self.classes.get(cls)
            if info is not None:
                result.update(info.methods)
        return result

    def lookup_field(self, class_name: str, field_name: str) -> Optional[FieldInfo]:
        return self.fields_of(class_name).get(field_name)

    def lookup_method(self, class_name: str, method_name: str) -> Optional[MethodInfo]:
        return self.methods_of(class_name).get(method_name)

    # -- invariants -------------------------------------------------------------------

    def shape_facts(self, name: str, term: Expr) -> Expr:
        """Nominal facts: ``instanceof``/``impl`` for the class and supertypes."""
        facts = [builtins.impl_of(term, StrLit(name))]
        if name in self.classes and not self.classes[name].is_interface:
            facts.append(builtins.instanceof_of(term, StrLit(name)))
        for sup in self.supertypes(name):
            facts.append(builtins.impl_of(term, StrLit(sup)))
        return conj(*facts)

    def invariant(self, name: str, term: Expr) -> Expr:
        """The class invariant ``inv(C, term)``: every field refinement with
        ``v`` replaced by ``term.f`` and ``this`` replaced by ``term``, plus
        nominal inclusion facts (section 2.2.3 / 3.2)."""
        if name in self._invariant_stack or len(self._invariant_stack) > 2:
            # Break recursive class references (e.g. linked nodes); nominal
            # facts alone are still sound.
            return self.shape_facts(name, term)
        self._invariant_stack.append(name)
        try:
            parts: List[Expr] = [self.shape_facts(name, term)]
            for fld in self.fields_of(name).values():
                field_term = _field_term(term, fld.name)
                from repro.rtypes.types import embed
                # Substitute the value variable first (v -> term.f), *then* the
                # receiver (this -> term); the other order would also rewrite
                # the receiver occurrences the first substitution introduced.
                fact = embed(fld.type, field_term, include_shape=False)
                parts.append(substitute(fact, {"this": term}))
            return conj(*parts)
        finally:
            self._invariant_stack.pop()


def _field_term(obj: Expr, field_name: str) -> Expr:
    from repro.logic.terms import Field
    return Field(obj, field_name)
