"""The RSC refinement type checker.

The public entry points:

* :class:`repro.core.session.Session` — one-shot checks sharing one solver,
* :class:`repro.core.workspace.Workspace` — long-lived documents with
  incremental re-checks,
* :class:`repro.core.result.CheckResult` — diagnostics plus statistics.
"""

from repro.core.result import CheckResult
from repro.core.session import Session
from repro.core.workspace import Workspace

__all__ = ["CheckResult", "Session", "Workspace"]
