"""The RSC refinement type checker.

The public entry points live in :mod:`repro.core.api`:

* :func:`repro.core.api.check_source` — parse + check a nanoTS source string,
* :func:`repro.core.api.check_program` — check an already-parsed program,
* :class:`repro.core.api.CheckResult` — diagnostics plus statistics.
"""

from repro.core.api import CheckResult, check_program, check_source

__all__ = ["CheckResult", "check_program", "check_source"]
