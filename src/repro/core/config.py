"""Configuration for a checking session.

A :class:`CheckConfig` captures everything that varies between checking
runs — fixpoint budget, qualifier-pool selection, SMT solver options and
output preferences — so that a :class:`repro.core.session.Session` can be
constructed once and reused across many files.  Configs are immutable;
derive variants with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

#: Qualifier-pool selections understood by :class:`CheckConfig`.
QUALIFIER_SETS: Tuple[str, ...] = ("default", "harvested")

#: Output formats understood by :class:`CheckConfig` and the CLI.
OUTPUT_FORMATS: Tuple[str, ...] = ("text", "json")

#: Liquid fixpoint scheduling strategies (see :mod:`repro.core.liquid.fixpoint`).
FIXPOINT_STRATEGIES: Tuple[str, ...] = ("worklist", "naive")

#: SMT query engines (see :mod:`repro.smt.context`): ``"incremental"`` keeps
#: persistent assumption-based contexts per hypothesis environment,
#: ``"fresh"`` rebuilds CNF and a SAT solver per query (the historical
#: behaviour, kept as the differential oracle for ``repro bench smt``).
SMT_MODES: Tuple[str, ...] = ("incremental", "fresh")

#: Persistent artifact store modes (see :mod:`repro.store`):
#: ``"readwrite"`` serves hits and writes back finished artifacts,
#: ``"readonly"`` serves hits but never writes (shared pre-populated
#: caches), ``"off"`` ignores ``store_path`` entirely.
STORE_MODES: Tuple[str, ...] = ("readwrite", "readonly", "off")


@dataclass(frozen=True)
class SolverOptions:
    """Options forwarded to the SMT substrate (:class:`repro.smt.Solver`).

    ``context_cache_limit`` bounds the LRU of persistent solver contexts
    kept alive in ``smt_mode="incremental"`` (one per distinct hypothesis
    environment; evicted contexts rebuild cheaply from the solver's theory
    lemma memo).

    ``backend`` names the SMT engine in the
    :mod:`repro.smt.backend` registry; ``"internal"`` is the built-in
    solver.  An external adapter (e.g. z3) registers a factory under its
    own name and is selected here — validation happens when the session's
    workspace instantiates the backend, so adapters may be registered any
    time before that.
    """

    max_theory_iterations: int = 5000
    cache_results: bool = True
    cache_size_limit: int = 200_000
    context_cache_limit: int = 64
    backend: str = "internal"

    def __post_init__(self) -> None:
        if self.max_theory_iterations < 1:
            raise ValueError("max_theory_iterations must be positive")
        if self.cache_size_limit < 0:
            raise ValueError("cache_size_limit must be non-negative")
        if self.context_cache_limit < 1:
            raise ValueError("context_cache_limit must be positive")

    def to_dict(self) -> dict:
        return {
            "max_theory_iterations": self.max_theory_iterations,
            "cache_results": self.cache_results,
            "cache_size_limit": self.cache_size_limit,
            "context_cache_limit": self.context_cache_limit,
            "backend": self.backend,
        }


@dataclass(frozen=True)
class ServiceOptions:
    """Options for the multi-tenant check service (:mod:`repro.service`).

    * ``max_tenants`` — how many tenant workspaces the session manager keeps
      alive; past the cap the least-recently-used idle tenant is evicted
      (its documents close, its solver is dropped — a later request under
      the same tenant name starts cold).
    * ``queue_limit`` — per-tenant bound on queued-but-not-started requests;
      a request arriving over the limit is rejected immediately with a
      ``backpressure`` error instead of being buffered without bound.
    * ``workers`` — size of the thread pool executing checks across all
      tenants (checks are CPU-bound; the asyncio loop only does I/O and
      scheduling).
    * ``latency_window`` — how many recent per-request latencies each tenant
      retains for the ``stats`` method's p50/p99 percentiles.
    """

    max_tenants: int = 8
    queue_limit: int = 16
    workers: int = 4
    latency_window: int = 512

    def __post_init__(self) -> None:
        if self.max_tenants < 1:
            raise ValueError("max_tenants must be positive")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.latency_window < 1:
            raise ValueError("latency_window must be positive")

    def to_dict(self) -> dict:
        return {
            "max_tenants": self.max_tenants,
            "queue_limit": self.queue_limit,
            "workers": self.workers,
            "latency_window": self.latency_window,
        }


@dataclass(frozen=True)
class ObsOptions:
    """Observability options (:mod:`repro.obs`).

    * ``trace_path`` — where the CLI exports the Chrome trace-event JSON;
      ``None`` leaves tracing disabled (unless the ``REPRO_TRACE``
      environment variable enables it process-wide).
    * ``slow_query_limit`` — how many of the slowest SMT implications the
      tracer's slow-query log retains.

    Deliberately excluded from the store's config fingerprint: tracing
    never affects verdicts, so traced and untraced runs share artifacts.
    """

    trace_path: Optional[str] = None
    slow_query_limit: int = 10

    def __post_init__(self) -> None:
        if self.slow_query_limit < 1:
            raise ValueError("slow_query_limit must be positive")

    def to_dict(self) -> dict:
        return {
            "trace_path": self.trace_path,
            "slow_query_limit": self.slow_query_limit,
        }


@dataclass(frozen=True)
class CheckConfig:
    """Immutable configuration shared by every check in a session.

    * ``max_fixpoint_iterations`` — budget for the liquid fixpoint loop.
    * ``fixpoint_strategy`` — ``"worklist"`` (dependency-graph-driven
      scheduling with pre-SMT pruning, the default) or ``"naive"`` (the
      reference global-round sweep, kept for comparison benchmarks).
    * ``warnings_as_errors`` — promote warnings to errors in the verdict.
    * ``qualifier_set`` — ``"default"`` (built-in pool plus qualifiers
      harvested from the program) or ``"harvested"`` (program-derived
      qualifiers only; useful to measure how much the built-ins contribute).
    * ``smt_mode`` — ``"incremental"`` (persistent assumption-based solver
      contexts per hypothesis environment, the default) or ``"fresh"`` (a
      new SAT solver per query; the reference oracle — verdicts are
      identical, only the work counters differ).
    * ``solver`` — SMT substrate options (:class:`SolverOptions`).
    * ``output_format`` — ``"text"`` or ``"json"`` (the CLI default).
    * ``jobs`` — worker count used by batch entry points (each extra worker
      checks with its own solver, so cache amortisation is per worker) and
      by the liquid fixpoint, which evaluates the visits of one SCC rank
      group concurrently when ``jobs > 1``.  The rank-parallel schedule is
      byte-identical to the sequential one: outcomes are committed in the
      sequential order and re-evaluated when stale.
    * ``incremental`` — let a :class:`repro.core.workspace.Workspace` reuse
      per-document artifacts across edits (content-hash cache, warm-started
      fixpoint, obligation reuse).  Off, every update is a cold check.
    * ``document_cache_limit`` — how many content-hash snapshots each open
      document keeps (bounds workspace memory; the most recent snapshot is
      always retained).
    * ``store_path`` — root of the persistent content-addressed artifact
      store (:mod:`repro.store`); ``None`` (the default) disables it.  May
      carry a backend scheme (``"redis://..."``) to select a registered
      store backend; plain paths use the local filesystem backend.
    * ``store_mode`` — ``"readwrite"`` (the default: load artifacts and
      write back finished checks), ``"readonly"`` (load only) or ``"off"``
      (ignore ``store_path``).
    * ``service`` — multi-tenant serve-layer options
      (:class:`ServiceOptions`); inert outside :mod:`repro.service`.
    * ``obs`` — tracing/metrics options (:class:`ObsOptions`); never
      verdict-affecting.
    """

    max_fixpoint_iterations: int = 40
    fixpoint_strategy: str = "worklist"
    warnings_as_errors: bool = False
    qualifier_set: str = "default"
    smt_mode: str = "incremental"
    solver: SolverOptions = field(default_factory=SolverOptions)
    output_format: str = "text"
    jobs: int = 1
    incremental: bool = True
    document_cache_limit: int = 8
    store_path: Optional[str] = None
    store_mode: str = "readwrite"
    service: ServiceOptions = field(default_factory=ServiceOptions)
    obs: ObsOptions = field(default_factory=ObsOptions)

    def __post_init__(self) -> None:
        if self.max_fixpoint_iterations < 1:
            raise ValueError("max_fixpoint_iterations must be positive")
        if self.fixpoint_strategy not in FIXPOINT_STRATEGIES:
            raise ValueError(
                f"unknown fixpoint_strategy {self.fixpoint_strategy!r} "
                f"(expected one of {', '.join(FIXPOINT_STRATEGIES)})")
        if self.qualifier_set not in QUALIFIER_SETS:
            raise ValueError(
                f"unknown qualifier_set {self.qualifier_set!r} "
                f"(expected one of {', '.join(QUALIFIER_SETS)})")
        if self.smt_mode not in SMT_MODES:
            raise ValueError(
                f"unknown smt_mode {self.smt_mode!r} "
                f"(expected one of {', '.join(SMT_MODES)})")
        if self.output_format not in OUTPUT_FORMATS:
            raise ValueError(
                f"unknown output_format {self.output_format!r} "
                f"(expected one of {', '.join(OUTPUT_FORMATS)})")
        if self.jobs < 1:
            raise ValueError("jobs must be positive")
        if self.document_cache_limit < 1:
            raise ValueError("document_cache_limit must be positive")
        if self.store_mode not in STORE_MODES:
            raise ValueError(
                f"unknown store_mode {self.store_mode!r} "
                f"(expected one of {', '.join(STORE_MODES)})")

    def with_options(self, **changes) -> "CheckConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        return {
            "max_fixpoint_iterations": self.max_fixpoint_iterations,
            "fixpoint_strategy": self.fixpoint_strategy,
            "warnings_as_errors": self.warnings_as_errors,
            "qualifier_set": self.qualifier_set,
            "smt_mode": self.smt_mode,
            "solver": self.solver.to_dict(),
            "output_format": self.output_format,
            "jobs": self.jobs,
            "incremental": self.incremental,
            "document_cache_limit": self.document_cache_limit,
            "store_path": self.store_path,
            "store_mode": self.store_mode,
            "service": self.service.to_dict(),
            "obs": self.obs.to_dict(),
        }
