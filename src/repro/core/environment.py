"""Typing environments (Gamma) with path-sensitive guards.

An environment carries ordered variable bindings, guard predicates collected
from branch conditions, and the generic type variables in scope.  Its logical
embedding (section 3.2) is::

    [[Gamma]]  =  /\\ { p | p in guards }  /\\  /\\ { [x/v] p_x | x : {v:N | p_x} }

Environments are persistent (every operation returns a new environment) so
that constraint snapshots remain valid after the checker moves on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.logic.terms import Expr, Var, conj
from repro.rtypes.types import RType, TFun, TInter, embed, unpack_exists


@dataclass(frozen=True)
class Env:
    bindings: Tuple[Tuple[str, RType], ...] = ()
    guards: Tuple[Expr, ...] = ()
    tvars: frozenset = frozenset()

    # -- construction -------------------------------------------------------------

    def bind(self, name: str, t: RType) -> "Env":
        return Env(self.bindings + ((name, t),), self.guards, self.tvars)

    def bind_all(self, pairs: Iterable[Tuple[str, RType]]) -> "Env":
        env = self
        for name, t in pairs:
            env = env.bind(name, t)
        return env

    def guard(self, pred: Expr) -> "Env":
        if pred.is_true():
            return self
        return Env(self.bindings, self.guards + (pred,), self.tvars)

    def with_tvars(self, names: Iterable[str]) -> "Env":
        return Env(self.bindings, self.guards, self.tvars | frozenset(names))

    # -- queries ---------------------------------------------------------------------

    def lookup(self, name: str) -> Optional[RType]:
        for bound_name, t in reversed(self.bindings):
            if bound_name == name:
                return t
        return None

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def names(self) -> List[str]:
        seen: List[str] = []
        for name, _ in self.bindings:
            if name not in seen:
                seen.append(name)
        return seen

    def scope_names(self) -> List[str]:
        """Variable names usable as kappa scope / qualifier arguments."""
        return [name for name in self.names() if not name.startswith("_")]

    # -- embedding ---------------------------------------------------------------------

    def hypotheses(self) -> List[Expr]:
        """The conjuncts of [[Gamma]].

        When a name is bound more than once (e.g. ``arguments`` or a parameter
        re-bound while checking a nested closure), only the most recent
        binding is embedded — the older one is shadowed, and embedding both
        would make the environment spuriously inconsistent."""
        last_index: dict = {}
        for index, (name, _t) in enumerate(self.bindings):
            last_index[name] = index
        hyps: List[Expr] = []
        for index, (name, t) in enumerate(self.bindings):
            if last_index[name] != index:
                continue
            if isinstance(t, (TFun, TInter)):
                continue
            binders, inner = unpack_exists(t)
            for bname, bound in binders:
                hyps.append(embed(bound, Var(bname)))
            hyps.append(embed(inner, Var(name)))
        hyps.extend(self.guards)
        return [h for h in hyps if not h.is_true()]

    def embedding(self) -> Expr:
        return conj(*self.hypotheses())
