"""Builtin bindings: the typed prelude of nanoTS.

Mirrors the signatures the paper relies on:

* ``assert :: (b: {v: boolean | v = true}) => void`` — used by two-phase
  typing's dead-code encoding and available to programs;
* ``assume`` — adds a fact to the environment (trusted);
* array operations ``get``/``set``/``length``/``push``/``pop``/``slice``/
  ``concat`` with bounds-checking refinements (section 2.1.1 / 4.4);
* a handful of ``Math`` functions and console output used by the benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.logic.terms import IntLit, Var, VALUE_VAR, conj, eq, ge, le
from repro.rtypes import Mutability
from repro.rtypes.types import (
    RType,
    TArray,
    TFun,
    TParam,
    TPrim,
    number,
    boolean,
    string,
    void,
)


def _nat() -> TPrim:
    return number(le(IntLit(0), VALUE_VAR))


def _true_bool() -> TPrim:
    return boolean(eq(VALUE_VAR, Var("true")))


def global_bindings() -> Dict[str, RType]:
    """Types of globally available functions."""
    return {
        "assert": TFun(params=(TParam("b", boolean(eq(VALUE_VAR, Var("true")))),),
                       ret=void()),
        "assume": TFun(params=(TParam("b", boolean()),), ret=void()),
        "crash": TFun(params=(), ret=TPrim(name="bot")),
        "alert": TFun(params=(TParam("s", TPrim(name="any")),), ret=void()),
        "print": TFun(params=(TParam("s", TPrim(name="any")),), ret=void()),
        "parseInt": TFun(params=(TParam("s", string()),), ret=number()),
        "String": TFun(params=(TParam("x", TPrim(name="any")),), ret=string()),
        "Number": TFun(params=(TParam("x", TPrim(name="any")),), ret=number()),
        "isFinite": TFun(params=(TParam("x", number()),), ret=boolean()),
        "isNaN": TFun(params=(TParam("x", number()),), ret=boolean()),
    }


#: methods on ``Math``
MATH_METHODS: Dict[str, TFun] = {
    "floor": TFun(params=(TParam("x", number()),), ret=number()),
    "ceil": TFun(params=(TParam("x", number()),), ret=number()),
    "round": TFun(params=(TParam("x", number()),), ret=number()),
    "abs": TFun(params=(TParam("x", number()),), ret=_nat()),
    "sqrt": TFun(params=(TParam("x", number()),), ret=number()),
    "pow": TFun(params=(TParam("x", number()), TParam("y", number())), ret=number()),
    "min": TFun(params=(TParam("x", number()), TParam("y", number())), ret=number()),
    "max": TFun(params=(TParam("x", number()), TParam("y", number())), ret=number()),
    "random": TFun(params=(), ret=number(conj(le(IntLit(0), VALUE_VAR)))),
    "log": TFun(params=(TParam("x", number()),), ret=number()),
    "exp": TFun(params=(TParam("x", number()),), ret=number()),
    "sin": TFun(params=(TParam("x", number()),), ret=number()),
    "cos": TFun(params=(TParam("x", number()),), ret=number()),
}


def array_method(name: str, elem: RType, array_term, mutability: Mutability) -> Optional[TFun]:
    """The signature of an array method, specialised to the receiver.

    ``array_term`` is the logical term of the receiver (used to refine result
    lengths when the receiver is immutable)."""
    nat = _nat()
    if name == "push":
        return TFun(params=(TParam("x", elem),), ret=nat)
    if name == "pop":
        return TFun(params=(), ret=elem)
    if name == "shift":
        return TFun(params=(), ret=elem)
    if name == "unshift":
        return TFun(params=(TParam("x", elem),), ret=nat)
    if name == "slice":
        result = TArray(elem=elem, mutability=Mutability.UNIQUE)
        if name == "slice":
            return TFun(params=(TParam("start", number()), TParam("end", number())),
                        ret=result)
    if name == "concat":
        return TFun(params=(TParam("other", TArray(elem=elem,
                                                   mutability=Mutability.READONLY)),),
                    ret=TArray(elem=elem, mutability=Mutability.UNIQUE))
    if name == "indexOf":
        return TFun(params=(TParam("x", elem),),
                    ret=number(ge(VALUE_VAR, IntLit(-1))))
    if name == "join":
        return TFun(params=(TParam("sep", string()),), ret=string())
    if name == "reverse":
        return TFun(params=(), ret=TArray(elem=elem, mutability=mutability))
    if name == "sort":
        return TFun(params=(TParam("cmp", TPrim(name="any")),),
                    ret=TArray(elem=elem, mutability=mutability))
    if name == "map":
        return TFun(params=(TParam("f", TPrim(name="any")),),
                    ret=TArray(elem=TPrim(name="any"), mutability=Mutability.UNIQUE))
    if name == "forEach":
        return TFun(params=(TParam("f", TPrim(name="any")),), ret=void())
    return None


def string_method(name: str) -> Optional[TFun]:
    nat = _nat()
    if name in ("charAt", "charCodeAt"):
        return TFun(params=(TParam("i", nat),),
                    ret=string() if name == "charAt" else number())
    if name == "substring" or name == "substr" or name == "slice":
        return TFun(params=(TParam("a", number()), TParam("b", number())),
                    ret=string())
    if name == "indexOf":
        return TFun(params=(TParam("s", string()),),
                    ret=number(ge(VALUE_VAR, IntLit(-1))))
    if name == "toUpperCase" or name == "toLowerCase":
        return TFun(params=(), ret=string())
    if name == "split":
        return TFun(params=(TParam("sep", string()),),
                    ret=TArray(elem=string(), mutability=Mutability.UNIQUE))
    return None
