"""Resolution of surface type annotations into semantic refinement types.

Handles:

* primitive names, type variables, class/interface references;
* parameterised type aliases (``idx<a>``, ``grid<w, h>``, ``natN<n>``) whose
  parameters may be *types* or *logical terms* — the parameter kind is
  inferred from how it is used in the alias body;
* array forms ``T[]``, ``Array<M, T>``, ``IArray<T>``/``MArray<T>``/
  ``ROArray<T>``/``UArray<T>``;
* refinement annotations ``{v: T | p}``;
* function types (possibly generic, with dependent parameter names) and
  union types.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.errors import DiagnosticBag, ErrorKind
from repro.lang import ast
from repro.logic.terms import Expr, Var
from repro.rtypes import Mutability
from repro.rtypes.types import (
    RType,
    TArray,
    TFun,
    TInter,
    TParam,
    TPrim,
    TRef,
    TUnion,
    TVar,
    refine,
    subst_terms,
    subst_types,
)
from repro.core.classtable import ClassTable
from repro.core.embedexpr import ExprEmbedder

_PRIMS = {"number", "boolean", "string", "void", "any", "undefined", "null",
          "top", "bot"}
_ARRAY_MUTS = {
    "IArray": Mutability.IMMUTABLE,
    "MArray": Mutability.MUTABLE,
    "ROArray": Mutability.READONLY,
    "UArray": Mutability.UNIQUE,
}
_MUT_NAMES = {"IM": Mutability.IMMUTABLE, "Immutable": Mutability.IMMUTABLE,
              "MU": Mutability.MUTABLE, "Mutable": Mutability.MUTABLE,
              "RO": Mutability.READONLY, "ReadOnly": Mutability.READONLY,
              "UQ": Mutability.UNIQUE, "Unique": Mutability.UNIQUE}


class Resolver:
    """Resolves :class:`repro.lang.ast.TypeAnn` into :class:`repro.rtypes.RType`."""

    def __init__(self, table: ClassTable, diags: DiagnosticBag) -> None:
        self.table = table
        self.diags = diags
        self._alias_stack: List[str] = []
        self._alias_param_kinds: Dict[str, List[str]] = {}

    # -- public API -------------------------------------------------------------

    def resolve(self, ann: Optional[ast.TypeAnn],
                tparams: Sequence[str] = ()) -> RType:
        if ann is None:
            return TPrim(name="any")
        return self._resolve(ann, set(tparams))

    def resolve_function(self, decl: ast.FunctionDecl) -> Optional[RType]:
        """The declared signature of a function: its ``spec`` overloads if any,
        otherwise its inline annotations (if complete)."""
        specs = self.table.specs.get(decl.name, [])
        members: List[TFun] = []
        for spec_ann in specs:
            resolved = self.resolve(spec_ann)
            if isinstance(resolved, TFun):
                members.append(resolved)
            else:
                self.diags.error(ErrorKind.RESOLUTION,
                                 f"spec for {decl.name!r} is not a function type",
                                 spec_ann.span)
        if members:
            if len(members) == 1:
                return members[0]
            return TInter(members=tuple(members))
        if all(p.type is not None for p in decl.params) and decl.params or decl.ret:
            params = tuple(TParam(p.name, self.resolve(p.type, decl.tparams))
                           for p in decl.params)
            ret = self.resolve(decl.ret, decl.tparams)
            return TFun(tparams=tuple(decl.tparams), params=params, ret=ret)
        if not decl.params:
            return TFun(tparams=tuple(decl.tparams), params=(),
                        ret=self.resolve(decl.ret, decl.tparams))
        return None

    def resolve_method(self, class_name: str, sig: ast.MethodSig,
                       class_tparams: Sequence[str]) -> TFun:
        tparams = list(class_tparams) + list(sig.tparams)
        params = tuple(TParam(p.name, self.resolve(p.type, tparams))
                       for p in sig.params)
        ret = self.resolve(sig.ret, tparams)
        return TFun(tparams=tuple(sig.tparams), params=params, ret=ret)

    # -- implementation ------------------------------------------------------------

    def _resolve(self, ann: ast.TypeAnn, tparams: Set[str]) -> RType:
        if isinstance(ann, ast.TNameAnn):
            return self._resolve_name(ann, tparams)
        if isinstance(ann, ast.TRefineAnn):
            base = self._resolve(ann.base, tparams)
            embedder = ExprEmbedder(self.table.enums, value_var=ann.value_var)
            pred = embedder.predicate(ann.pred)
            return refine(base, pred)
        if isinstance(ann, ast.TArrayAnn):
            elem = self._resolve(ann.elem, tparams)
            # `T[]` defaults to a mutable array (TypeScript semantics); use
            # IArray<T> / Array<IM, T> for the immutable view required by
            # length-changing-operation freedom.
            mut = (_MUT_NAMES[ann.mutability] if ann.mutability
                   else Mutability.MUTABLE)
            return TArray(elem=elem, mutability=mut)
        if isinstance(ann, ast.TFunAnn):
            inner_tparams = tparams | set(ann.tparams)
            params = []
            for index, (name, ptype) in enumerate(ann.params):
                pname = name if name is not None else f"arg{index}"
                params.append(TParam(pname, self._resolve(ptype, inner_tparams)))
            ret = self._resolve(ann.ret, inner_tparams)
            return TFun(tparams=tuple(ann.tparams), params=tuple(params), ret=ret)
        if isinstance(ann, ast.TUnionAnn):
            return TUnion(members=tuple(self._resolve(m, tparams)
                                        for m in ann.members))
        self.diags.error(ErrorKind.RESOLUTION,
                         f"unsupported type annotation {type(ann).__name__}",
                         ann.span)
        return TPrim(name="any")

    def _resolve_name(self, ann: ast.TNameAnn, tparams: Set[str]) -> RType:
        name = ann.name
        if name in _PRIMS:
            return TPrim(name=name)
        if name in tparams:
            return TVar(name=name)
        if name == "Array":
            return self._resolve_array(ann, tparams)
        if name in _ARRAY_MUTS:
            elem = (self._resolve_arg_type(ann.args[0], tparams)
                    if ann.args else TPrim(name="any"))
            return TArray(elem=elem, mutability=_ARRAY_MUTS[name])
        if name in self.table.aliases:
            return self._expand_alias(ann, tparams)
        if name in self.table.enums:
            return TPrim(name="number")
        if name in self.table.classes:
            mut = Mutability.MUTABLE
            targs: List[RType] = []
            for arg in ann.args:
                if arg.is_type() and isinstance(arg.type, ast.TNameAnn) and \
                        arg.type.name in _MUT_NAMES and not arg.type.args:
                    mut = _MUT_NAMES[arg.type.name]
                else:
                    targs.append(self._resolve_arg_type(arg, tparams))
            return TRef(name=name, targs=tuple(targs), mutability=mut)
        self.diags.warning(ErrorKind.RESOLUTION, f"unknown type name {name!r}",
                           ann.span)
        return TPrim(name="any")

    def _resolve_array(self, ann: ast.TNameAnn, tparams: Set[str]) -> RType:
        mut = Mutability.MUTABLE
        elem: RType = TPrim(name="any")
        args = list(ann.args)
        if len(args) == 2:
            first = args[0]
            if first.is_type() and isinstance(first.type, ast.TNameAnn) and \
                    first.type.name in _MUT_NAMES:
                mut = _MUT_NAMES[first.type.name]
                args = args[1:]
        if args:
            elem = self._resolve_arg_type(args[0], tparams)
        return TArray(elem=elem, mutability=mut)

    def _resolve_arg_type(self, arg: ast.TypeArg, tparams: Set[str]) -> RType:
        if arg.is_type():
            return self._resolve(arg.type, tparams)
        self.diags.error(ErrorKind.RESOLUTION,
                         "expected a type argument, found an expression")
        return TPrim(name="any")

    # -- alias expansion ---------------------------------------------------------------

    def _alias_param_kind(self, alias: str) -> List[str]:
        """For each alias parameter, ``"type"`` or ``"term"`` depending on use."""
        if alias in self._alias_param_kinds:
            return self._alias_param_kinds[alias]
        params, body = self.table.aliases[alias]
        used_as_type: Set[str] = set()

        def walk(a: ast.TypeAnn) -> None:
            if isinstance(a, ast.TNameAnn):
                if a.name in params:
                    used_as_type.add(a.name)
                for sub in a.args:
                    if sub.type is not None:
                        walk(sub.type)
            elif isinstance(a, ast.TRefineAnn):
                walk(a.base)
            elif isinstance(a, ast.TArrayAnn):
                walk(a.elem)
            elif isinstance(a, ast.TFunAnn):
                for _, pt in a.params:
                    walk(pt)
                walk(a.ret)
            elif isinstance(a, ast.TUnionAnn):
                for m in a.members:
                    walk(m)

        walk(body)
        kinds = ["type" if p in used_as_type else "term" for p in params]
        self._alias_param_kinds[alias] = kinds
        return kinds

    def _expand_alias(self, ann: ast.TNameAnn, tparams: Set[str]) -> RType:
        name = ann.name
        if name in self._alias_stack:
            self.diags.error(ErrorKind.RESOLUTION,
                             f"recursive type alias {name!r}", ann.span)
            return TPrim(name="any")
        params, body = self.table.aliases[name]
        kinds = self._alias_param_kind(name)
        if len(ann.args) != len(params):
            if params:
                self.diags.error(
                    ErrorKind.RESOLUTION,
                    f"alias {name!r} expects {len(params)} argument(s), "
                    f"got {len(ann.args)}", ann.span)
                return TPrim(name="any")
        self._alias_stack.append(name)
        try:
            resolved_body = self._resolve(body, tparams | set(
                p for p, k in zip(params, kinds) if k == "type"))
        finally:
            self._alias_stack.pop()
        type_subst: Dict[str, RType] = {}
        term_subst: Dict[str, Expr] = {}
        embedder = ExprEmbedder(self.table.enums)
        for param, kind, arg in zip(params, kinds, ann.args):
            if kind == "type":
                if arg.is_type():
                    type_subst[param] = self._resolve(arg.type, tparams)
                else:
                    self.diags.error(ErrorKind.RESOLUTION,
                                     f"alias {name!r}: parameter {param!r} "
                                     "expects a type argument", ann.span)
            else:
                term = None
                if arg.expr is not None:
                    term = embedder.term(arg.expr)
                elif arg.type is not None and isinstance(arg.type, ast.TNameAnn) \
                        and not arg.type.args:
                    term = Var(arg.type.name)
                if term is None:
                    self.diags.error(ErrorKind.RESOLUTION,
                                     f"alias {name!r}: parameter {param!r} "
                                     "expects a logical term", ann.span)
                    term = Var(param)
                term_subst[param] = term
        result = subst_types(resolved_body, type_subst)
        result = subst_terms(result, term_subst)
        return result
