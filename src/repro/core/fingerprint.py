"""Span-insensitive fingerprints of AST declarations.

The incremental workspace (:mod:`repro.core.workspace`) decides which
declarations an edit actually changed by comparing *fingerprints* of the
parsed AST rather than source text: moving a declaration up or down a file
(or editing a comment above it) shifts every span but leaves the program
unchanged, and must not invalidate cached solve work.

Two fingerprints are computed per document:

* :func:`unit_fingerprints` — one fingerprint per *checkable unit* (a
  top-level function, a class method, a class constructor), covering the
  unit's full AST including its body.  A unit whose fingerprint is unchanged
  between two versions of a document generates byte-identical constraints
  (constraint generation is deterministic), so its kappa solutions and
  concrete-obligation verdicts can be reused.
* :func:`signature_fingerprint` — everything *other* code can observe: type
  aliases, enums, specs, ambient declares, qualifier declarations,
  interfaces, class shapes (fields, method signatures, invariants), function
  signatures, and the ordered list of declaration names.  Constructor bodies
  are deliberately included — ``this.f = p`` assignments feed
  ``ctor_field_params``, which other declarations' ``new`` expressions
  consume.  If this fingerprint changes, the environment any unit was
  checked under may have changed, and the workspace falls back to a cold
  solve.

Fingerprints are hex digests of a canonical dump of the dataclass tree with
every ``span`` field (and every :class:`repro.errors.SourceSpan` value)
skipped.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List

from repro.errors import SourceSpan
from repro.lang import ast


def _dump(node: object, out: List[str]) -> None:
    """Append a canonical, span-free rendering of ``node`` to ``out``."""
    if isinstance(node, SourceSpan):
        return
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        out.append(type(node).__name__)
        out.append("(")
        for fld in dataclasses.fields(node):
            if fld.name == "span":
                continue
            out.append(fld.name)
            out.append("=")
            _dump(getattr(node, fld.name), out)
            out.append(",")
        out.append(")")
        return
    if isinstance(node, (list, tuple)):
        out.append("[")
        for item in node:
            _dump(item, out)
            out.append(",")
        out.append("]")
        return
    if isinstance(node, dict):
        out.append("{")
        for key in node:  # insertion order is part of the program
            out.append(repr(key))
            out.append(":")
            _dump(node[key], out)
            out.append(",")
        out.append("}")
        return
    out.append(repr(node))


def fingerprint(node: object) -> str:
    """Hex digest of the span-insensitive canonical dump of ``node``."""
    out: List[str] = []
    _dump(node, out)
    return hashlib.sha256("".join(out).encode()).hexdigest()


def owner_of_function(decl: ast.FunctionDecl) -> str:
    return decl.name


def owner_of_method(class_name: str, method_name: str) -> str:
    return f"{class_name}.{method_name}"


def unit_fingerprints(program: ast.Program) -> Dict[str, str]:
    """Fingerprint per constraint partition, keyed by its owner name.

    Owner names match the ones the checker stamps onto constraints and
    kappas: ``f`` for a top-level function, ``Cls.m`` for a method and
    ``Cls.constructor`` for a constructor.  Duplicate declarations sharing a
    name are checked under the *same* owner, so their fingerprints are
    combined in order — editing any one of them must dirty the partition
    (keying by name alone would let the last duplicate shadow edits to the
    others and leak stale verdicts through the warm-start gate).
    """
    units: Dict[str, List[str]] = {}
    for decl in program.declarations:
        if isinstance(decl, ast.FunctionDecl) and decl.body is not None:
            units.setdefault(owner_of_function(decl), []).append(
                fingerprint(decl))
        elif isinstance(decl, ast.ClassDecl):
            # Methods see the class shape (fields, tparams, invariant), so a
            # method unit covers the method plus that shared context; the
            # shared context itself is also in the signature fingerprint,
            # which gates warm starts entirely.
            if decl.constructor is not None and decl.constructor.body is not None:
                units.setdefault(
                    owner_of_method(decl.name, "constructor"), []).append(
                        fingerprint(decl.constructor))
            for method in decl.methods:
                if method.body is None:
                    continue
                units.setdefault(
                    owner_of_method(decl.name, method.sig.name), []).append(
                        fingerprint(method))
    return {owner: fps[0] if len(fps) == 1
            else hashlib.sha256("".join(fps).encode()).hexdigest()
            for owner, fps in units.items()}


def signature_fingerprint(program: ast.Program) -> str:
    """Fingerprint of everything observable across declaration boundaries."""
    out: List[str] = []
    for decl in program.declarations:
        if isinstance(decl, ast.FunctionDecl):
            out.append("function(")
            for part in (decl.name, decl.tparams, decl.params, decl.ret,
                         decl.specs, decl.body is None):
                _dump(part, out)
                out.append(",")
            out.append(")")
        elif isinstance(decl, ast.ClassDecl):
            out.append("class(")
            for part in (decl.name, decl.tparams, decl.extends,
                         decl.implements, decl.fields, decl.invariant,
                         decl.constructor):
                _dump(part, out)
                out.append(",")
            for method in decl.methods:
                _dump(method.sig, out)
                _dump(method.specs, out)
                _dump(method.body is None, out)
                out.append(",")
            out.append(")")
        else:
            # aliases, enums, specs, declares, qualifiers, interfaces: the
            # whole declaration is signature.
            _dump(decl, out)
        out.append(";")
    return hashlib.sha256("".join(out).encode()).hexdigest()
