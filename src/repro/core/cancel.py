"""Cooperative cancellation for in-flight checks.

A :class:`CancelToken` is handed to :meth:`repro.core.workspace.Workspace.open`
/ :meth:`~repro.core.workspace.Workspace.update` (and threaded from there
through the staged pipeline) by callers that may want to abort a check that
is still running — the multi-tenant serve layer cancels a check when a
superseding edit for the same document arrives.

Cancellation is *cooperative*: the pipeline polls the token at stage
boundaries (parse → constraints → solve → verify), between fixpoint worklist
visits, between concrete-obligation checks, and between module re-checks of
a project update.  When the token has been cancelled the poll raises
:class:`CheckCancelled`; the workspace then unwinds without recording a
snapshot and without writing anything to the persistent artifact store, so
a cancelled check leaves no partial state behind — the document's previous
verdict stays current.

Tokens are thread-safe (an :class:`threading.Event` underneath): the serve
layer cancels from its event-loop thread while the check runs in a worker
thread.
"""

from __future__ import annotations

import threading
from typing import Optional


class CheckCancelled(Exception):
    """Raised inside the checking pipeline when its token was cancelled."""

    def __init__(self, reason: Optional[str] = None) -> None:
        super().__init__(reason or "check cancelled")
        self.reason = reason


class CancelToken:
    """A one-shot, thread-safe cancellation flag polled by the pipeline."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        """Request cancellation (idempotent; the first reason wins)."""
        if not self._event.is_set():
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def checkpoint(self) -> None:
        """Raise :class:`CheckCancelled` iff cancellation was requested."""
        if self._event.is_set():
            raise CheckCancelled(self.reason)


def checkpoint(token: Optional[CancelToken]) -> None:
    """None-tolerant :meth:`CancelToken.checkpoint` (the common call site)."""
    if token is not None:
        token.checkpoint()
