"""Embedding of (pure) source expressions into the refinement logic.

Several parts of the checker need the *logical meaning* of a source
expression:

* refinement annotations ``{v: T | p}`` — the predicate ``p`` is a source
  expression that must become a :class:`repro.logic.terms.Expr`;
* path sensitivity — branch conditions are conjoined to the environment;
* exact-value typing of arithmetic — ``x + 1`` gets type
  ``{v: number | v = x + 1}``.

Impure or unsupported constructs embed to ``None`` (for terms) or ``true``
(for guard predicates), which is always sound: it only loses precision.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.lang import ast
from repro.logic import builtins
from repro.logic.sorts import BOOL, INT
from repro.logic.terms import (
    App,
    BinOp,
    BoolLit,
    Expr,
    Field,
    IntLit,
    StrLit,
    UnOp,
    Var,
    VALUE_VAR,
    conj,
    disj,
    ne,
    neg,
    true,
)

#: source operators that carry over to the logic directly
_BIN_OPS = {
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
    "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "==": "=", "!=": "!=", "&": "&", "|": "|",
    "&&": "&&", "||": "||", "=>": "=>", "<=>": "<=>",
}

#: logical functions usable inside refinement annotations
_BUILTIN_FNS = {
    "len": builtins.LEN,
    "ttag": builtins.TTAG,
    "impl": builtins.IMPL,
    "mask": builtins.MASK,
    "instanceof": builtins.INSTANCEOF,
    "keyVal": "keyVal",
}


class ExprEmbedder:
    """Translates pure source expressions to logical terms/predicates."""

    def __init__(self, enums: Optional[Dict[str, Dict[str, int]]] = None,
                 value_var: str = "v") -> None:
        self.enums = enums or {}
        self.value_var = value_var

    # -- terms -----------------------------------------------------------------

    def term(self, e: ast.Expression) -> Optional[Expr]:
        """The logical term denoted by ``e``, or ``None`` if not expressible."""
        if isinstance(e, ast.NumberLit):
            if isinstance(e.value, int):
                return IntLit(e.value)
            if float(e.value).is_integer():
                return IntLit(int(e.value))
            return None
        if isinstance(e, ast.StringLit):
            return StrLit(e.value)
        if isinstance(e, ast.BoolLitE):
            return BoolLit(e.value)
        if isinstance(e, ast.NullLit):
            return Var("null")
        if isinstance(e, ast.UndefinedLit):
            return Var("undefined")
        if isinstance(e, ast.VarRef):
            if e.name == self.value_var:
                return VALUE_VAR
            return Var(e.name)
        if isinstance(e, ast.ThisRef):
            return Var("this")
        if isinstance(e, ast.Member):
            # enum constant?
            if isinstance(e.target, ast.VarRef) and e.target.name in self.enums:
                members = self.enums[e.target.name]
                if e.name in members:
                    return IntLit(members[e.name])
            if e.name == "length":
                target = self.term(e.target)
                if target is None:
                    return None
                return builtins.len_of(target)
            target = self.term(e.target)
            if target is None:
                return None
            return Field(target, e.name, INT)
        if isinstance(e, ast.Unary):
            if e.op == "-":
                operand = self.term(e.operand)
                return None if operand is None else UnOp("-", operand, INT)
            if e.op == "!":
                operand = self.predicate(e.operand)
                return neg(operand)
            if e.op == "typeof":
                operand = self.term(e.operand)
                return None if operand is None else builtins.ttag_of(operand)
            return None
        if isinstance(e, ast.Binary):
            op = _BIN_OPS.get("==" if e.op == "===" else
                              "!=" if e.op == "!==" else e.op)
            if op is None:
                return None
            left = self.term(e.left)
            right = self.term(e.right)
            if left is None or right is None:
                return None
            sort = BOOL if op in ("<", "<=", ">", ">=", "=", "!=", "&&", "||",
                                  "=>", "<=>") else INT
            return BinOp(op, left, right, sort)
        if isinstance(e, ast.Call):
            return self._call_term(e)
        if isinstance(e, ast.Conditional):
            cond = self.predicate(e.cond)
            then = self.term(e.then)
            els = self.term(e.els)
            if then is None or els is None:
                return None
            from repro.logic.terms import Ite
            return Ite(cond, then, els)
        if isinstance(e, ast.Index):
            return None
        return None

    def _call_term(self, e: ast.Call) -> Optional[Expr]:
        if isinstance(e.callee, ast.VarRef) and e.callee.name in _BUILTIN_FNS:
            args = [self.term(a) for a in e.args]
            if any(a is None for a in args):
                return None
            fn = _BUILTIN_FNS[e.callee.name]
            sort = builtins.result_sort(fn)
            return App(fn, tuple(args), sort)  # type: ignore[arg-type]
        return None

    # -- predicates ---------------------------------------------------------------

    def predicate(self, e: ast.Expression) -> Expr:
        """The logical predicate of a boolean source expression.

        Unsupported constructs become ``true`` (sound over-approximation when
        used as a hypothesis/guard)."""
        if isinstance(e, ast.BoolLitE):
            return BoolLit(e.value)
        if isinstance(e, ast.Unary) and e.op == "!":
            inner = self.predicate_opt(e.operand)
            return neg(inner) if inner is not None else true()
        if isinstance(e, ast.Binary):
            if e.op == "&&":
                return conj(self.predicate(e.left), self.predicate(e.right))
            if e.op == "||":
                left = self.predicate_opt(e.left)
                right = self.predicate_opt(e.right)
                if left is None or right is None:
                    return true()
                return disj(left, right)
            if e.op in ("=>", "<=>"):
                term = self.term(e)
                return term if term is not None else true()
            if e.op == "instanceof":
                target = self.term(e.left)
                if target is None or not isinstance(e.right, ast.VarRef):
                    return true()
                return builtins.instanceof_of(target, StrLit(e.right.name))
            term = self.term(e)
            if term is not None and term.sort == BOOL:
                return term
            # numeric truthiness: `if (x & MASK)` means `(x & MASK) != 0`
            if term is not None:
                return ne(term, IntLit(0))
            return true()
        term = self.term(e)
        if term is None:
            return true()
        if isinstance(term, BoolLit):
            return term
        if term.sort == BOOL:
            return term
        # truthiness of a non-boolean term: non-zero / non-null
        return ne(term, IntLit(0))

    def predicate_opt(self, e: ast.Expression) -> Optional[Expr]:
        """Like :meth:`predicate` but ``None`` when nothing useful is known.

        Needed under negation / disjunction where over-approximating a
        sub-formula with ``true`` would be unsound."""
        if isinstance(e, ast.BoolLitE):
            return BoolLit(e.value)
        if isinstance(e, ast.Unary) and e.op == "!":
            inner = self.predicate_opt(e.operand)
            return neg(inner) if inner is not None else None
        if isinstance(e, ast.Binary):
            if e.op == "&&":
                left = self.predicate_opt(e.left)
                right = self.predicate_opt(e.right)
                if left is None or right is None:
                    return None
                return conj(left, right)
            if e.op == "||":
                left = self.predicate_opt(e.left)
                right = self.predicate_opt(e.right)
                if left is None or right is None:
                    return None
                return disj(left, right)
            if e.op == "instanceof":
                return self.predicate(e) if self.term(e.left) is not None else None
            term = self.term(e)
            if term is None:
                return None
            return term if term.sort == BOOL else ne(term, IntLit(0))
        term = self.term(e)
        if term is None:
            return None
        if term.sort == BOOL or isinstance(term, BoolLit):
            return term
        return ne(term, IntLit(0))

    def guard(self, e: ast.Expression, positive: bool) -> Expr:
        """The environment guard contributed by branching on ``e``."""
        if positive:
            return self.predicate(e)
        inner = self.predicate_opt(e)
        return neg(inner) if inner is not None else true()
