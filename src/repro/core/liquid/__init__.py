"""Liquid type inference: qualifier instantiation and Horn-constraint fixpoint.

This package implements the inference engine of section 2.2.1: refinement
variables (kappas) stand for unknown refinements at polymorphic
instantiations and Phi-variables; subtyping produces Horn constraints over
them; the fixpoint solver starts from the conjunction of all candidate
qualifiers and weakens each kappa until all its constraints hold.
"""

from repro.core.liquid.qualifiers import QualifierPool, default_qualifiers
from repro.core.liquid.fixpoint import (
    KappaRegistry,
    LiquidSolver,
    ObligationOutcome,
    build_dependency_graph,
    scc_ranks,
)

__all__ = ["QualifierPool", "default_qualifiers", "KappaRegistry",
           "LiquidSolver", "ObligationOutcome", "build_dependency_graph",
           "scc_ranks"]
