"""Logical qualifiers — the candidate atomic refinements for liquid inference.

A qualifier is a predicate template over the value variable ``v`` and a
placeholder ``$star``; instantiation replaces the placeholder with program
variables that are in scope for the kappa being solved.  The default pool
follows the one shipped with the paper's implementation (bounds, equalities,
orderings, array-length relations and type tags); additional qualifiers are
harvested from the refinement annotations present in the program and from
explicit ``qualifier p;`` declarations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.logic import builtins
from repro.logic.terms import (
    Expr,
    IntLit,
    StrLit,
    Var,
    VALUE_VAR,
    conjuncts,
    eq,
    free_vars,
    ge,
    gt,
    le,
    lt,
    ne,
    substitute,
)

STAR = Var("$star")
STAR2 = Var("$star2")

#: Kinds of program variables a placeholder may be instantiated with.
KIND_NUMBER = "number"
KIND_ARRAY = "array"
KIND_ANY = "any"
#: "first-class value" kinds that make sense inside equality qualifiers
KIND_VALUE = "value"
_VALUE_KINDS = {"number", "array", "object", "string", "boolean"}


@dataclass(frozen=True)
class Qualifier:
    """A qualifier template with the placeholder kind it expects."""

    template: Expr
    star_kind: str = KIND_ANY

    def __post_init__(self) -> None:
        # Precomputed once — instantiation calls has_star() per candidate
        # scope, and free_vars() per call was measurable in that hot loop.
        # Not a dataclass field, so eq/hash stay template+kind only.
        object.__setattr__(
            self, "_has_star", "$star" in free_vars(self.template))

    def has_star(self) -> bool:
        return self._has_star  # type: ignore[attr-defined]

    def instantiate(self, candidates: Dict[str, str]) -> List[Expr]:
        """All instantiations of the template over candidate variables.

        ``candidates`` maps variable names to their kind ("number", "array",
        "object", ...)."""
        if not self.has_star():
            return [self.template]
        out: List[Expr] = []
        for name, kind in candidates.items():
            if self.star_kind == KIND_VALUE:
                if kind not in _VALUE_KINDS:
                    continue
            elif self.star_kind != KIND_ANY and kind != self.star_kind:
                continue
            out.append(substitute(self.template, {"$star": Var(name)}))
        return out


def default_qualifiers() -> List[Qualifier]:
    """The built-in qualifier pool."""
    v = VALUE_VAR
    zero = IntLit(0)
    quals: List[Qualifier] = [
        Qualifier(le(zero, v)),
        Qualifier(lt(zero, v)),
        Qualifier(ne(v, zero)),
        Qualifier(ge(v, IntLit(-1))),
        Qualifier(eq(v, STAR), KIND_VALUE),
        Qualifier(ne(v, STAR), KIND_VALUE),
        Qualifier(lt(v, STAR), KIND_NUMBER),
        Qualifier(le(v, STAR), KIND_NUMBER),
        Qualifier(gt(v, STAR), KIND_NUMBER),
        Qualifier(ge(v, STAR), KIND_NUMBER),
        Qualifier(lt(v, builtins.len_of(STAR)), KIND_ARRAY),
        Qualifier(le(v, builtins.len_of(STAR)), KIND_ARRAY),
        Qualifier(eq(v, builtins.len_of(STAR)), KIND_ARRAY),
        Qualifier(eq(builtins.len_of(v), builtins.len_of(STAR)), KIND_ARRAY),
    ]
    for tag in builtins.TYPE_TAGS:
        quals.append(Qualifier(eq(builtins.ttag_of(v), StrLit(tag))))
    return quals


class QualifierPool:
    """The set of qualifiers available for a checking run."""

    def __init__(self, qualifiers: Optional[Iterable[Qualifier]] = None) -> None:
        # an explicitly empty iterable means "no built-ins" (harvested-only
        # runs), so only None selects the default pool
        self.qualifiers: List[Qualifier] = list(
            default_qualifiers() if qualifiers is None else qualifiers)
        # Dedup keys on the template term itself (pointer-cheap after
        # hash-consing).  Keying on str(...) silently dropped distinct
        # templates whose renderings collide — e.g. Var("true") vs
        # BoolLit(True), or Var("'x'") vs StrLit("x").
        self._seen: Set[Expr] = {q.template for q in self.qualifiers}

    def add(self, qualifier: Qualifier) -> None:
        key = qualifier.template
        if key not in self._seen:
            self._seen.add(key)
            self.qualifiers.append(qualifier)

    def add_predicate(self, pred: Expr) -> None:
        """Harvest qualifiers from a refinement predicate found in the program.

        Each atomic conjunct mentioning ``v`` is added; if it mentions exactly
        one other variable, that variable is generalised to the placeholder."""
        for atom in conjuncts(pred):
            names = free_vars(atom)
            if VALUE_VAR.name not in names:
                continue
            others = sorted(n for n in names
                            if n != VALUE_VAR.name and not n.startswith("$k"))
            if not others:
                self.add(Qualifier(atom))
            elif len(others) == 1:
                generalised = substitute(atom, {others[0]: STAR})
                self.add(Qualifier(generalised))
                self.add(Qualifier(atom))
            else:
                self.add(Qualifier(atom))

    def instantiate(self, candidates: Dict[str, str]) -> List[Expr]:
        """All candidate refinements over the given scope variables."""
        out: List[Expr] = []
        seen: Set[Expr] = set()
        for qualifier in self.qualifiers:
            for inst in qualifier.instantiate(candidates):
                if inst not in seen:
                    seen.add(inst)
                    out.append(inst)
        return out
