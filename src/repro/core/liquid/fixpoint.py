"""The liquid fixpoint solver.

Given the flattened implications produced by checking (some of whose goals or
hypotheses mention kappa occurrences), the solver

1. initialises every kappa to the conjunction of all candidate qualifiers
   instantiated over the kappa's scope variables (filtered by kind),
2. repeatedly picks an implication whose goal is a kappa occurrence and
   removes from that kappa's assignment every qualifier not implied by the
   hypotheses (with the current assignment substituted in), and
3. stops at a fixpoint, which is the strongest assignment consistent with the
   constraints (standard predicate-abstraction argument).

Two scheduling strategies are available:

* ``"worklist"`` (the default) — builds the kappa dependency graph (an edge
  ``A -> B`` when kappa ``A`` occurs in a hypothesis of an implication whose
  goal is kappa ``B``), condenses it into strongly connected components, and
  schedules weakening in topological order of the condensation.  An
  implication is only revisited when one of the kappas its hypotheses
  mention actually changed, so stable regions of the constraint graph are
  never re-queried.  Cheap pre-SMT pruning (syntactic tautologies,
  syntactically inconsistent hypotheses, and a per-``(kappa, qualifier)``
  memo of already-refuted candidates) further cuts the validity queries that
  reach the solver; the survivors are batched through
  :meth:`repro.smt.solver.Solver.check_implication_batch` so the shared
  antecedent is built once per visit.
* ``"naive"`` — the historical global-round loop that sweeps every Horn
  implication each round.  It is kept as the reference oracle: the worklist
  engine must produce the identical solution while issuing fewer queries
  (asserted by the test-suite and reported by ``repro bench figure6``).

Typed counters for either strategy are recorded in a
:class:`repro.core.result.SolveStats` (``LiquidSolver.stats``).

Implications with concrete goals are *not* used during solving; they are the
final verification conditions checked afterwards by the caller
(:meth:`LiquidSolver.check_concrete`, which reports typed
:class:`ObligationOutcome` objects carrying the failing implication's
``RSC-*`` diagnostic code and origin span).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import groupby
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import DEFAULT_CODES, SourceSpan
from repro.logic.terms import (
    App,
    Expr,
    conj,
    conjuncts,
    neg,
    subterms,
    substitute,
)
from repro.rtypes.types import is_kvar_app
from repro.smt.solver import Solver
from repro.core.cancel import CancelToken, checkpoint
from repro.core.config import FIXPOINT_STRATEGIES
from repro.core.constraints import Implication
from repro.core.liquid.qualifiers import QualifierPool
from repro.core.result import SolveStats
from repro.obs.trace import span as trace_span, tracer as _tracer

#: Scheduling strategies understood by :class:`LiquidSolver` (the single
#: source of truth lives in :mod:`repro.core.config`).
STRATEGIES = FIXPOINT_STRATEGIES


@dataclass
class KappaInfo:
    """Metadata recorded when a kappa template is created.

    ``owner`` names the checkable unit (constraint partition) whose checking
    created the kappa; the incremental workspace uses it to decide which
    kappa assignments an edit invalidates.
    """

    name: str
    formals: List[str]                    # first formal is the value variable
    kinds: Dict[str, str] = field(default_factory=dict)   # formal -> kind
    owner: Optional[str] = None


class KappaRegistry:
    """All kappas created during a checking run."""

    def __init__(self) -> None:
        self.kappas: Dict[str, KappaInfo] = {}

    def register(self, name: str, formals: Sequence[str],
                 kinds: Optional[Dict[str, str]] = None,
                 owner: Optional[str] = None) -> None:
        self.kappas[name] = KappaInfo(name, list(formals), dict(kinds or {}),
                                      owner)

    def __contains__(self, name: str) -> bool:
        return name in self.kappas

    def info(self, name: str) -> KappaInfo:
        return self.kappas[name]

    def owners_of(self) -> Dict[str, Optional[str]]:
        """Kappa name -> owning partition (None for unowned kappas)."""
        return {name: info.owner for name, info in self.kappas.items()}


Solution = Dict[str, List[Expr]]


@dataclass
class ObligationOutcome:
    """The verdict on one concrete implication under the kappa solution.

    Carries the implication itself so callers can report *which* obligation
    failed: :attr:`code` resolves the implication's ``RSC-*`` diagnostic code
    (falling back to the family default for its kind) and :attr:`span` is the
    origin span threaded from constraint generation.  Iterating yields
    ``(implication, ok)`` for callers written against the old tuple API.
    """

    implication: Implication
    ok: bool
    goal: Expr

    @property
    def code(self) -> str:
        return self.implication.code or DEFAULT_CODES[self.implication.kind]

    @property
    def span(self) -> SourceSpan:
        return self.implication.span

    def message(self) -> str:
        return self.implication.reason

    def __iter__(self) -> Iterator:
        yield self.implication
        yield self.ok


# ---------------------------------------------------------------------------
# kappa dependency graph
# ---------------------------------------------------------------------------


def kappa_occurrences(expr: Expr) -> Set[str]:
    """Names of every kappa occurring anywhere in ``expr``."""
    return {sub.fn for sub in subterms(expr)
            if is_kvar_app(sub) and isinstance(sub, App)}


def build_dependency_graph(implications: Sequence[Implication]
                           ) -> Dict[str, Set[str]]:
    """The kappa dependency graph as an adjacency map ``A -> {B, ...}``.

    There is an edge ``A -> B`` when kappa ``A`` occurs in a hypothesis of an
    implication whose goal is kappa ``B`` — weakening ``A`` weakens that
    hypothesis, so ``B`` may need to be weakened in turn.  Every kappa
    mentioned by any implication appears as a node (possibly isolated).
    """
    graph: Dict[str, Set[str]] = {}
    for imp in implications:
        if not (is_kvar_app(imp.goal) and isinstance(imp.goal, App)):
            continue
        goal_name = imp.goal.fn
        graph.setdefault(goal_name, set())
        for hyp in imp.hyps:
            for dep in kappa_occurrences(hyp):
                graph.setdefault(dep, set()).add(goal_name)
    return graph


def scc_ranks(graph: Dict[str, Set[str]]) -> Tuple[Dict[str, int], int]:
    """Condense ``graph`` into SCCs and rank them topologically.

    Returns ``(rank, count)`` where ``rank[node]`` is the topological index
    of the node's SCC in the condensation (sources first: if ``A -> B`` and
    the two are in different components, ``rank[A] < rank[B]``) and ``count``
    is the number of components.  Tarjan's algorithm, iterative so deep
    chains of kappas cannot hit the recursion limit.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work: List[Tuple[str, Iterator[str]]] = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)

    # Tarjan emits components in reverse topological order of the
    # condensation, so the rank is the emission index flipped.
    count = len(sccs)
    rank: Dict[str, int] = {}
    for emitted, component in enumerate(sccs):
        for node in component:
            rank[node] = count - 1 - emitted
    return rank, count


# ---------------------------------------------------------------------------
# the solver
# ---------------------------------------------------------------------------

#: Candidate classifications inside a visit.
_KEEP, _DROP, _QUERY = 0, 1, 2


@dataclass
class _VisitOutcome:
    """The result of evaluating one worklist visit (before it is applied).

    Splitting evaluation from application lets the rank-parallel scheduler
    evaluate a whole rank group concurrently and commit the outcomes in the
    sequential order afterwards.
    """

    name: str                 # the goal kappa
    kept: List[Expr]          # surviving candidates, in order
    refuted_new: List[Expr]   # candidates newly refuted by SMT
    pruned: int               # queries avoided (memo hits + tautologies)
    issued: int               # queries actually sent to the solver
    changed: bool             # did the assignment shrink?


#: Sentinel outcome for a visit whose kappa has no candidates left — there
#: is nothing to weaken and nothing to commit.  (Solving only ever removes
#: candidates, so a _SKIP can never be invalidated by an earlier apply.)
_SKIP = _VisitOutcome("", [], [], 0, 0, False)


class LiquidSolver:
    def __init__(self, solver: Solver, pool: QualifierPool,
                 registry: KappaRegistry, max_iterations: int = 40,
                 strategy: str = "worklist", jobs: int = 1) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown fixpoint strategy {strategy!r} "
                             f"(expected one of {', '.join(STRATEGIES)})")
        self.solver = solver
        self.pool = pool
        self.registry = registry
        self.max_iterations = max_iterations
        self.strategy = strategy
        self.jobs = max(1, int(jobs))
        self.stats = SolveStats(strategy=strategy)
        self._cancel: Optional[CancelToken] = None
        # Refuted-candidate memo, bit-packed per kappa: candidates refuted
        # in an earlier solve on this instance are dropped without a new
        # query.  ``_bitmask_of[name][qual]`` assigns each distinct
        # instantiated qualifier a single-bit mask (in first-seen order,
        # mirrored in ``_universe``) and ``_refuted_mask[name]`` is the OR
        # of the refuted candidates' bits, so both the per-visit memo probe
        # and the batch "any refuted candidates here at all?" filter are
        # integer bit operations instead of per-candidate set probes.
        # The memo is sound only while the constraint set does not change
        # between calls (one checking run), which is how sessions use it.
        self._universe: Dict[str, List[Expr]] = {}
        self._bitmask_of: Dict[str, Dict[Expr, int]] = {}
        self._refuted_mask: Dict[str, int] = {}
        # SMT contexts are not thread-safe: the rank-parallel evaluator
        # serialises solver calls behind this lock (jobs == 1 never takes
        # it).
        self._smt_lock = threading.Lock()

    @property
    def refuted(self) -> Set[Tuple[str, Expr]]:
        """Read-only view of the refuted-candidate memo as (kappa,
        qualifier) pairs (reconstructed from the per-kappa bit masks)."""
        out: Set[Tuple[str, Expr]] = set()
        for name, mask in self._refuted_mask.items():
            if not mask:
                continue
            for i, qual in enumerate(self._universe[name]):
                if (mask >> i) & 1:
                    out.add((name, qual))
        return out

    # -- refuted-memo bit packing -----------------------------------------------------

    def _qual_bit(self, name: str, qual: Expr) -> int:
        """The single-bit mask for ``qual`` in ``name``'s candidate universe
        (assigning the next free bit on first sight)."""
        bits = self._bitmask_of.get(name)
        if bits is None:
            bits = {}
            self._bitmask_of[name] = bits
            self._universe[name] = []
        bit = bits.get(qual)
        if bit is None:
            universe = self._universe[name]
            bit = 1 << len(universe)
            bits[qual] = bit
            universe.append(qual)
        return bit

    def _mark_refuted(self, name: str, qual: Expr) -> None:
        self._refuted_mask[name] = (self._refuted_mask.get(name, 0)
                                    | self._qual_bit(name, qual))

    # -- solution application ---------------------------------------------------------

    def apply(self, expr: Expr, solution: Solution) -> Expr:
        """Replace every kappa occurrence in ``expr`` by its current solution."""
        replaced = expr
        for sub in list(subterms(expr)):
            if is_kvar_app(sub) and isinstance(sub, App):
                instantiated = self.instantiate(sub, solution)
                replaced = _replace_subterm(replaced, sub, instantiated)
        return replaced

    def instantiate(self, occurrence: App, solution: Solution) -> Expr:
        name = occurrence.fn
        if name not in self.registry:
            return conj()
        info = self.registry.info(name)
        quals = solution.get(name, [])
        mapping = _occurrence_subst(info, occurrence)
        return conj(*[substitute(q, mapping) for q in quals])

    # -- solving ----------------------------------------------------------------------

    def initial_solution(self) -> Solution:
        solution: Solution = {}
        for name in self.registry.kappas:
            solution[name] = self._initial_candidates(name)
        return solution

    def _initial_candidates(self, name: str) -> List[Expr]:
        """The strongest starting assignment for one kappa: every pool
        qualifier instantiated over its scope, minus memoised refutations.

        The refuted filter is vectorised: one popcount decides how many
        candidates drop, and when the kappa has no memoised refutations at
        all (the common case on a cold solve) the whole filter is a single
        integer AND."""
        info = self.registry.info(name)
        candidates = {formal: info.kinds.get(formal, "any")
                      for formal in info.formals[1:]}
        instantiated = self.pool.instantiate(candidates)
        rmask = self._refuted_mask.get(name, 0)
        if not rmask:
            # Still register the universe so later refutations get bits in
            # candidate order.
            for qual in instantiated:
                self._qual_bit(name, qual)
            return instantiated
        bits = [self._qual_bit(name, qual) for qual in instantiated]
        cand_mask = 0
        for bit in bits:
            cand_mask |= bit
        hit = cand_mask & rmask
        if not hit:
            return instantiated
        self.stats.queries_pruned += hit.bit_count()
        return [qual for qual, bit in zip(instantiated, bits)
                if not (bit & rmask)]

    def warm_solution(self, previous: Solution,
                      dirty_kappas: Set[str]) -> Solution:
        """The warm starting assignment: previous values for clean kappas,
        the strongest (pool-instantiated) assignment for dirty ones.

        Sound — i.e. converging to the same fixpoint a cold solve would —
        exactly when every clean kappa's constraints are unchanged and no
        implication mixes kappas from clean and dirty partitions; the
        workspace verifies both before requesting a warm start.
        """
        solution: Solution = {}
        for name in self.registry.kappas:
            if name in previous and name not in dirty_kappas:
                solution[name] = list(previous[name])
            else:
                solution[name] = self._initial_candidates(name)
        return solution

    def solve(self, implications: Sequence[Implication],
              previous: Optional[Solution] = None,
              dirty_kappas: Optional[Set[str]] = None,
              cancel: Optional[CancelToken] = None) -> Solution:
        """Solve the Horn implications for the strongest kappa assignment.

        With ``previous`` and ``dirty_kappas`` given (worklist strategy
        only), the solve is *warm-started*: clean kappas begin at their
        previous fixpoint values and the worklist is seeded with only the
        implications constraining dirty kappas — everything else is reached
        through the dependency graph if (and only if) a weakening actually
        propagates to it.

        A ``cancel`` token is polled between scheduler steps; when it fires
        the solve raises :class:`repro.core.cancel.CheckCancelled` (the
        partial solution is discarded by the caller — only the refuted-memo,
        which is always sound, survives).
        """
        self.stats = SolveStats(strategy=self.strategy)
        self._cancel = cancel
        with trace_span("fixpoint.solve", "fixpoint",
                        strategy=self.strategy) as sp:
            warm = (previous is not None and dirty_kappas is not None
                    and self.strategy == "worklist")
            if warm:
                solution = self.warm_solution(previous, dirty_kappas)
                self.stats.warm_starts = 1
            else:
                solution = self.initial_solution()
            horn = [imp for imp in implications
                    if self._goal_kappa(imp) is not None
                    and self._goal_kappa(imp).fn in self.registry]
            self.stats.kappas = len(self.registry.kappas)
            self.stats.horn_implications = len(horn)
            solver_before = self.solver.stats.copy()
            if self.strategy == "naive":
                self._solve_naive(horn, solution)
            else:
                self._solve_worklist(
                    horn, solution,
                    seed_kappas=dirty_kappas if warm else None)
            solver_delta = self.solver.stats.delta_since(solver_before)
            self.stats.cache_hits = solver_delta.cache_hits
            self.stats.contexts_created = solver_delta.contexts_created
            self.stats.contexts_reused = solver_delta.contexts_reused
            self.stats.clauses_learned = solver_delta.clauses_learned
            self.stats.lemmas_reused = solver_delta.lemmas_reused
            sp.note(kappas=self.stats.kappas,
                    horn=self.stats.horn_implications,
                    rounds=self.stats.rounds,
                    queries=self.stats.queries_issued)
        return solution

    def _solve_naive(self, horn: Sequence[Implication],
                     solution: Solution) -> None:
        """The reference global-round loop: sweep everything every round."""
        for sweep in range(self.max_iterations):
            checkpoint(self._cancel)
            self.stats.rounds += 1
            changed = False
            with trace_span("fixpoint.round", "fixpoint",
                            round=sweep, implications=len(horn)):
                for imp in horn:
                    occurrence = self._goal_kappa(imp)
                    assert occurrence is not None
                    name = occurrence.fn
                    info = self.registry.info(name)
                    mapping = _occurrence_subst(info, occurrence)
                    hyps = [self.apply(h, solution) for h in imp.hyps]
                    kept: List[Expr] = []
                    for qual in solution.get(name, []):
                        goal = substitute(qual, mapping)
                        self.stats.queries_issued += 1
                        if self.solver.check_implication(hyps, goal):
                            kept.append(qual)
                        else:
                            self._mark_refuted(name, qual)
                            changed = True
                    solution[name] = kept
            if not changed:
                break

    def _solve_worklist(self, horn: Sequence[Implication],
                        solution: Solution,
                        seed_kappas: Optional[Set[str]] = None) -> None:
        """Dependency-directed weakening in SCC-topological order.

        The schedule proceeds in rounds: each round visits, in topological
        rank order of the goal kappa's SCC, exactly the implications whose
        hypothesis kappas changed since their last visit (the first round
        visits everything).  Changes discovered mid-round are picked up by
        later visits in the same round; implications already behind the
        cursor are deferred to the next round.  Compared with scheduling
        each change individually this batches weakenings, so a revisited
        implication sees one consolidated new hypothesis state instead of a
        fresh SMT formula per predecessor change — and unlike the naive
        sweep, implications whose dependencies are stable are never
        reconsidered and no final confirmation sweep is needed.

        ``seed_kappas`` restricts the *initial* worklist to implications
        whose goal or hypotheses mention one of the named kappas (warm
        start); the watcher propagation then pulls in downstream
        implications exactly as for any other weakening.
        """
        graph = build_dependency_graph(horn)
        rank, scc_count = scc_ranks(graph)
        self.stats.sccs = scc_count

        # kappa name -> indices of implications whose hypotheses mention it
        # (the implications to revisit when that kappa weakens).
        goal_of: List[str] = []
        hyp_deps: List[Set[str]] = []
        watchers: Dict[str, Set[int]] = {}
        for idx, imp in enumerate(horn):
            occurrence = self._goal_kappa(imp)
            assert occurrence is not None
            goal_of.append(occurrence.fn)
            deps: Set[str] = set()
            for hyp in imp.hyps:
                deps.update(kappa_occurrences(hyp))
            hyp_deps.append(deps)
            for dep in deps:
                watchers.setdefault(dep, set()).add(idx)

        def priority(idx: int) -> Tuple[int, int]:
            return (rank.get(goal_of[idx], 0), idx)

        budget = self.max_iterations * max(1, len(horn))
        initial = range(len(horn))
        if seed_kappas is not None:
            initial = [idx for idx, imp in enumerate(horn)
                       if goal_of[idx] in seed_kappas
                       or hyp_deps[idx] & seed_kappas]
        current = sorted(initial, key=priority)
        pool = (ThreadPoolExecutor(max_workers=self.jobs,
                                   thread_name_prefix="fixpoint")
                if self.jobs > 1 else None)
        try:
            sweep = 0
            while current and self.stats.rounds < budget:
                position = {idx: pos for pos, idx in enumerate(current)}
                dirty: Set[int] = set()
                with trace_span("fixpoint.round", "fixpoint",
                                round=sweep, batch=len(current)):
                    if pool is None:
                        self._run_round_sequential(
                            horn, solution, current, position, goal_of,
                            watchers, budget, dirty)
                    else:
                        self._run_round_parallel(
                            pool, horn, solution, current, position, goal_of,
                            hyp_deps, watchers, rank, budget, dirty)
                current = sorted(dirty, key=priority)
                sweep += 1
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _run_round_sequential(self, horn: Sequence[Implication],
                              solution: Solution, current: List[int],
                              position: Dict[int, int], goal_of: List[str],
                              watchers: Dict[str, Set[int]], budget: int,
                              dirty: Set[int]) -> None:
        """One worklist round, visiting implications strictly in order."""
        for pos, idx in enumerate(current):
            if self.stats.rounds >= budget:
                break
            checkpoint(self._cancel)
            self.stats.rounds += 1
            if not self._visit(horn[idx], solution):
                continue
            for watcher in watchers.get(goal_of[idx], ()):
                # a watcher still ahead of the cursor this round
                # will observe the change anyway; everything else
                # is deferred
                if position.get(watcher, -1) <= pos:
                    dirty.add(watcher)

    def _run_round_parallel(self, pool: ThreadPoolExecutor,
                            horn: Sequence[Implication], solution: Solution,
                            current: List[int], position: Dict[int, int],
                            goal_of: List[str], hyp_deps: List[Set[str]],
                            watchers: Dict[str, Set[int]], rank: Dict[str, int],
                            budget: int, dirty: Set[int]) -> None:
        """One worklist round with rank-group-parallel evaluation.

        ``current`` is sorted by (rank, idx); consecutive runs of equal rank
        form the groups.  Each group is *evaluated* concurrently against the
        solution state left by all earlier groups (solution lists are
        rebound, never mutated, so concurrent readers are safe; SMT calls
        serialise behind ``_smt_lock``), then *applied* strictly in index
        order.  A speculative result is discarded and the visit re-run
        sequentially whenever an earlier apply in the same group changed a
        kappa the visit's hypotheses or goal depend on — so the observable
        weakening sequence (and therefore the fixpoint, the refuted memo,
        and the query-level pruning decisions) is exactly the sequential
        schedule's.
        """
        done = False
        for _, group_iter in groupby(current,
                                     key=lambda i: rank.get(goal_of[i], 0)):
            if done:
                break
            group = list(group_iter)
            if len(group) == 1:
                outcomes = [None]  # no point paying pool latency
            else:
                self.stats.rank_batches += 1
                futures = [pool.submit(self._evaluate, horn[idx], solution)
                           for idx in group]
                outcomes = [f.result() for f in futures]
            modified: Set[str] = set()
            for offset, idx in enumerate(group):
                if self.stats.rounds >= budget:
                    done = True
                    break
                checkpoint(self._cancel)
                self.stats.rounds += 1
                outcome = outcomes[offset]
                if outcome is _SKIP:
                    # The kappa had no candidates left at evaluation time;
                    # weakening never re-adds candidates, so this cannot go
                    # stale.
                    changed = False
                elif outcome is None or \
                        (hyp_deps[idx] | {goal_of[idx]}) & modified:
                    changed = self._visit(horn[idx], solution)
                else:
                    changed = self._apply_outcome(outcome, solution)
                if not changed:
                    continue
                modified.add(goal_of[idx])
                pos = position[idx]
                for watcher in watchers.get(goal_of[idx], ()):
                    if position.get(watcher, -1) <= pos:
                        dirty.add(watcher)

    def _visit(self, imp: Implication, solution: Solution) -> bool:
        """Weaken the goal kappa of ``imp``; True iff its assignment shrank."""
        outcome = self._evaluate(imp, solution)
        if outcome is _SKIP:
            return False
        return self._apply_outcome(outcome, solution)

    def _evaluate(self, imp: Implication,
                  solution: Solution) -> "_VisitOutcome":
        """The read-only half of a visit: classify the goal kappa's
        candidates against the current solution and run the SMT queries,
        without touching ``solution``, the refuted memo or the counters.

        The rank-parallel scheduler calls this concurrently for the visits
        of one rank group (solution lists are rebound, never mutated, so a
        plain read is a consistent snapshot between applies); the returned
        outcome is committed later — in index order — by
        :meth:`_apply_outcome`.
        """
        occurrence = self._goal_kappa(imp)
        assert occurrence is not None
        name = occurrence.fn
        quals = solution.get(name, [])
        if not quals:
            return _SKIP
        info = self.registry.info(name)
        mapping = _occurrence_subst(info, occurrence)
        hyps = [self.apply(h, solution) for h in imp.hyps]
        hyp_atoms: Set[Expr] = set()
        for hyp in hyps:
            hyp_atoms.update(conjuncts(hyp))
        vacuous = _syntactically_inconsistent(hyp_atoms)

        # Classify each candidate before touching the SMT solver: keep
        # syntactic tautologies for free, drop memoised refutations (one
        # AND against the kappa's refuted bit mask), and gather the rest
        # for one batched round of validity queries.
        rmask = self._refuted_mask.get(name, 0)
        decisions: List[int] = []
        pending_goals: List[Expr] = []
        pruned = 0
        for qual in quals:
            if rmask and (rmask & self._qual_bit(name, qual)):
                decisions.append(_DROP)
                pruned += 1
                continue
            goal = substitute(qual, mapping)
            if vacuous or goal.is_true() or goal in hyp_atoms:
                decisions.append(_KEEP)
                pruned += 1
                continue
            decisions.append(_QUERY)
            pending_goals.append(goal)

        verdicts: List[bool] = []
        if pending_goals:
            t = _tracer()
            if t.enabled:
                start_ns = time.perf_counter_ns()
                verdicts = self._check_batch(hyps, pending_goals)
                elapsed_ns = time.perf_counter_ns() - start_ns
                t.emit("fixpoint.batch", "fixpoint", start_ns, elapsed_ns,
                       {"kappa": name, "goals": len(pending_goals)})
                t.slow.record(elapsed_ns / 1e9, kind="batch", kappa=name,
                              owner=info.owner, goals=len(pending_goals))
            else:
                verdicts = self._check_batch(hyps, pending_goals)

        kept: List[Expr] = []
        refuted_new: List[Expr] = []
        changed = False
        verdict_at = 0
        for qual, decision in zip(quals, decisions):
            if decision == _KEEP:
                kept.append(qual)
            elif decision == _DROP:
                changed = True
            else:
                if verdicts[verdict_at]:
                    kept.append(qual)
                else:
                    refuted_new.append(qual)
                    changed = True
                verdict_at += 1
        return _VisitOutcome(name, kept, refuted_new, pruned,
                             len(pending_goals), changed)

    def _check_batch(self, hyps: List[Expr],
                     goals: List[Expr]) -> List[bool]:
        """Batched implication queries, serialised when workers share the
        solver (SMT contexts are stateful and not thread-safe)."""
        if self.jobs > 1:
            with self._smt_lock:
                return self.solver.check_implication_batch(hyps, goals)
        return self.solver.check_implication_batch(hyps, goals)

    def _apply_outcome(self, outcome: "_VisitOutcome",
                       solution: Solution) -> bool:
        """Commit an evaluated visit: counters, refuted memo, solution."""
        self.stats.queries_pruned += outcome.pruned
        self.stats.queries_issued += outcome.issued
        if not outcome.changed:
            return False
        for qual in outcome.refuted_new:
            self._mark_refuted(outcome.name, qual)
        solution[outcome.name] = outcome.kept
        return True

    def check_concrete(self, implications: Sequence[Implication],
                       solution: Solution,
                       cancel: Optional[CancelToken] = None
                       ) -> List[ObligationOutcome]:
        """Check every implication with a concrete goal under the solution."""
        results: List[ObligationOutcome] = []
        t = _tracer()
        for imp in implications:
            if self._goal_kappa(imp) is not None:
                continue
            checkpoint(cancel)
            hyps = [self.apply(h, solution) for h in imp.hyps]
            goal = self.apply(imp.goal, solution)
            if t.enabled:
                start_ns = time.perf_counter_ns()
                ok = self.solver.check_implication(hyps, goal)
                elapsed_ns = time.perf_counter_ns() - start_ns
                t.slow.record(elapsed_ns / 1e9, kind="concrete",
                              owner=imp.owner, goals=1)
            else:
                ok = self.solver.check_implication(hyps, goal)
            results.append(ObligationOutcome(imp, ok, goal))
        return results

    @staticmethod
    def _goal_kappa(imp: Implication) -> Optional[App]:
        if is_kvar_app(imp.goal) and isinstance(imp.goal, App):
            return imp.goal
        return None


def _syntactically_inconsistent(atoms: Set[Expr]) -> bool:
    """True when the hypothesis conjuncts are contradictory by syntax alone
    (a literal ``false``, or some atom alongside its negation) — every goal
    then follows vacuously without consulting the solver."""
    for atom in atoms:
        if atom.is_false():
            return True
        if neg(atom) in atoms:
            return True
    return False


def _occurrence_subst(info: KappaInfo, occurrence: App) -> Dict[str, Expr]:
    """The pending substitution carried by a kappa occurrence."""
    mapping: Dict[str, Expr] = {}
    for formal, actual in zip(info.formals, occurrence.args):
        mapping[formal] = actual
    return mapping


def _replace_subterm(expr: Expr, old: Expr, new: Expr) -> Expr:
    from repro.logic.terms import subst_term
    return subst_term(expr, old, new)
