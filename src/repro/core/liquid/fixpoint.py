"""The liquid fixpoint solver.

Given the flattened implications produced by checking (some of whose goals or
hypotheses mention kappa occurrences), the solver

1. initialises every kappa to the conjunction of all candidate qualifiers
   instantiated over the kappa's scope variables (filtered by kind),
2. repeatedly picks an implication whose goal is a kappa occurrence and
   removes from that kappa's assignment every qualifier not implied by the
   hypotheses (with the current assignment substituted in), and
3. stops at a fixpoint, which is the strongest assignment consistent with the
   constraints (standard predicate-abstraction argument).

Implications with concrete goals are *not* used during solving; they are the
final verification conditions checked afterwards by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.terms import App, Expr, Var, VALUE_VAR, conj, subterms, substitute
from repro.rtypes.types import is_kvar_app
from repro.smt.solver import Solver
from repro.core.constraints import Implication
from repro.core.liquid.qualifiers import QualifierPool


@dataclass
class KappaInfo:
    """Metadata recorded when a kappa template is created."""

    name: str
    formals: List[str]                    # first formal is the value variable
    kinds: Dict[str, str] = field(default_factory=dict)   # formal -> kind


class KappaRegistry:
    """All kappas created during a checking run."""

    def __init__(self) -> None:
        self.kappas: Dict[str, KappaInfo] = {}

    def register(self, name: str, formals: Sequence[str],
                 kinds: Optional[Dict[str, str]] = None) -> None:
        self.kappas[name] = KappaInfo(name, list(formals), dict(kinds or {}))

    def __contains__(self, name: str) -> bool:
        return name in self.kappas

    def info(self, name: str) -> KappaInfo:
        return self.kappas[name]


Solution = Dict[str, List[Expr]]


class LiquidSolver:
    def __init__(self, solver: Solver, pool: QualifierPool,
                 registry: KappaRegistry, max_iterations: int = 40) -> None:
        self.solver = solver
        self.pool = pool
        self.registry = registry
        self.max_iterations = max_iterations

    # -- solution application ---------------------------------------------------------

    def apply(self, expr: Expr, solution: Solution) -> Expr:
        """Replace every kappa occurrence in ``expr`` by its current solution."""
        replaced = expr
        for sub in list(subterms(expr)):
            if is_kvar_app(sub) and isinstance(sub, App):
                instantiated = self.instantiate(sub, solution)
                replaced = _replace_subterm(replaced, sub, instantiated)
        return replaced

    def instantiate(self, occurrence: App, solution: Solution) -> Expr:
        name = occurrence.fn
        if name not in self.registry:
            return conj()
        info = self.registry.info(name)
        quals = solution.get(name, [])
        mapping = _occurrence_subst(info, occurrence)
        return conj(*[substitute(q, mapping) for q in quals])

    # -- solving ----------------------------------------------------------------------

    def initial_solution(self) -> Solution:
        solution: Solution = {}
        for name, info in self.registry.kappas.items():
            candidates = {formal: info.kinds.get(formal, "any")
                          for formal in info.formals[1:]}
            solution[name] = self.pool.instantiate(candidates)
        return solution

    def solve(self, implications: Sequence[Implication]) -> Solution:
        solution = self.initial_solution()
        horn = [imp for imp in implications if self._goal_kappa(imp) is not None]
        for _ in range(self.max_iterations):
            changed = False
            for imp in horn:
                occurrence = self._goal_kappa(imp)
                assert occurrence is not None
                name = occurrence.fn
                if name not in self.registry:
                    continue
                info = self.registry.info(name)
                mapping = _occurrence_subst(info, occurrence)
                hyps = [self.apply(h, solution) for h in imp.hyps]
                kept: List[Expr] = []
                for qual in solution.get(name, []):
                    goal = substitute(qual, mapping)
                    if self.solver.check_implication(hyps, goal):
                        kept.append(qual)
                    else:
                        changed = True
                solution[name] = kept
            if not changed:
                break
        return solution

    def check_concrete(self, implications: Sequence[Implication],
                       solution: Solution) -> List[Tuple[Implication, bool]]:
        """Check every implication with a concrete goal under the solution."""
        results: List[Tuple[Implication, bool]] = []
        for imp in implications:
            if self._goal_kappa(imp) is not None:
                continue
            hyps = [self.apply(h, solution) for h in imp.hyps]
            goal = self.apply(imp.goal, solution)
            ok = self.solver.check_implication(hyps, goal)
            results.append((imp, ok))
        return results

    @staticmethod
    def _goal_kappa(imp: Implication) -> Optional[App]:
        if is_kvar_app(imp.goal) and isinstance(imp.goal, App):
            return imp.goal
        return None


def _occurrence_subst(info: KappaInfo, occurrence: App) -> Dict[str, Expr]:
    """The pending substitution carried by a kappa occurrence."""
    mapping: Dict[str, Expr] = {}
    for formal, actual in zip(info.formals, occurrence.args):
        mapping[formal] = actual
    return mapping


def _replace_subterm(expr: Expr, old: Expr, new: Expr) -> Expr:
    from repro.logic.terms import subst_term
    return subst_term(expr, old, new)
