"""The liquid fixpoint solver.

Given the flattened implications produced by checking (some of whose goals or
hypotheses mention kappa occurrences), the solver

1. initialises every kappa to the conjunction of all candidate qualifiers
   instantiated over the kappa's scope variables (filtered by kind),
2. repeatedly picks an implication whose goal is a kappa occurrence and
   removes from that kappa's assignment every qualifier not implied by the
   hypotheses (with the current assignment substituted in), and
3. stops at a fixpoint, which is the strongest assignment consistent with the
   constraints (standard predicate-abstraction argument).

Two scheduling strategies are available:

* ``"worklist"`` (the default) — builds the kappa dependency graph (an edge
  ``A -> B`` when kappa ``A`` occurs in a hypothesis of an implication whose
  goal is kappa ``B``), condenses it into strongly connected components, and
  schedules weakening in topological order of the condensation.  An
  implication is only revisited when one of the kappas its hypotheses
  mention actually changed, so stable regions of the constraint graph are
  never re-queried.  Cheap pre-SMT pruning (syntactic tautologies,
  syntactically inconsistent hypotheses, and a per-``(kappa, qualifier)``
  memo of already-refuted candidates) further cuts the validity queries that
  reach the solver; the survivors are batched through
  :meth:`repro.smt.solver.Solver.check_implication_batch` so the shared
  antecedent is built once per visit.
* ``"naive"`` — the historical global-round loop that sweeps every Horn
  implication each round.  It is kept as the reference oracle: the worklist
  engine must produce the identical solution while issuing fewer queries
  (asserted by the test-suite and reported by ``repro bench figure6``).

Typed counters for either strategy are recorded in a
:class:`repro.core.result.SolveStats` (``LiquidSolver.stats``).

Implications with concrete goals are *not* used during solving; they are the
final verification conditions checked afterwards by the caller
(:meth:`LiquidSolver.check_concrete`, which reports typed
:class:`ObligationOutcome` objects carrying the failing implication's
``RSC-*`` diagnostic code and origin span).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import DEFAULT_CODES, SourceSpan
from repro.logic.terms import (
    App,
    Expr,
    conj,
    conjuncts,
    neg,
    subterms,
    substitute,
)
from repro.rtypes.types import is_kvar_app
from repro.smt.solver import Solver
from repro.core.cancel import CancelToken, checkpoint
from repro.core.config import FIXPOINT_STRATEGIES
from repro.core.constraints import Implication
from repro.core.liquid.qualifiers import QualifierPool
from repro.core.result import SolveStats
from repro.obs.trace import span as trace_span, tracer as _tracer

#: Scheduling strategies understood by :class:`LiquidSolver` (the single
#: source of truth lives in :mod:`repro.core.config`).
STRATEGIES = FIXPOINT_STRATEGIES


@dataclass
class KappaInfo:
    """Metadata recorded when a kappa template is created.

    ``owner`` names the checkable unit (constraint partition) whose checking
    created the kappa; the incremental workspace uses it to decide which
    kappa assignments an edit invalidates.
    """

    name: str
    formals: List[str]                    # first formal is the value variable
    kinds: Dict[str, str] = field(default_factory=dict)   # formal -> kind
    owner: Optional[str] = None


class KappaRegistry:
    """All kappas created during a checking run."""

    def __init__(self) -> None:
        self.kappas: Dict[str, KappaInfo] = {}

    def register(self, name: str, formals: Sequence[str],
                 kinds: Optional[Dict[str, str]] = None,
                 owner: Optional[str] = None) -> None:
        self.kappas[name] = KappaInfo(name, list(formals), dict(kinds or {}),
                                      owner)

    def __contains__(self, name: str) -> bool:
        return name in self.kappas

    def info(self, name: str) -> KappaInfo:
        return self.kappas[name]

    def owners_of(self) -> Dict[str, Optional[str]]:
        """Kappa name -> owning partition (None for unowned kappas)."""
        return {name: info.owner for name, info in self.kappas.items()}


Solution = Dict[str, List[Expr]]


@dataclass
class ObligationOutcome:
    """The verdict on one concrete implication under the kappa solution.

    Carries the implication itself so callers can report *which* obligation
    failed: :attr:`code` resolves the implication's ``RSC-*`` diagnostic code
    (falling back to the family default for its kind) and :attr:`span` is the
    origin span threaded from constraint generation.  Iterating yields
    ``(implication, ok)`` for callers written against the old tuple API.
    """

    implication: Implication
    ok: bool
    goal: Expr

    @property
    def code(self) -> str:
        return self.implication.code or DEFAULT_CODES[self.implication.kind]

    @property
    def span(self) -> SourceSpan:
        return self.implication.span

    def message(self) -> str:
        return self.implication.reason

    def __iter__(self) -> Iterator:
        yield self.implication
        yield self.ok


# ---------------------------------------------------------------------------
# kappa dependency graph
# ---------------------------------------------------------------------------


def kappa_occurrences(expr: Expr) -> Set[str]:
    """Names of every kappa occurring anywhere in ``expr``."""
    return {sub.fn for sub in subterms(expr)
            if is_kvar_app(sub) and isinstance(sub, App)}


def build_dependency_graph(implications: Sequence[Implication]
                           ) -> Dict[str, Set[str]]:
    """The kappa dependency graph as an adjacency map ``A -> {B, ...}``.

    There is an edge ``A -> B`` when kappa ``A`` occurs in a hypothesis of an
    implication whose goal is kappa ``B`` — weakening ``A`` weakens that
    hypothesis, so ``B`` may need to be weakened in turn.  Every kappa
    mentioned by any implication appears as a node (possibly isolated).
    """
    graph: Dict[str, Set[str]] = {}
    for imp in implications:
        if not (is_kvar_app(imp.goal) and isinstance(imp.goal, App)):
            continue
        goal_name = imp.goal.fn
        graph.setdefault(goal_name, set())
        for hyp in imp.hyps:
            for dep in kappa_occurrences(hyp):
                graph.setdefault(dep, set()).add(goal_name)
    return graph


def scc_ranks(graph: Dict[str, Set[str]]) -> Tuple[Dict[str, int], int]:
    """Condense ``graph`` into SCCs and rank them topologically.

    Returns ``(rank, count)`` where ``rank[node]`` is the topological index
    of the node's SCC in the condensation (sources first: if ``A -> B`` and
    the two are in different components, ``rank[A] < rank[B]``) and ``count``
    is the number of components.  Tarjan's algorithm, iterative so deep
    chains of kappas cannot hit the recursion limit.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work: List[Tuple[str, Iterator[str]]] = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)

    # Tarjan emits components in reverse topological order of the
    # condensation, so the rank is the emission index flipped.
    count = len(sccs)
    rank: Dict[str, int] = {}
    for emitted, component in enumerate(sccs):
        for node in component:
            rank[node] = count - 1 - emitted
    return rank, count


# ---------------------------------------------------------------------------
# the solver
# ---------------------------------------------------------------------------


class LiquidSolver:
    def __init__(self, solver: Solver, pool: QualifierPool,
                 registry: KappaRegistry, max_iterations: int = 40,
                 strategy: str = "worklist") -> None:
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown fixpoint strategy {strategy!r} "
                             f"(expected one of {', '.join(STRATEGIES)})")
        self.solver = solver
        self.pool = pool
        self.registry = registry
        self.max_iterations = max_iterations
        self.strategy = strategy
        self.stats = SolveStats(strategy=strategy)
        self._cancel: Optional[CancelToken] = None
        # (kappa name, qualifier template) pairs refuted in an earlier solve
        # on this instance; such candidates are dropped without a new query.
        # The memo is sound only while the constraint set does not change
        # between calls (one checking run), which is how sessions use it.
        self._refuted: Set[Tuple[str, Expr]] = set()

    @property
    def refuted(self) -> Set[Tuple[str, Expr]]:
        """Read-only view of the refuted-candidate memo."""
        return set(self._refuted)

    # -- solution application ---------------------------------------------------------

    def apply(self, expr: Expr, solution: Solution) -> Expr:
        """Replace every kappa occurrence in ``expr`` by its current solution."""
        replaced = expr
        for sub in list(subterms(expr)):
            if is_kvar_app(sub) and isinstance(sub, App):
                instantiated = self.instantiate(sub, solution)
                replaced = _replace_subterm(replaced, sub, instantiated)
        return replaced

    def instantiate(self, occurrence: App, solution: Solution) -> Expr:
        name = occurrence.fn
        if name not in self.registry:
            return conj()
        info = self.registry.info(name)
        quals = solution.get(name, [])
        mapping = _occurrence_subst(info, occurrence)
        return conj(*[substitute(q, mapping) for q in quals])

    # -- solving ----------------------------------------------------------------------

    def initial_solution(self) -> Solution:
        solution: Solution = {}
        for name in self.registry.kappas:
            solution[name] = self._initial_candidates(name)
        return solution

    def _initial_candidates(self, name: str) -> List[Expr]:
        """The strongest starting assignment for one kappa: every pool
        qualifier instantiated over its scope, minus memoised refutations."""
        info = self.registry.info(name)
        candidates = {formal: info.kinds.get(formal, "any")
                      for formal in info.formals[1:]}
        instantiated = self.pool.instantiate(candidates)
        kept: List[Expr] = []
        for qual in instantiated:
            if (name, qual) in self._refuted:
                self.stats.queries_pruned += 1
            else:
                kept.append(qual)
        return kept

    def warm_solution(self, previous: Solution,
                      dirty_kappas: Set[str]) -> Solution:
        """The warm starting assignment: previous values for clean kappas,
        the strongest (pool-instantiated) assignment for dirty ones.

        Sound — i.e. converging to the same fixpoint a cold solve would —
        exactly when every clean kappa's constraints are unchanged and no
        implication mixes kappas from clean and dirty partitions; the
        workspace verifies both before requesting a warm start.
        """
        solution: Solution = {}
        for name in self.registry.kappas:
            if name in previous and name not in dirty_kappas:
                solution[name] = list(previous[name])
            else:
                solution[name] = self._initial_candidates(name)
        return solution

    def solve(self, implications: Sequence[Implication],
              previous: Optional[Solution] = None,
              dirty_kappas: Optional[Set[str]] = None,
              cancel: Optional[CancelToken] = None) -> Solution:
        """Solve the Horn implications for the strongest kappa assignment.

        With ``previous`` and ``dirty_kappas`` given (worklist strategy
        only), the solve is *warm-started*: clean kappas begin at their
        previous fixpoint values and the worklist is seeded with only the
        implications constraining dirty kappas — everything else is reached
        through the dependency graph if (and only if) a weakening actually
        propagates to it.

        A ``cancel`` token is polled between scheduler steps; when it fires
        the solve raises :class:`repro.core.cancel.CheckCancelled` (the
        partial solution is discarded by the caller — only the refuted-memo,
        which is always sound, survives).
        """
        self.stats = SolveStats(strategy=self.strategy)
        self._cancel = cancel
        with trace_span("fixpoint.solve", "fixpoint",
                        strategy=self.strategy) as sp:
            warm = (previous is not None and dirty_kappas is not None
                    and self.strategy == "worklist")
            if warm:
                solution = self.warm_solution(previous, dirty_kappas)
                self.stats.warm_starts = 1
            else:
                solution = self.initial_solution()
            horn = [imp for imp in implications
                    if self._goal_kappa(imp) is not None
                    and self._goal_kappa(imp).fn in self.registry]
            self.stats.kappas = len(self.registry.kappas)
            self.stats.horn_implications = len(horn)
            solver_before = self.solver.stats.copy()
            if self.strategy == "naive":
                self._solve_naive(horn, solution)
            else:
                self._solve_worklist(
                    horn, solution,
                    seed_kappas=dirty_kappas if warm else None)
            solver_delta = self.solver.stats.delta_since(solver_before)
            self.stats.cache_hits = solver_delta.cache_hits
            self.stats.contexts_created = solver_delta.contexts_created
            self.stats.contexts_reused = solver_delta.contexts_reused
            self.stats.clauses_learned = solver_delta.clauses_learned
            self.stats.lemmas_reused = solver_delta.lemmas_reused
            sp.note(kappas=self.stats.kappas,
                    horn=self.stats.horn_implications,
                    rounds=self.stats.rounds,
                    queries=self.stats.queries_issued)
        return solution

    def _solve_naive(self, horn: Sequence[Implication],
                     solution: Solution) -> None:
        """The reference global-round loop: sweep everything every round."""
        for sweep in range(self.max_iterations):
            checkpoint(self._cancel)
            self.stats.rounds += 1
            changed = False
            with trace_span("fixpoint.round", "fixpoint",
                            round=sweep, implications=len(horn)):
                for imp in horn:
                    occurrence = self._goal_kappa(imp)
                    assert occurrence is not None
                    name = occurrence.fn
                    info = self.registry.info(name)
                    mapping = _occurrence_subst(info, occurrence)
                    hyps = [self.apply(h, solution) for h in imp.hyps]
                    kept: List[Expr] = []
                    for qual in solution.get(name, []):
                        goal = substitute(qual, mapping)
                        self.stats.queries_issued += 1
                        if self.solver.check_implication(hyps, goal):
                            kept.append(qual)
                        else:
                            self._refuted.add((name, qual))
                            changed = True
                    solution[name] = kept
            if not changed:
                break

    def _solve_worklist(self, horn: Sequence[Implication],
                        solution: Solution,
                        seed_kappas: Optional[Set[str]] = None) -> None:
        """Dependency-directed weakening in SCC-topological order.

        The schedule proceeds in rounds: each round visits, in topological
        rank order of the goal kappa's SCC, exactly the implications whose
        hypothesis kappas changed since their last visit (the first round
        visits everything).  Changes discovered mid-round are picked up by
        later visits in the same round; implications already behind the
        cursor are deferred to the next round.  Compared with scheduling
        each change individually this batches weakenings, so a revisited
        implication sees one consolidated new hypothesis state instead of a
        fresh SMT formula per predecessor change — and unlike the naive
        sweep, implications whose dependencies are stable are never
        reconsidered and no final confirmation sweep is needed.

        ``seed_kappas`` restricts the *initial* worklist to implications
        whose goal or hypotheses mention one of the named kappas (warm
        start); the watcher propagation then pulls in downstream
        implications exactly as for any other weakening.
        """
        graph = build_dependency_graph(horn)
        rank, scc_count = scc_ranks(graph)
        self.stats.sccs = scc_count

        # kappa name -> indices of implications whose hypotheses mention it
        # (the implications to revisit when that kappa weakens).
        goal_of: List[str] = []
        watchers: Dict[str, Set[int]] = {}
        for idx, imp in enumerate(horn):
            occurrence = self._goal_kappa(imp)
            assert occurrence is not None
            goal_of.append(occurrence.fn)
            for hyp in imp.hyps:
                for dep in kappa_occurrences(hyp):
                    watchers.setdefault(dep, set()).add(idx)

        def priority(idx: int) -> Tuple[int, int]:
            return (rank.get(goal_of[idx], 0), idx)

        budget = self.max_iterations * max(1, len(horn))
        initial = range(len(horn))
        if seed_kappas is not None:
            initial = [idx for idx, imp in enumerate(horn)
                       if goal_of[idx] in seed_kappas
                       or any(dep in seed_kappas
                              for hyp in imp.hyps
                              for dep in kappa_occurrences(hyp))]
        current = sorted(initial, key=priority)
        sweep = 0
        while current and self.stats.rounds < budget:
            position = {idx: pos for pos, idx in enumerate(current)}
            dirty: Set[int] = set()
            with trace_span("fixpoint.round", "fixpoint",
                            round=sweep, batch=len(current)):
                for pos, idx in enumerate(current):
                    if self.stats.rounds >= budget:
                        break
                    checkpoint(self._cancel)
                    self.stats.rounds += 1
                    if not self._visit(horn[idx], solution):
                        continue
                    for watcher in watchers.get(goal_of[idx], ()):
                        # a watcher still ahead of the cursor this round
                        # will observe the change anyway; everything else
                        # is deferred
                        if position.get(watcher, -1) <= pos:
                            dirty.add(watcher)
            current = sorted(dirty, key=priority)
            sweep += 1

    def _visit(self, imp: Implication, solution: Solution) -> bool:
        """Weaken the goal kappa of ``imp``; True iff its assignment shrank."""
        occurrence = self._goal_kappa(imp)
        assert occurrence is not None
        name = occurrence.fn
        quals = solution.get(name, [])
        if not quals:
            return False
        info = self.registry.info(name)
        mapping = _occurrence_subst(info, occurrence)
        hyps = [self.apply(h, solution) for h in imp.hyps]
        hyp_atoms: Set[Expr] = set()
        for hyp in hyps:
            hyp_atoms.update(conjuncts(hyp))
        vacuous = _syntactically_inconsistent(hyp_atoms)

        # Classify each candidate before touching the SMT solver: keep
        # syntactic tautologies for free, drop memoised refutations, and
        # gather the rest for one batched round of validity queries.
        KEEP, DROP, QUERY = 0, 1, 2
        decisions: List[int] = []
        pending_goals: List[Expr] = []
        for qual in quals:
            if (name, qual) in self._refuted:
                decisions.append(DROP)
                self.stats.queries_pruned += 1
                continue
            goal = substitute(qual, mapping)
            if vacuous or goal.is_true() or goal in hyp_atoms:
                decisions.append(KEEP)
                self.stats.queries_pruned += 1
                continue
            decisions.append(QUERY)
            pending_goals.append(goal)

        verdicts: List[bool] = []
        if pending_goals:
            self.stats.queries_issued += len(pending_goals)
            t = _tracer()
            if t.enabled:
                start_ns = time.perf_counter_ns()
                verdicts = self.solver.check_implication_batch(hyps,
                                                               pending_goals)
                elapsed_ns = time.perf_counter_ns() - start_ns
                t.emit("fixpoint.batch", "fixpoint", start_ns, elapsed_ns,
                       {"kappa": name, "goals": len(pending_goals)})
                t.slow.record(elapsed_ns / 1e9, kind="batch", kappa=name,
                              owner=info.owner, goals=len(pending_goals))
            else:
                verdicts = self.solver.check_implication_batch(hyps,
                                                               pending_goals)

        kept: List[Expr] = []
        changed = False
        verdict_at = 0
        for qual, decision in zip(quals, decisions):
            if decision == KEEP:
                kept.append(qual)
            elif decision == DROP:
                changed = True
            else:
                if verdicts[verdict_at]:
                    kept.append(qual)
                else:
                    self._refuted.add((name, qual))
                    changed = True
                verdict_at += 1
        if changed:
            solution[name] = kept
        return changed

    def check_concrete(self, implications: Sequence[Implication],
                       solution: Solution,
                       cancel: Optional[CancelToken] = None
                       ) -> List[ObligationOutcome]:
        """Check every implication with a concrete goal under the solution."""
        results: List[ObligationOutcome] = []
        t = _tracer()
        for imp in implications:
            if self._goal_kappa(imp) is not None:
                continue
            checkpoint(cancel)
            hyps = [self.apply(h, solution) for h in imp.hyps]
            goal = self.apply(imp.goal, solution)
            if t.enabled:
                start_ns = time.perf_counter_ns()
                ok = self.solver.check_implication(hyps, goal)
                elapsed_ns = time.perf_counter_ns() - start_ns
                t.slow.record(elapsed_ns / 1e9, kind="concrete",
                              owner=imp.owner, goals=1)
            else:
                ok = self.solver.check_implication(hyps, goal)
            results.append(ObligationOutcome(imp, ok, goal))
        return results

    @staticmethod
    def _goal_kappa(imp: Implication) -> Optional[App]:
        if is_kvar_app(imp.goal) and isinstance(imp.goal, App):
            return imp.goal
        return None


def _syntactically_inconsistent(atoms: Set[Expr]) -> bool:
    """True when the hypothesis conjuncts are contradictory by syntax alone
    (a literal ``false``, or some atom alongside its negation) — every goal
    then follows vacuously without consulting the solver."""
    for atom in atoms:
        if atom.is_false():
            return True
        if neg(atom) in atoms:
            return True
    return False


def _occurrence_subst(info: KappaInfo, occurrence: App) -> Dict[str, Expr]:
    """The pending substitution carried by a kappa occurrence."""
    mapping: Dict[str, Expr] = {}
    for formal, actual in zip(info.formals, occurrence.args):
        mapping[formal] = actual
    return mapping


def _replace_subterm(expr: Expr, old: Expr, new: Expr) -> Expr:
    from repro.logic.terms import subst_term
    return subst_term(expr, old, new)
