"""Constraint representation: subtyping constraints and their flattening into
logical implications (verification conditions / Horn constraints).

Checking a program produces a :class:`ConstraintSet` containing

* :class:`SubC` — ``Gamma |- S <: T`` subtyping constraints,
* :class:`Implication` — flattened obligations ``hyps => goal`` where the
  goal is either a concrete predicate (a VC, discharged by the SMT solver) or
  a single kappa occurrence (a Horn constraint, solved by liquid fixpoint).

Dead-code obligations from two-phase typing (section 2.1.2) are implications
whose goal is literally ``false``: they hold exactly when the environment is
inconsistent, i.e. the code is unreachable under the current overload.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import ErrorKind, SourceSpan
from repro.logic.terms import BoolLit, Expr, conj
from repro.rtypes.types import RType
from repro.core.environment import Env


@dataclass
class SubC:
    """A subtyping constraint ``env |- lhs <: rhs``.

    ``owner`` names the checkable unit (function, method, constructor) whose
    checking emitted the constraint; the incremental workspace uses it to
    invalidate only the partitions an edit touched.
    """

    env: Env
    lhs: RType
    rhs: RType
    reason: str
    span: SourceSpan = field(default_factory=SourceSpan.unknown)
    kind: ErrorKind = ErrorKind.SUBTYPE
    code: Optional[str] = None
    owner: Optional[str] = None


@dataclass
class Implication:
    """A flattened obligation ``/\\ hyps => goal``."""

    hyps: List[Expr]
    goal: Expr
    reason: str
    span: SourceSpan = field(default_factory=SourceSpan.unknown)
    kind: ErrorKind = ErrorKind.SUBTYPE
    code: Optional[str] = None
    owner: Optional[str] = None

    def is_dead_code_obligation(self) -> bool:
        return isinstance(self.goal, BoolLit) and self.goal.value is False

    def hypothesis(self) -> Expr:
        return conj(*self.hyps)


@dataclass
class ConstraintSet:
    """All constraints collected while checking one program.

    While the checker walks one checkable unit it sets
    :attr:`current_owner` (via the :meth:`owned` context manager); every
    constraint added without an explicit ``owner`` inherits it.  The
    subtype splitter, which runs after checking, passes the originating
    constraint's owner explicitly instead.
    """

    subtypings: List[SubC] = field(default_factory=list)
    implications: List[Implication] = field(default_factory=list)
    current_owner: Optional[str] = None

    @contextmanager
    def owned(self, owner: Optional[str]) -> Iterator[None]:
        """Attribute constraints added inside the block to ``owner``."""
        previous = self.current_owner
        self.current_owner = owner
        try:
            yield
        finally:
            self.current_owner = previous

    def add_sub(self, env: Env, lhs: RType, rhs: RType, reason: str,
                span: Optional[SourceSpan] = None,
                kind: ErrorKind = ErrorKind.SUBTYPE,
                code: Optional[str] = None,
                owner: Optional[str] = None) -> None:
        self.subtypings.append(SubC(env, lhs, rhs, reason,
                                    span or SourceSpan.unknown(), kind, code,
                                    owner if owner is not None
                                    else self.current_owner))

    def add_implication(self, hyps: List[Expr], goal: Expr, reason: str,
                        span: Optional[SourceSpan] = None,
                        kind: ErrorKind = ErrorKind.SUBTYPE,
                        code: Optional[str] = None,
                        owner: Optional[str] = None) -> None:
        self.implications.append(Implication(list(hyps), goal, reason,
                                             span or SourceSpan.unknown(), kind,
                                             code,
                                             owner if owner is not None
                                             else self.current_owner))

    def add_dead_code(self, env: Env, reason: str,
                      span: Optional[SourceSpan] = None,
                      kind: ErrorKind = ErrorKind.OVERLOAD,
                      code: Optional[str] = None,
                      owner: Optional[str] = None) -> None:
        """Require that ``env`` is inconsistent (the program point is dead)."""
        self.add_implication(env.hypotheses(), BoolLit(False), reason, span,
                             kind, code, owner)

    def extend(self, other: "ConstraintSet") -> None:
        self.subtypings.extend(other.subtypings)
        self.implications.extend(other.implications)

    def __len__(self) -> int:
        return len(self.subtypings) + len(self.implications)
