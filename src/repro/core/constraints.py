"""Constraint representation: subtyping constraints and their flattening into
logical implications (verification conditions / Horn constraints).

Checking a program produces a :class:`ConstraintSet` containing

* :class:`SubC` — ``Gamma |- S <: T`` subtyping constraints,
* :class:`Implication` — flattened obligations ``hyps => goal`` where the
  goal is either a concrete predicate (a VC, discharged by the SMT solver) or
  a single kappa occurrence (a Horn constraint, solved by liquid fixpoint).

Dead-code obligations from two-phase typing (section 2.1.2) are implications
whose goal is literally ``false``: they hold exactly when the environment is
inconsistent, i.e. the code is unreachable under the current overload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ErrorKind, SourceSpan
from repro.logic.terms import BoolLit, Expr, conj
from repro.rtypes.types import RType
from repro.core.environment import Env


@dataclass
class SubC:
    """A subtyping constraint ``env |- lhs <: rhs``."""

    env: Env
    lhs: RType
    rhs: RType
    reason: str
    span: SourceSpan = field(default_factory=SourceSpan.unknown)
    kind: ErrorKind = ErrorKind.SUBTYPE
    code: Optional[str] = None


@dataclass
class Implication:
    """A flattened obligation ``/\\ hyps => goal``."""

    hyps: List[Expr]
    goal: Expr
    reason: str
    span: SourceSpan = field(default_factory=SourceSpan.unknown)
    kind: ErrorKind = ErrorKind.SUBTYPE
    code: Optional[str] = None

    def is_dead_code_obligation(self) -> bool:
        return isinstance(self.goal, BoolLit) and self.goal.value is False

    def hypothesis(self) -> Expr:
        return conj(*self.hyps)


@dataclass
class ConstraintSet:
    """All constraints collected while checking one program."""

    subtypings: List[SubC] = field(default_factory=list)
    implications: List[Implication] = field(default_factory=list)

    def add_sub(self, env: Env, lhs: RType, rhs: RType, reason: str,
                span: Optional[SourceSpan] = None,
                kind: ErrorKind = ErrorKind.SUBTYPE,
                code: Optional[str] = None) -> None:
        self.subtypings.append(SubC(env, lhs, rhs, reason,
                                    span or SourceSpan.unknown(), kind, code))

    def add_implication(self, hyps: List[Expr], goal: Expr, reason: str,
                        span: Optional[SourceSpan] = None,
                        kind: ErrorKind = ErrorKind.SUBTYPE,
                        code: Optional[str] = None) -> None:
        self.implications.append(Implication(list(hyps), goal, reason,
                                             span or SourceSpan.unknown(), kind,
                                             code))

    def add_dead_code(self, env: Env, reason: str,
                      span: Optional[SourceSpan] = None,
                      kind: ErrorKind = ErrorKind.OVERLOAD,
                      code: Optional[str] = None) -> None:
        """Require that ``env`` is inconsistent (the program point is dead)."""
        self.add_implication(env.hypotheses(), BoolLit(False), reason, span,
                             kind, code)

    def extend(self, other: "ConstraintSet") -> None:
        self.subtypings.extend(other.subtypings)
        self.implications.extend(other.implications)

    def __len__(self) -> int:
        return len(self.subtypings) + len(self.implications)
