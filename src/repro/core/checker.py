"""The RSC refinement type checker (constraint generation over IRSC).

For every function, method and constructor the checker

1. SSA-converts the body (:mod:`repro.ssa`),
2. walks the resulting IRSC term, synthesising refinement types for
   expressions and emitting subtyping constraints at value-flow points
   (assignments, calls, returns, writes, Phi joins),
3. introduces kappa templates for polymorphic instantiations and Phi
   variables (loop invariants),
4. encodes overloading via two-phase typing: each overload of an
   intersection signature is checked separately and base-type mismatches
   become dead-code obligations.

The collected constraints are then flattened (:mod:`repro.core.subtype`),
kappas are solved by liquid fixpoint (:mod:`repro.core.liquid`), and the
remaining concrete verification conditions are discharged by the SMT layer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import DiagnosticBag, ErrorKind, SourceSpan
from repro.lang import ast
from repro.logic import builtins
from repro.logic.terms import (
    App,
    BoolLit,
    Expr,
    Field,
    IntLit,
    StrLit,
    Var,
    VALUE_VAR,
    conj,
    eq,
    le,
    lt,
    ne,
    true,
)
from repro.rtypes import Mutability
from repro.rtypes.types import (
    KVAR_PREFIX,
    RType,
    TArray,
    TFun,
    TInter,
    TObject,
    TParam,
    TPrim,
    TRef,
    TUnion,
    TVar,
    base_of,
    boolean,
    embed,
    number,
    refine,
    selfify,
    string,
    subst_terms,
    subst_types,
    undefined_t,
    unpack_exists,
    void,
)
from repro.smt.solver import Solver
from repro.ssa import ir
from repro.ssa.transform import SsaTransformer
from repro.core import prelude
from repro.core.classtable import ClassInfo, ClassTable, FieldInfo, MethodInfo
from repro.core.constraints import ConstraintSet
from repro.core.embedexpr import ExprEmbedder
from repro.core.environment import Env
from repro.core.liquid.fixpoint import KappaRegistry
from repro.core.liquid.qualifiers import QualifierPool
from repro.core.resolve import Resolver


@dataclass
class ClosureInfo:
    """A nested function whose signature is determined at its use site."""

    decl: ast.FunctionDecl
    env: Env


@dataclass
class CheckerStats:
    functions_checked: int = 0
    overloads_checked: int = 0
    methods_checked: int = 0
    constructors_checked: int = 0
    kappas_created: int = 0
    constraints: int = 0


class Checker:
    """Constraint generation for a whole program."""

    def __init__(self, program: ast.Program, diags: DiagnosticBag,
                 solver: Optional[Solver] = None,
                 pool: Optional[QualifierPool] = None) -> None:
        self.program = program
        self.diags = diags
        self.table = ClassTable.from_program(program, diags)
        self.resolver = Resolver(self.table, diags)
        self.constraints = ConstraintSet()
        self.kappas = KappaRegistry()
        self.pool = pool or QualifierPool()
        self.solver = solver or Solver()
        self.embedder = ExprEmbedder(self.table.enums)
        self.stats = CheckerStats()
        self._closures: Dict[str, ClosureInfo] = {}
        # Kappa names are deterministic *per checkable unit* (the constraint
        # partition owner), so re-checking an unchanged declaration after an
        # edit elsewhere reproduces identical kappa names — the property the
        # incremental workspace's warm-started fixpoint relies on.
        self._kappa_counters: Dict[Optional[str], "itertools.count"] = {}
        self._in_constructor = False
        self._signatures: Dict[str, RType] = {}
        # Class-typed binders carry their class invariant in their embedding
        # (rule [T-NEW] / the `inv` structural constraint of section 3.2).
        from repro.rtypes.types import set_invariant_hook
        set_invariant_hook(self.table.invariant)

    # ------------------------------------------------------------------
    # program-level driving
    # ------------------------------------------------------------------

    def run(self) -> None:
        self._resolve_class_members()
        self._harvest_qualifiers()
        global_env = self._global_env()
        for decl in self.program.declarations:
            if isinstance(decl, ast.FunctionDecl) and decl.body is not None:
                with self.constraints.owned(decl.name):
                    self._check_function_decl(decl, global_env)
            elif isinstance(decl, ast.ClassDecl):
                self._check_class(decl, global_env)
        self.stats.constraints = len(self.constraints)

    def _resolve_class_members(self) -> None:
        for name, info in self.table.classes.items():
            decl = info.decl
            if decl is None:
                continue
            tparams = info.tparams
            field_decls = decl.fields if isinstance(decl, (ast.ClassDecl,
                                                           ast.InterfaceDecl)) else []
            for fdecl in field_decls:
                info.fields[fdecl.name] = FieldInfo(
                    name=fdecl.name,
                    type=self.resolver.resolve(fdecl.type, tparams),
                    immutable=fdecl.immutable,
                    optional=fdecl.optional)
            if isinstance(decl, ast.InterfaceDecl):
                for sig in decl.methods:
                    info.methods[sig.name] = MethodInfo(
                        name=sig.name,
                        signature=self.resolver.resolve_method(name, sig, tparams),
                        receiver_mutability=_receiver_mut(sig.receiver_mutability))
            elif isinstance(decl, ast.ClassDecl):
                for method in decl.methods:
                    info.methods[method.sig.name] = MethodInfo(
                        name=method.sig.name,
                        signature=self.resolver.resolve_method(name, method.sig,
                                                               tparams),
                        receiver_mutability=_receiver_mut(
                            method.sig.receiver_mutability),
                        decl=method)
                if decl.constructor is not None:
                    csig = decl.constructor.sig
                    info.constructor = MethodInfo(
                        name="constructor",
                        signature=self.resolver.resolve_method(name, csig, tparams),
                        receiver_mutability=Mutability.UNIQUE,
                        decl=decl.constructor)
                    info.ctor_field_params = _ctor_field_params(decl.constructor)

    def _harvest_qualifiers(self) -> None:
        for params, body in self.table.aliases.values():
            resolved = self.resolver.resolve(body, params)
            self._harvest_type(resolved)
        for specs in self.table.specs.values():
            for spec in specs:
                self._harvest_type(self.resolver.resolve(spec))
        for info in self.table.classes.values():
            for fld in info.fields.values():
                self._harvest_type(fld.type)
        for pred in self.table.qualifiers:
            self.pool.add_predicate(self.embedder.predicate(pred))

    def _harvest_type(self, t: RType) -> None:
        self.pool.add_predicate(t.pred)
        if isinstance(t, TArray):
            self._harvest_type(t.elem)
        elif isinstance(t, (TFun,)):
            for p in t.params:
                self._harvest_type(p.type)
            self._harvest_type(t.ret)
        elif isinstance(t, TInter):
            for m in t.members:
                self._harvest_type(m)
        elif isinstance(t, TUnion):
            for m in t.members:
                self._harvest_type(m)

    def _global_env(self) -> Env:
        env = Env()
        for name, t in prelude.global_bindings().items():
            env = env.bind(name, t)
        for name, ann in self.table.declares.items():
            env = env.bind(name, self.resolver.resolve(ann))
        for name, decl in self.table.functions.items():
            sig = self.resolver.resolve_function(decl)
            if sig is not None:
                self._signatures[name] = sig
                env = env.bind(name, sig)
        return env

    # ------------------------------------------------------------------
    # functions, methods, constructors
    # ------------------------------------------------------------------

    def _check_function_decl(self, decl: ast.FunctionDecl, env: Env) -> None:
        sig = self._signatures.get(decl.name) or self.resolver.resolve_function(decl)
        self.stats.functions_checked += 1
        if sig is None:
            self.diags.warning(ErrorKind.RESOLUTION,
                               f"function {decl.name!r} has no signature; skipped",
                               decl.span, code="RSC-RES-005")
            return
        overloads = sig.members if isinstance(sig, TInter) else (sig,)
        for overload in overloads:
            self.stats.overloads_checked += 1
            self._check_callable(decl, overload, env, this_type=None)

    def _check_class(self, decl: ast.ClassDecl, env: Env) -> None:
        info = self.table.classes[decl.name]
        if decl.constructor is not None and decl.constructor.body is not None:
            with self.constraints.owned(f"{decl.name}.constructor"):
                self._check_constructor(decl, info, env)
        for method in decl.methods:
            if method.body is None:
                continue
            minfo = info.methods[method.sig.name]
            self.stats.methods_checked += 1
            this_type = self._this_type(decl.name, minfo.receiver_mutability)
            fdecl = ast.FunctionDecl(name=f"{decl.name}.{method.sig.name}",
                                     tparams=list(decl.tparams) + list(method.sig.tparams),
                                     params=method.sig.params, ret=method.sig.ret,
                                     body=method.body, span=method.sig.span)
            with self.constraints.owned(fdecl.name):
                self._check_callable(fdecl, minfo.signature, env,
                                     this_type=this_type)

    def _this_type(self, class_name: str, mutability: Mutability) -> RType:
        inv = self.table.invariant(class_name, VALUE_VAR)
        return TRef(name=class_name, mutability=mutability, pred=inv)

    def _check_constructor(self, decl: ast.ClassDecl, info: ClassInfo,
                           env: Env) -> None:
        self.stats.constructors_checked += 1
        ctor = decl.constructor
        assert ctor is not None and ctor.body is not None
        sig = info.constructor.signature if info.constructor else TFun()
        this_type = TRef(name=decl.name, mutability=Mutability.UNIQUE,
                         pred=self.table.shape_facts(decl.name, VALUE_VAR))
        fdecl = ast.FunctionDecl(name=f"{decl.name}.constructor",
                                 tparams=list(decl.tparams), params=ctor.sig.params,
                                 ret=None, body=ctor.body, span=ctor.sig.span)
        self._in_constructor = True
        try:
            self._check_callable(fdecl, sig, env, this_type=this_type,
                                 ret_override=void())
        finally:
            self._in_constructor = False

    def _check_callable(self, decl: ast.FunctionDecl, sig: TFun, env: Env,
                        this_type: Optional[RType],
                        ret_override: Optional[RType] = None) -> None:
        body = decl.body
        if body is None:
            return
        ssa = SsaTransformer().function(decl)
        inner = env.with_tvars(sig.tparams).with_tvars(decl.tparams)
        if this_type is not None:
            inner = inner.bind("this", this_type)
        # Bind declared parameters.  Extra source parameters beyond the
        # overload's arity are bound to `undefined` (value-based overloading).
        for index, param in enumerate(decl.params):
            if index < len(sig.params):
                ptype = sig.params[index].type
                renaming = {sig.params[index].name: Var(param.name)}
                ptype = subst_terms(ptype, renaming)
            else:
                ptype = undefined_t()
            inner = inner.bind(param.name, ptype)
        arguments_type = TArray(elem=TPrim(name="any"),
                                mutability=Mutability.IMMUTABLE,
                                pred=eq(builtins.len_of(VALUE_VAR),
                                        IntLit(len(sig.params))))
        inner = inner.bind("arguments", arguments_type)
        ret = ret_override if ret_override is not None else sig.ret
        # dependent return types refer to parameter names of the signature;
        # rename them to the declaration's parameter names
        renaming = {sp.name: Var(dp.name)
                    for sp, dp in zip(sig.params, decl.params)}
        ret = subst_terms(ret, renaming)
        self._check_body(ssa.body, inner, ret, None)

    # ------------------------------------------------------------------
    # body checking
    # ------------------------------------------------------------------

    def _check_body(self, body: ir.IBody, env: Env, ret: RType,
                    join_sink: Optional[List[Tuple[Env, List[str]]]]) -> None:
        if isinstance(body, ir.IRet):
            if body.value is None:
                return
            value_type, env2, term = self._synth(body.value, env)
            self.constraints.add_sub(env2, _with_self(value_type, term), ret,
                                     "returned expression", body.span,
                                     code="RSC-SUB-003")
            return
        if isinstance(body, ir.IJoin):
            if join_sink is not None:
                join_sink.append((env, list(body.values)))
            return
        if isinstance(body, ir.ILet):
            self._check_let(body, env, ret, join_sink)
            return
        if isinstance(body, ir.ILetIf):
            self._check_letif(body, env, ret, join_sink)
            return
        if isinstance(body, ir.ILetWhile):
            self._check_letwhile(body, env, ret, join_sink)
            return
        if isinstance(body, ir.ILetFunc):
            self._check_letfunc(body, env, ret, join_sink)
            return
        if isinstance(body, ir.ISetField):
            env2 = self._check_setfield(body, env)
            self._check_body(body.rest, env2, ret, join_sink)
            return
        if isinstance(body, ir.ISetIndex):
            self._check_setindex(body, env)
            self._check_body(body.rest, env, ret, join_sink)
            return
        raise AssertionError(f"unexpected IR node {type(body).__name__}")

    def _check_let(self, node: ir.ILet, env: Env, ret: RType,
                   join_sink) -> None:
        expr = node.expr
        # `assume(p)` strengthens the environment.
        if isinstance(expr, ast.Call) and isinstance(expr.callee, ast.VarRef) and \
                expr.callee.name == "assume" and expr.args:
            pred = self.embedder.predicate(expr.args[0])
            self._check_body(node.rest, env.guard(pred), ret, join_sink)
            return
        value_type, env2, term = self._synth(expr, env)
        bound = _with_self(value_type, term if term is not None else Var(node.name))
        if node.type_ann is not None:
            ann_type = self.resolver.resolve(node.type_ann,
                                             tuple(env.tvars))
            self.constraints.add_sub(env2, bound, ann_type,
                                     f"initialiser of {node.name!r}", node.span,
                                     code="RSC-SUB-004")
            bound = _with_self(ann_type, term if term is not None else Var(node.name))
        env3 = env2.bind(node.name, bound)
        self._check_body(node.rest, env3, ret, join_sink)

    def _check_letif(self, node: ir.ILetIf, env: Env, ret: RType,
                     join_sink) -> None:
        _cond_type, env_c, _term = self._synth(node.cond, env)
        guard_true = self.embedder.guard(node.cond, True)
        guard_false = self.embedder.guard(node.cond, False)
        then_joins: List[Tuple[Env, List[str]]] = []
        else_joins: List[Tuple[Env, List[str]]] = []
        self._check_body(node.then, env_c.guard(guard_true), ret, then_joins)
        self._check_body(node.els, env_c.guard(guard_false), ret, else_joins)
        env_after = env_c
        if node.phis:
            templates = self._phi_templates(node.phis, then_joins + else_joins, env_c)
            for joins in (then_joins, else_joins):
                for join_env, values in joins:
                    for phi, value_name, template in zip(node.phis, _transpose(values),
                                                         templates):
                        value_type = join_env.lookup(value_name) or TPrim(name="any")
                        self.constraints.add_sub(
                            join_env, selfify(value_type, Var(value_name)), template,
                            f"phi variable {phi.source_name!r}", node.span,
                            code="RSC-SUB-005")
            for phi, template in zip(node.phis, templates):
                env_after = env_after.bind(phi.name,
                                           selfify(template, Var(phi.name)))
        both_return = ir.terminates(node.then) and ir.terminates(node.els)
        if not both_return:
            if ir.terminates(node.then):
                env_after = env_after.guard(guard_false)
            elif ir.terminates(node.els):
                env_after = env_after.guard(guard_true)
        self._check_body(node.rest, env_after, ret, join_sink)

    def _phi_templates(self, phis: List[ir.Phi],
                       joins: List[Tuple[Env, List[str]]],
                       env: Env) -> List[RType]:
        """Fresh kappa templates for conditional-join Phi variables; the base
        shape is taken from the first branch value that reaches the join."""
        templates: List[RType] = []
        for index, phi in enumerate(phis):
            base: RType = TPrim(name="any")
            for join_env, values in joins:
                if index < len(values):
                    found = join_env.lookup(values[index])
                    if found is not None:
                        base = base_of(found)
                        break
            templates.append(self._fresh_template(base, env))
        return templates

    def _check_letwhile(self, node: ir.ILetWhile, env: Env, ret: RType,
                        join_sink) -> None:
        # Templates for the loop Phis (the inferred loop invariant).
        templates: List[RType] = []
        for phi in node.phis:
            init_type = env.lookup(phi.init_name) or TPrim(name="any")
            template = self._fresh_template(base_of(init_type), env)
            if node.invariant is not None:
                template = refine(template, self.embedder.predicate(node.invariant))
            templates.append(template)
            self.constraints.add_sub(env, selfify(init_type, Var(phi.init_name)),
                                     template,
                                     f"loop entry for {phi.source_name!r}",
                                     node.span, code="RSC-SUB-005")
        loop_env = env
        for phi, template in zip(node.phis, templates):
            loop_env = loop_env.bind(phi.name, selfify(template, Var(phi.name)))
        _cond_type, loop_env_c, _ = self._synth(node.cond, loop_env)
        guard_true = self.embedder.guard(node.cond, True)
        guard_false = self.embedder.guard(node.cond, False)
        body_joins: List[Tuple[Env, List[str]]] = []
        self._check_body(node.body, loop_env_c.guard(guard_true), ret, body_joins)
        for join_env, values in body_joins:
            for phi, value_name, template in zip(node.phis, _transpose(values),
                                                 templates):
                value_type = join_env.lookup(value_name) or TPrim(name="any")
                self.constraints.add_sub(
                    join_env, selfify(value_type, Var(value_name)), template,
                    f"loop back-edge for {phi.source_name!r}", node.span,
                    code="RSC-SUB-005")
        env_after = loop_env_c.guard(guard_false)
        self._check_body(node.rest, env_after, ret, join_sink)

    def _check_letfunc(self, node: ir.ILetFunc, env: Env, ret: RType,
                       join_sink) -> None:
        decl = node.decl
        sig = self.resolver.resolve_function(decl)
        env_after = env
        if sig is not None:
            overloads = sig.members if isinstance(sig, TInter) else (sig,)
            for overload in overloads:
                self.stats.overloads_checked += 1
                self._check_callable(decl, overload, env, this_type=None)
            env_after = env.bind(node.name, sig)
        else:
            self._closures[node.name] = ClosureInfo(decl=decl, env=env)
            env_after = env.bind(node.name, TFun(params=tuple(
                TParam(p.name, TPrim(name="any")) for p in decl.params),
                ret=TPrim(name="any")))
        self._check_body(node.rest, env_after, ret, join_sink)

    def _check_setfield(self, node: ir.ISetField, env: Env) -> Env:
        target_type, env2, target_term = self._synth(node.target, env)
        value_type, env3, value_term = self._synth(node.value, env2)
        _binders, inner = unpack_exists(target_type)
        is_this = isinstance(node.target, ast.ThisRef)
        if isinstance(inner, TRef):
            fld = self.table.lookup_field(inner.name, node.field_name)
            if fld is None:
                self.diags.error(ErrorKind.RESOLUTION,
                                 f"class {inner.name!r} has no field "
                                 f"{node.field_name!r}", node.span,
                                 code="RSC-RES-003")
                return env3
            if fld.immutable and not (self._in_constructor and is_this):
                self.diags.error(ErrorKind.MUTABILITY,
                                 f"cannot assign to immutable field "
                                 f"{node.field_name!r} outside the constructor",
                                 node.span, code="RSC-MUT-001")
            if not inner.mutability.allows_write and \
                    not (self._in_constructor and is_this):
                self.diags.error(ErrorKind.MUTABILITY,
                                 f"cannot mutate field {node.field_name!r} through "
                                 f"a {inner.mutability} reference", node.span,
                                 code="RSC-MUT-002")
            expected = fld.type
            if target_term is not None:
                expected = subst_terms(expected, {"this": target_term})
            self.constraints.add_sub(env3,
                                     _with_self(value_type, value_term),
                                     expected,
                                     f"assignment to field {node.field_name!r}",
                                     node.span, code="RSC-SUB-004")
            # Inside a constructor, record the exact value of the field so later
            # field refinements (e.g. grid<this.w, this.h>) can be established.
            if self._in_constructor and is_this and value_term is not None:
                env3 = env3.guard(eq(Field(Var("this"), node.field_name), value_term))
        elif isinstance(inner, TObject):
            if node.field_name in inner.fields:
                _mut, ftype = inner.fields[node.field_name]
                self.constraints.add_sub(env3, _with_self(value_type, value_term),
                                         ftype,
                                         f"assignment to field {node.field_name!r}",
                                         node.span, code="RSC-SUB-004")
        return env3

    def _check_setindex(self, node: ir.ISetIndex, env: Env) -> None:
        target_type, env2, target_term = self._synth(node.target, env)
        index_type, env3, index_term = self._synth(node.index, env2)
        value_type, env4, value_term = self._synth(node.value, env3)
        _binders, inner = unpack_exists(target_type)
        if isinstance(inner, TArray):
            if not inner.mutability.allows_write:
                self.diags.error(ErrorKind.MUTABILITY,
                                 "cannot write through an immutable/read-only "
                                 "array reference", node.span,
                                 code="RSC-MUT-002")
            self._array_bounds(env4, target_term, index_type, index_term, node.span)
            self.constraints.add_sub(env4, _with_self(value_type, value_term),
                                     inner.elem, "array element write", node.span,
                                     code="RSC-SUB-004")
        elif isinstance(inner, TPrim) and inner.name == "any":
            pass
        else:
            self.constraints.add_dead_code(env4, "indexed write into a non-array",
                                           node.span, ErrorKind.BOUNDS,
                                           code="RSC-BND-003")

    # ------------------------------------------------------------------
    # expression synthesis
    # ------------------------------------------------------------------

    def _synth(self, expr: ast.Expression, env: Env
               ) -> Tuple[RType, Env, Optional[Expr]]:
        """Synthesise a refinement type for ``expr``.

        Returns ``(type, env, term)``: the environment may gain bindings for
        intermediate results (e.g. existential openings), and ``term`` is the
        logical term denoting the expression when it is pure."""
        term = self.embedder.term(expr)

        if isinstance(expr, ast.NumberLit):
            if isinstance(expr.value, int):
                return number(eq(VALUE_VAR, IntLit(expr.value))), env, term
            return number(), env, None
        if isinstance(expr, ast.StringLit):
            return string(eq(VALUE_VAR, StrLit(expr.value))), env, term
        if isinstance(expr, ast.BoolLitE):
            return boolean(eq(VALUE_VAR, BoolLit(expr.value))), env, term
        if isinstance(expr, ast.NullLit):
            return TPrim(name="null"), env, None
        if isinstance(expr, ast.UndefinedLit):
            return undefined_t(), env, None
        if isinstance(expr, ast.ThisRef):
            t = env.lookup("this")
            if t is None:
                self.diags.error(ErrorKind.RESOLUTION, "`this` used outside a class",
                                 expr.span, code="RSC-RES-002")
                return TPrim(name="any"), env, term
            return selfify(t, Var("this")), env, term
        if isinstance(expr, ast.VarRef):
            return self._synth_var(expr, env, term)
        if isinstance(expr, ast.Unary):
            return self._synth_unary(expr, env, term)
        if isinstance(expr, ast.Binary):
            return self._synth_binary(expr, env, term)
        if isinstance(expr, ast.Conditional):
            return self._synth_conditional(expr, env)
        if isinstance(expr, ast.Member):
            return self._synth_member(expr, env, term)
        if isinstance(expr, ast.Index):
            return self._synth_index(expr, env)
        if isinstance(expr, ast.Call):
            return self._synth_call(expr, env)
        if isinstance(expr, ast.New):
            return self._synth_new(expr, env)
        if isinstance(expr, ast.Cast):
            return self._synth_cast(expr, env)
        if isinstance(expr, ast.ArrayLit):
            return self._synth_array_lit(expr, env)
        if isinstance(expr, ast.ObjectLit):
            return self._synth_object_lit(expr, env)
        if isinstance(expr, ast.FunctionExpr):
            return self._synth_function_expr(expr, env)
        self.diags.error(ErrorKind.RESOLUTION,
                         f"cannot type expression {type(expr).__name__}", expr.span)
        return TPrim(name="any"), env, None

    def _synth_var(self, expr: ast.VarRef, env: Env,
                   term: Optional[Expr]) -> Tuple[RType, Env, Optional[Expr]]:
        name = expr.name
        if name in self.table.enums:
            return TObject(fields={}, mutability=Mutability.READONLY), env, None
        t = env.lookup(name)
        if t is None:
            if name in self._closures:
                info = self._closures[name]
                return TFun(params=tuple(TParam(p.name, TPrim(name="any"))
                                         for p in info.decl.params),
                            ret=TPrim(name="any")), env, term
            if name == "Math":
                return TObject(fields={}, mutability=Mutability.READONLY), env, None
            self.diags.error(ErrorKind.RESOLUTION, f"unbound variable {name!r}",
                             expr.span, code="RSC-RES-002")
            return TPrim(name="any"), env, term
        return selfify(t, Var(name)), env, term

    def _synth_unary(self, expr: ast.Unary, env: Env,
                     term: Optional[Expr]) -> Tuple[RType, Env, Optional[Expr]]:
        operand_type, env2, operand_term = self._synth(expr.operand, env)
        if expr.op == "typeof":
            if operand_term is not None:
                return string(eq(VALUE_VAR, builtins.ttag_of(operand_term))), env2, term
            return string(), env2, None
        if expr.op == "-":
            self._require_number(env2, operand_type, expr.span)
            pred = eq(VALUE_VAR, term) if term is not None else true()
            return number(pred), env2, term
        if expr.op == "!":
            return boolean(), env2, None
        return TPrim(name="any"), env2, None

    def _synth_binary(self, expr: ast.Binary, env: Env,
                      term: Optional[Expr]) -> Tuple[RType, Env, Optional[Expr]]:
        left_type, env2, _lt = self._synth(expr.left, env)
        right_type, env3, _rt = self._synth(expr.right, env2)
        op = expr.op
        if op in ("+", "-", "*", "/", "%", "&", "|"):
            if op == "+" and (_base_name(left_type) == "string" or
                              _base_name(right_type) == "string"):
                return string(), env3, None
            self._require_number(env3, left_type, expr.span)
            self._require_number(env3, right_type, expr.span)
            pred = eq(VALUE_VAR, term) if term is not None else true()
            return number(pred), env3, term
        if op in ("<", "<=", ">", ">=", "==", "!=", "===", "!==", "&&", "||",
                  "instanceof", "in"):
            pred = eq(VALUE_VAR, term) if term is not None and \
                term.sort.name == "Bool" else true()
            return boolean(pred), env3, term
        return TPrim(name="any"), env3, None

    def _synth_conditional(self, expr: ast.Conditional, env: Env
                           ) -> Tuple[RType, Env, Optional[Expr]]:
        _ct, env_c, _ = self._synth(expr.cond, env)
        guard_true = self.embedder.guard(expr.cond, True)
        guard_false = self.embedder.guard(expr.cond, False)
        then_type, then_env, then_term = self._synth(expr.then, env_c.guard(guard_true))
        else_type, else_env, else_term = self._synth(expr.els, env_c.guard(guard_false))
        template = self._fresh_template(base_of(then_type), env_c)
        self.constraints.add_sub(then_env, _with_self(then_type, then_term), template,
                                 "conditional expression (then)", expr.span)
        self.constraints.add_sub(else_env, _with_self(else_type, else_term), template,
                                 "conditional expression (else)", expr.span)
        return template, env_c, None

    def _synth_member(self, expr: ast.Member, env: Env,
                      term: Optional[Expr]) -> Tuple[RType, Env, Optional[Expr]]:
        # enum constant: TypeFlags.Object
        if isinstance(expr.target, ast.VarRef) and expr.target.name in self.table.enums:
            members = self.table.enums[expr.target.name]
            if expr.name in members:
                value = members[expr.name]
                return number(eq(VALUE_VAR, IntLit(value))), env, IntLit(value)
        target_type, env2, target_term = self._synth(expr.target, env)
        _binders, inner = unpack_exists(target_type)
        if isinstance(inner, TArray) and expr.name == "length":
            if target_term is not None:
                return (number(conj(le(IntLit(0), VALUE_VAR),
                                    eq(VALUE_VAR, builtins.len_of(target_term)))),
                        env2, term)
            return number(le(IntLit(0), VALUE_VAR)), env2, None
        if isinstance(inner, TPrim) and inner.name == "string" and expr.name == "length":
            return number(le(IntLit(0), VALUE_VAR)), env2, None
        if isinstance(inner, TRef):
            fld = self.table.lookup_field(inner.name, expr.name)
            if fld is not None:
                field_type = fld.type
                if target_term is not None:
                    field_type = subst_terms(field_type, {"this": target_term})
                if fld.immutable and target_term is not None:
                    field_type = selfify(field_type, Field(target_term, expr.name))
                return field_type, env2, term
            method = self.table.lookup_method(inner.name, expr.name)
            if method is not None:
                sig = method.signature
                if target_term is not None:
                    sig = subst_terms(sig, {"this": target_term})
                return sig, env2, None
            self.diags.error(ErrorKind.RESOLUTION,
                             f"{inner.name!r} has no member {expr.name!r}",
                             expr.span, code="RSC-RES-003")
            return TPrim(name="any"), env2, None
        if isinstance(inner, TObject):
            if expr.name in inner.fields:
                _mut, ftype = inner.fields[expr.name]
                if target_term is not None:
                    ftype = subst_terms(ftype, {"this": target_term})
                return ftype, env2, term
        if isinstance(inner, TPrim) and inner.name == "any":
            return TPrim(name="any"), env2, term
        # property access on undefined/null is a safety violation
        if isinstance(inner, TPrim) and inner.name in ("undefined", "null"):
            self.constraints.add_dead_code(env2,
                                           f"property access {expr.name!r} on "
                                           f"{inner.name}", expr.span,
                                           ErrorKind.BOUNDS, code="RSC-BND-002")
            return TPrim(name="any"), env2, None
        if isinstance(inner, TUnion):
            # accessing a member of a union requires the undefined/null parts
            # to be provably absent
            for member in inner.members:
                if member.base_name() in ("undefined", "null"):
                    hyps = env2.hypotheses()
                    if target_term is not None:
                        hyps.append(embed(inner, target_term))
                        self.constraints.add_implication(
                            hyps, ne(builtins.ttag_of(target_term),
                                     StrLit("undefined")),
                            f"possibly-undefined receiver for {expr.name!r}",
                            expr.span, ErrorKind.BOUNDS, code="RSC-BND-002")
            non_null = [m for m in inner.members
                        if m.base_name() not in ("undefined", "null")]
            if len(non_null) == 1:
                fake = ast.Member(target=expr.target, name=expr.name, span=expr.span)
                # re-dispatch on the non-null member
                return self._member_of_type(non_null[0], fake, env2, target_term, term)
        return TPrim(name="any"), env2, None

    def _member_of_type(self, inner: RType, expr: ast.Member, env: Env,
                        target_term: Optional[Expr], term: Optional[Expr]
                        ) -> Tuple[RType, Env, Optional[Expr]]:
        if isinstance(inner, TRef):
            fld = self.table.lookup_field(inner.name, expr.name)
            if fld is not None:
                field_type = fld.type
                if target_term is not None:
                    field_type = subst_terms(field_type, {"this": target_term})
                    if fld.immutable:
                        field_type = selfify(field_type, Field(target_term, expr.name))
                return field_type, env, term
        if isinstance(inner, TArray) and expr.name == "length":
            if inner.mutability.allows_length_refinement and target_term is not None:
                return number(eq(VALUE_VAR, builtins.len_of(target_term))), env, term
            return number(le(IntLit(0), VALUE_VAR)), env, None
        return TPrim(name="any"), env, None

    def _synth_index(self, expr: ast.Index, env: Env
                     ) -> Tuple[RType, Env, Optional[Expr]]:
        target_type, env2, target_term = self._synth(expr.target, env)
        index_type, env3, index_term = self._synth(expr.index, env2)
        _binders, inner = unpack_exists(target_type)
        if isinstance(inner, TArray):
            self._array_bounds(env3, target_term, index_type, index_term, expr.span)
            return inner.elem, env3, None
        if isinstance(inner, TPrim) and inner.name == "string":
            return string(), env3, None
        if isinstance(inner, TObject) or (isinstance(inner, TPrim) and
                                          inner.name == "any"):
            return TPrim(name="any"), env3, None
        if isinstance(inner, TRef):
            # indexable class (e.g. a map-like interface): element type unknown
            return TPrim(name="any"), env3, None
        self.constraints.add_dead_code(env3, "indexing a non-array value", expr.span,
                                       ErrorKind.BOUNDS, code="RSC-BND-003")
        return TPrim(name="any"), env3, None

    def _array_bounds(self, env: Env, array_term: Optional[Expr],
                      index_type: RType, index_term: Optional[Expr],
                      span: SourceSpan) -> None:
        """Emit the obligation ``0 <= i < len(a)`` (section 2.1.1)."""
        hyps = env.hypotheses()
        index = index_term if index_term is not None else VALUE_VAR
        if index_term is None:
            hyps.append(embed(index_type, VALUE_VAR))
        self.constraints.add_implication(hyps, le(IntLit(0), index),
                                         "array index lower bound", span,
                                         ErrorKind.BOUNDS, code="RSC-BND-001")
        if array_term is not None:
            self.constraints.add_implication(hyps,
                                             lt(index, builtins.len_of(array_term)),
                                             "array index upper bound", span,
                                             ErrorKind.BOUNDS, code="RSC-BND-001")
        else:
            self.constraints.add_implication(hyps, BoolLit(False),
                                             "array index upper bound "
                                             "(unknown array length)", span,
                                             ErrorKind.BOUNDS, code="RSC-BND-001")

    # -- calls -----------------------------------------------------------------------

    def _synth_call(self, expr: ast.Call, env: Env
                    ) -> Tuple[RType, Env, Optional[Expr]]:
        callee = expr.callee
        # assert(p): the argument must be provably true (dead-code assertions).
        if isinstance(callee, ast.VarRef) and callee.name == "assert" and expr.args:
            arg = expr.args[0]
            _t, env2, _ = self._synth(arg, env)
            pred = self.embedder.predicate(arg)
            self.constraints.add_implication(env2.hypotheses(), pred,
                                             "assert", expr.span, ErrorKind.OVERLOAD,
                                             code="RSC-OVR-002")
            return void(), env2, None
        if isinstance(callee, ast.VarRef) and callee.name == "assume":
            return void(), env, None

        # Math.<fn>(...)
        if isinstance(callee, ast.Member) and isinstance(callee.target, ast.VarRef) \
                and callee.target.name == "Math":
            sig = prelude.MATH_METHODS.get(callee.name)
            if sig is not None:
                return self._apply(sig, expr.args, env, expr.span, None)
            return number(), env, None

        # method call on an object/array/string
        if isinstance(callee, ast.Member):
            return self._synth_method_call(expr, callee, env)

        # plain function call
        callee_type, env2, _ = self._synth(callee, env)
        closure = self._closure_for(callee)
        _binders, inner = unpack_exists(callee_type)
        if isinstance(inner, (TFun, TInter)):
            fun = self._select_overload(inner, len(expr.args))
            return self._apply(fun, expr.args, env2, expr.span, closure)
        if isinstance(inner, TPrim) and inner.name == "any":
            for arg in expr.args:
                _t, env2, _ = self._synth(arg, env2)
            return TPrim(name="any"), env2, None
        self.constraints.add_dead_code(env2, "calling a non-function value",
                                       expr.span, code="RSC-BND-003")
        return TPrim(name="any"), env2, None

    def _synth_method_call(self, expr: ast.Call, callee: ast.Member, env: Env
                           ) -> Tuple[RType, Env, Optional[Expr]]:
        target_type, env2, target_term = self._synth(callee.target, env)
        _binders, inner = unpack_exists(target_type)
        name = callee.name
        if isinstance(inner, TArray):
            if name in ("push", "pop", "shift", "unshift", "sort", "reverse") and \
                    not inner.mutability.allows_write:
                self.diags.error(ErrorKind.MUTABILITY,
                                 f"array method {name!r} requires a mutable receiver",
                                 expr.span, code="RSC-MUT-003")
            sig = prelude.array_method(name, inner.elem, target_term,
                                       inner.mutability)
            if sig is None:
                self.diags.warning(ErrorKind.RESOLUTION,
                                   f"unknown array method {name!r}", expr.span)
                return TPrim(name="any"), env2, None
            return self._apply(sig, expr.args, env2, expr.span, None)
        if isinstance(inner, TPrim) and inner.name == "string":
            sig = prelude.string_method(name)
            if sig is None:
                return TPrim(name="any"), env2, None
            return self._apply(sig, expr.args, env2, expr.span, None)
        if isinstance(inner, TRef):
            method = self.table.lookup_method(inner.name, name)
            if method is None:
                self.diags.error(ErrorKind.RESOLUTION,
                                 f"{inner.name!r} has no method {name!r}",
                                 expr.span, code="RSC-RES-003")
                return TPrim(name="any"), env2, None
            if not inner.mutability.is_subtype_of(method.receiver_mutability):
                self.diags.error(ErrorKind.MUTABILITY,
                                 f"method {name!r} requires a "
                                 f"{method.receiver_mutability} receiver but was "
                                 f"called on a {inner.mutability} reference",
                                 expr.span, code="RSC-MUT-003")
            sig = method.signature
            if target_term is not None:
                sig = subst_terms(sig, {"this": target_term})
            return self._apply(sig, expr.args, env2, expr.span, None)
        if isinstance(inner, (TObject,)):
            if name in inner.fields:
                _mut, ftype = inner.fields[name]
                _fb, finner = unpack_exists(ftype)
                if isinstance(finner, (TFun, TInter)):
                    fun = self._select_overload(finner, len(expr.args))
                    return self._apply(fun, expr.args, env2, expr.span, None)
        if isinstance(inner, TPrim) and inner.name == "any":
            for arg in expr.args:
                _t, env2, _ = self._synth(arg, env2)
            return TPrim(name="any"), env2, None
        self.diags.warning(ErrorKind.RESOLUTION,
                           f"cannot resolve method {name!r} on "
                           f"{inner.base_name()!r}", expr.span)
        return TPrim(name="any"), env2, None

    def _closure_for(self, callee: ast.Expression) -> Optional[ClosureInfo]:
        if isinstance(callee, ast.VarRef):
            return self._closures.get(callee.name)
        return None

    def _select_overload(self, fun: RType, arity: int) -> TFun:
        if isinstance(fun, TFun):
            return fun
        assert isinstance(fun, TInter)
        for member in fun.members:
            if member.arity() == arity:
                return member
        return fun.members[0]

    def _apply(self, fun: TFun, args: List[ast.Expression], env: Env,
               span: SourceSpan, _callee_closure: Optional[ClosureInfo]
               ) -> Tuple[RType, Env, Optional[Expr]]:
        """Check a call against (an instantiation of) ``fun``."""
        env_cur = env
        arg_types: List[Optional[RType]] = []
        arg_terms: List[Optional[Expr]] = []
        closures: List[Optional[object]] = []
        for arg in args:
            if isinstance(arg, ast.FunctionExpr):
                closures.append(arg)
                arg_types.append(None)
                arg_terms.append(None)
                continue
            if isinstance(arg, ast.VarRef) and arg.name in self._closures and \
                    env.lookup(arg.name) is not None and \
                    isinstance(unpack_exists(env.lookup(arg.name))[1], TFun) and \
                    arg.name in self._closures:
                closures.append(self._closures[arg.name])
                arg_types.append(None)
                arg_terms.append(None)
                continue
            closures.append(None)
            t, env_cur, term = self._synth(arg, env_cur)
            arg_types.append(t)
            arg_terms.append(term)

        # instantiate generics
        if fun.tparams:
            instantiation = self._infer_instantiation(fun, arg_types, env_cur)
            # drop the binders before substituting (they would otherwise
            # shadow the very variables being instantiated)
            opened = TFun(pred=fun.pred, tparams=(), params=fun.params, ret=fun.ret)
            fun = subst_types(opened, instantiation)

        # dependent parameters: substitute parameter names by argument terms
        param_subst: Dict[str, Expr] = {}
        for index, param in enumerate(fun.params):
            if index < len(arg_terms) and arg_terms[index] is not None:
                param_subst[param.name] = arg_terms[index]

        for index, param in enumerate(fun.params):
            expected = subst_terms(param.type, param_subst)
            if index >= len(args):
                # missing argument: undefined must be acceptable
                self.constraints.add_sub(env_cur, undefined_t(), expected,
                                         f"missing argument {param.name!r}", span,
                                         code="RSC-SUB-002")
                continue
            closure = closures[index]
            _eb, expected_inner = unpack_exists(expected)
            if closure is not None and isinstance(expected_inner, (TFun, TInter)):
                self._check_closure_against(closure, expected_inner, env_cur)
                continue
            if closure is not None:
                # function value flowing into a non-function parameter
                self.constraints.add_dead_code(
                    env_cur, f"function passed for parameter {param.name!r} of "
                             f"non-function type", span)
                continue
            actual = arg_types[index]
            assert actual is not None
            self.constraints.add_sub(env_cur,
                                     _with_self(actual, arg_terms[index]), expected,
                                     f"argument for {param.name!r}", span,
                                     code="RSC-SUB-002")

        result = subst_terms(fun.ret, param_subst)
        return result, env_cur, None

    def _check_closure_against(self, closure, expected: RType, env: Env) -> None:
        expected_fun = expected if isinstance(expected, TFun) else expected.members[0]
        if isinstance(closure, ast.FunctionExpr):
            decl = ast.FunctionDecl(name="<lambda>", params=closure.params,
                                    ret=closure.ret, body=closure.body,
                                    span=closure.span)
            self._check_callable(decl, expected_fun, env, this_type=None)
            return
        assert isinstance(closure, ClosureInfo)
        self.stats.overloads_checked += 1
        self._check_callable(closure.decl, expected_fun, closure.env, this_type=None)

    def _infer_instantiation(self, fun: TFun, arg_types: List[Optional[RType]],
                             env: Env) -> Dict[str, RType]:
        """Instantiate each type parameter with a kappa template whose base is
        inferred from the matching argument (step 1 of section 2.2.1)."""
        bases: Dict[str, RType] = {}

        def unify(param: RType, arg: Optional[RType]) -> None:
            if arg is None:
                return
            _pb, param_inner = unpack_exists(param)
            _ab, arg_inner = unpack_exists(arg)
            if isinstance(param_inner, TVar):
                bases.setdefault(param_inner.name, base_of(arg_inner))
            elif isinstance(param_inner, TArray) and isinstance(arg_inner, TArray):
                unify(param_inner.elem, arg_inner.elem)
            elif isinstance(param_inner, TFun) and isinstance(arg_inner, TFun):
                for pp, ap in zip(param_inner.params, arg_inner.params):
                    unify(pp.type, ap.type)
                unify(param_inner.ret, arg_inner.ret)

        for index, param in enumerate(fun.params):
            arg = arg_types[index] if index < len(arg_types) else None
            unify(param.type, arg)

        instantiation: Dict[str, RType] = {}
        for tparam in fun.tparams:
            base = bases.get(tparam)
            if base is None:
                instantiation[tparam] = TPrim(name="any")
            else:
                instantiation[tparam] = self._fresh_template(base, env)
        return instantiation

    # -- construction, casts, literals ---------------------------------------------------

    def _synth_new(self, expr: ast.New, env: Env
                   ) -> Tuple[RType, Env, Optional[Expr]]:
        if expr.class_name == "Array":
            env2 = env
            pred = true()
            elem: RType = TPrim(name="any")
            if len(expr.args) == 1:
                size_type, env2, size_term = self._synth(expr.args[0], env)
                if size_term is not None:
                    pred = eq(builtins.len_of(VALUE_VAR), size_term)
            if expr.targs and expr.targs[0].is_type():
                elem = self.resolver.resolve(expr.targs[0].type, tuple(env.tvars))
            return TArray(elem=elem, mutability=Mutability.UNIQUE, pred=pred), env2, None
        info = self.table.classes.get(expr.class_name)
        if info is None or info.is_interface:
            self.diags.error(ErrorKind.RESOLUTION,
                             f"unknown class {expr.class_name!r}", expr.span,
                             code="RSC-RES-004")
            return TPrim(name="any"), env, None
        ctor = info.constructor
        env_cur = env
        arg_terms: List[Optional[Expr]] = []
        arg_types: List[RType] = []
        for arg in expr.args:
            t, env_cur, term = self._synth(arg, env_cur)
            arg_types.append(t)
            arg_terms.append(term)
        facts: List[Expr] = [self.table.invariant(expr.class_name, VALUE_VAR)]
        if ctor is not None:
            param_subst: Dict[str, Expr] = {}
            for index, param in enumerate(ctor.signature.params):
                if index < len(arg_terms) and arg_terms[index] is not None:
                    param_subst[param.name] = arg_terms[index]
            for index, param in enumerate(ctor.signature.params):
                expected = subst_terms(param.type, param_subst)
                if index < len(arg_types):
                    self.constraints.add_sub(
                        env_cur, _with_self(arg_types[index], arg_terms[index]),
                        expected, f"constructor argument {param.name!r}",
                        expr.span, code="RSC-SUB-002")
                else:
                    self.constraints.add_sub(env_cur, undefined_t(), expected,
                                             f"missing constructor argument "
                                             f"{param.name!r}", expr.span,
                                             code="RSC-SUB-002")
            # exact-value facts for immutable fields assigned from parameters
            for fname, pname in info.ctor_field_params.items():
                fld = info.fields.get(fname)
                if fld is None or not fld.immutable:
                    continue
                if pname in param_subst:
                    facts.append(eq(Field(VALUE_VAR, fname), param_subst[pname]))
        result = TRef(name=expr.class_name, mutability=Mutability.UNIQUE,
                      pred=conj(*facts))
        return result, env_cur, None

    def _synth_cast(self, expr: ast.Cast, env: Env
                    ) -> Tuple[RType, Env, Optional[Expr]]:
        target_type = self.resolver.resolve(expr.type, tuple(env.tvars))
        value_type, env2, term = self._synth(expr.target, env)
        hyps = env2.hypotheses()
        subject = term if term is not None else VALUE_VAR
        hyps.append(embed(value_type, subject))
        _binders, target_inner = unpack_exists(target_type)
        goals: List[Expr] = []
        if isinstance(target_inner, TRef):
            goals.append(builtins.impl_of(subject, StrLit(target_inner.name)))
            from repro.logic.terms import substitute as _subst
            goals.append(_subst(target_inner.pred, {VALUE_VAR.name: subject}))
        else:
            from repro.logic.terms import substitute as _subst
            goals.append(_subst(target_inner.pred, {VALUE_VAR.name: subject}))
        for goal in goals:
            if goal.is_true():
                continue
            self.constraints.add_implication(hyps, goal, "downcast", expr.span,
                                             ErrorKind.CAST, code="RSC-CAST-001")
        result = target_type
        if isinstance(target_inner, TRef) and isinstance(
                unpack_exists(value_type)[1], TRef):
            # keep the source mutability through the cast
            source_mut = unpack_exists(value_type)[1].mutability
            result = TRef(name=target_inner.name, targs=target_inner.targs,
                          mutability=source_mut, pred=target_inner.pred)
        if term is not None:
            result = selfify(result, term)
        return result, env2, term

    def _synth_array_lit(self, expr: ast.ArrayLit, env: Env
                         ) -> Tuple[RType, Env, Optional[Expr]]:
        env_cur = env
        elem: RType = TPrim(name="any")
        for index, element in enumerate(expr.elements):
            t, env_cur, _ = self._synth(element, env_cur)
            if index == 0:
                elem = base_of(t)
        pred = eq(builtins.len_of(VALUE_VAR), IntLit(len(expr.elements)))
        return TArray(elem=elem, mutability=Mutability.UNIQUE, pred=pred), env_cur, None

    def _synth_object_lit(self, expr: ast.ObjectLit, env: Env
                          ) -> Tuple[RType, Env, Optional[Expr]]:
        env_cur = env
        fields: Dict[str, Tuple[Mutability, RType]] = {}
        for name, value in expr.fields:
            t, env_cur, term = self._synth(value, env_cur)
            fields[name] = (Mutability.MUTABLE, _with_self(t, term))
        return TObject(fields=fields, mutability=Mutability.UNIQUE), env_cur, None

    def _synth_function_expr(self, expr: ast.FunctionExpr, env: Env
                             ) -> Tuple[RType, Env, Optional[Expr]]:
        if all(p.type is not None for p in expr.params) and expr.ret is not None:
            params = tuple(TParam(p.name, self.resolver.resolve(p.type,
                                                                tuple(env.tvars)))
                           for p in expr.params)
            ret = self.resolver.resolve(expr.ret, tuple(env.tvars))
            sig = TFun(params=params, ret=ret)
            decl = ast.FunctionDecl(name="<lambda>", params=expr.params, ret=expr.ret,
                                    body=expr.body, span=expr.span)
            self._check_callable(decl, sig, env, this_type=None)
            return sig, env, None
        return TFun(params=tuple(TParam(p.name, TPrim(name="any"))
                                 for p in expr.params),
                    ret=TPrim(name="any")), env, None

    # -- misc helpers -----------------------------------------------------------------

    def _require_number(self, env: Env, t: RType, span: SourceSpan) -> None:
        _binders, inner = unpack_exists(t)
        if isinstance(inner, (TPrim,)) and inner.name in ("number", "any", "bot"):
            return
        if isinstance(inner, TVar):
            return
        self.constraints.add_sub(env, t, number(), "arithmetic operand", span)

    def _fresh_template(self, base: RType, env: Env) -> RType:
        """A refinement template ``{v: base | kappa(v, scope...)}``."""
        owner = self.constraints.current_owner
        if owner not in self._kappa_counters:
            self._kappa_counters[owner] = itertools.count()
        kname = f"{KVAR_PREFIX}{owner or ''}#{next(self._kappa_counters[owner])}"
        kinds: Dict[str, str] = {}
        scope: List[str] = []
        for name in env.scope_names():
            if name == "this":
                continue
            t = env.lookup(name)
            _b, inner = unpack_exists(t) if t is not None else ((), TPrim(name="any"))
            # Function-typed and opaque bindings never appear usefully inside
            # refinements; dropping them keeps the qualifier pool small.
            if isinstance(inner, (TFun, TInter)):
                continue
            if isinstance(inner, TArray):
                kinds[name] = "array"
            elif isinstance(inner, TPrim) and inner.name == "number":
                kinds[name] = "number"
            elif isinstance(inner, TPrim) and inner.name in ("string", "boolean"):
                kinds[name] = inner.name
            elif isinstance(inner, (TRef, TObject)):
                kinds[name] = "object"
            else:
                kinds[name] = "any"
            scope.append(name)
        self.kappas.register(kname, [VALUE_VAR.name] + scope, kinds,
                             owner=owner)
        self.stats.kappas_created += 1
        occurrence = App(kname, tuple([VALUE_VAR] + [Var(s) for s in scope]),
                         sort=BoolSort())
        template = base_of(base)
        return refine(template, occurrence)


def BoolSort():
    from repro.logic.sorts import BOOL
    return BOOL


def _with_self(t: RType, term: Optional[Expr]) -> RType:
    if term is None:
        return t
    return selfify(t, term)


def _base_name(t: RType) -> str:
    _b, inner = unpack_exists(t)
    return inner.base_name()


def _receiver_mut(text: Optional[str]) -> Mutability:
    # Methods default to a mutable receiver (the common case in the
    # benchmarks); @ReadOnly / @Immutable annotations restrict it.
    if text is None:
        return Mutability.MUTABLE
    try:
        return Mutability.parse(text)
    except ValueError:
        return Mutability.MUTABLE


def _ctor_field_params(ctor: ast.MethodDecl) -> Dict[str, str]:
    """Detect ``this.f = p`` assignments of constructor parameters to fields."""
    result: Dict[str, str] = {}
    if ctor.body is None:
        return result
    param_names = {p.name for p in ctor.sig.params}

    def walk(stmt: ast.Statement) -> None:
        if isinstance(stmt, ast.Block):
            for s in stmt.statements:
                walk(s)
        elif isinstance(stmt, ast.Assign):
            target = stmt.target
            if isinstance(target, ast.Member) and isinstance(target.target,
                                                             ast.ThisRef):
                if isinstance(stmt.value, ast.VarRef) and \
                        stmt.value.name in param_names:
                    result[target.name] = stmt.value.name

    walk(ctor.body)
    return result


def _transpose(values: List[str]) -> List[str]:
    return values
