"""Typed result objects produced by the checking pipeline.

:class:`CheckResult` is the per-program verdict (diagnostics with stable
error codes, typed solver statistics, per-stage timings) and
:class:`BatchResult` aggregates many of them for multi-file runs.  Both are
JSON-serialisable via ``to_dict``/``to_json`` so that driver loops (CI,
benchmark harnesses, generate-and-check clients) get machine-readable
verdicts instead of parsing printed strings.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import Diagnostic, Severity
from repro.logic.terms import Expr
from repro.smt.solver import SolverStats

#: Pipeline stage names, in execution order.
STAGES = ("parse", "ssa", "constraints", "solve", "verify")


@dataclass
class SolveStats:
    """Typed counters from one liquid-fixpoint run (the ``solve`` stage).

    ``rounds`` counts scheduler steps: full sweeps over the Horn constraints
    for the ``naive`` strategy, individual worklist visits for the
    ``worklist`` strategy.  ``queries_pruned`` counts candidate qualifiers
    discharged without an SMT query (syntactic tautologies, inconsistent
    hypotheses, and refuted-memo hits); ``cache_hits`` is the solver-cache
    delta observed while solving.

    The incremental-SMT counters (``smt_mode="incremental"``) are likewise
    solver deltas observed during the solve: ``contexts_created`` /
    ``contexts_reused`` count persistent assumption-based solver contexts
    built vs served from the LRU, ``clauses_learned`` counts CDCL-learned
    clauses (retained by contexts, discarded by fresh solvers), and
    ``lemmas_reused`` counts theory conflicts answered from the cross-context
    lemma memo without re-running a theory check.

    The incremental-workspace counters describe warm starts:
    ``warm_starts`` is 1 when the solve reused a previous solution,
    ``declarations_rechecked``/``declarations_reused`` count the constraint
    partitions (checkable declarations) the edit invalidated vs. the ones
    whose solved refinements and obligation verdicts were carried over.
    """

    strategy: str = "worklist"
    kappas: int = 0
    horn_implications: int = 0
    sccs: int = 0
    rounds: int = 0
    queries_issued: int = 0
    queries_pruned: int = 0
    cache_hits: int = 0
    contexts_created: int = 0
    contexts_reused: int = 0
    clauses_learned: int = 0
    lemmas_reused: int = 0
    warm_starts: int = 0
    declarations_rechecked: int = 0
    declarations_reused: int = 0
    #: rank groups whose visits were evaluated concurrently by the
    #: ``jobs > 1`` scheduler (0 on the sequential path).
    rank_batches: int = 0

    def merge(self, other: "SolveStats") -> None:
        if self.strategy != other.strategy:
            self.strategy = "mixed"
        self.kappas += other.kappas
        self.horn_implications += other.horn_implications
        self.sccs += other.sccs
        self.rounds += other.rounds
        self.queries_issued += other.queries_issued
        self.queries_pruned += other.queries_pruned
        self.cache_hits += other.cache_hits
        self.contexts_created += other.contexts_created
        self.contexts_reused += other.contexts_reused
        self.clauses_learned += other.clauses_learned
        self.lemmas_reused += other.lemmas_reused
        self.warm_starts += other.warm_starts
        self.declarations_rechecked += other.declarations_rechecked
        self.declarations_reused += other.declarations_reused
        self.rank_batches += other.rank_batches

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "kappas": self.kappas,
            "horn_implications": self.horn_implications,
            "sccs": self.sccs,
            "rounds": self.rounds,
            "queries_issued": self.queries_issued,
            "queries_pruned": self.queries_pruned,
            "cache_hits": self.cache_hits,
            "contexts_created": self.contexts_created,
            "contexts_reused": self.contexts_reused,
            "clauses_learned": self.clauses_learned,
            "lemmas_reused": self.lemmas_reused,
            "warm_starts": self.warm_starts,
            "declarations_rechecked": self.declarations_rechecked,
            "declarations_reused": self.declarations_reused,
            "rank_batches": self.rank_batches,
        }


@dataclass
class StageTimings:
    """Wall-clock seconds spent in each pipeline stage."""

    parse: float = 0.0
    ssa: float = 0.0
    constraints: float = 0.0
    solve: float = 0.0
    verify: float = 0.0

    @property
    def total(self) -> float:
        return self.parse + self.ssa + self.constraints + self.solve + self.verify

    def record(self, stage: str, seconds: float) -> None:
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r}")
        setattr(self, stage, getattr(self, stage) + seconds)

    def to_dict(self) -> dict:
        out = {stage: getattr(self, stage) for stage in STAGES}
        out["total"] = self.total
        return out


@dataclass
class CheckResult:
    """The outcome of checking one program."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    checker_stats: Optional[object] = None
    stats: Optional[SolverStats] = None
    solve_stats: Optional[SolveStats] = None
    kappa_solution: Dict[str, List[Expr]] = field(default_factory=dict)
    num_constraints: int = 0
    num_implications: int = 0
    num_obligations_checked: int = 0
    time_seconds: float = 0.0
    filename: str = "<input>"
    timings: StageTimings = field(default_factory=StageTimings)

    @property
    def solver_stats(self) -> Optional[SolverStats]:
        """Deprecated alias for :attr:`stats` (was untyped in the old API)."""
        warnings.warn(
            "CheckResult.solver_stats is deprecated; use CheckResult.stats",
            DeprecationWarning, stacklevel=2)
        return self.stats

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def status(self) -> str:
        return "SAFE" if self.ok else "UNSAFE"

    def summary(self) -> str:
        return (f"{self.status}: {len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s), "
                f"{self.num_obligations_checked} obligation(s) in "
                f"{self.time_seconds:.2f}s")

    def to_dict(self) -> dict:
        return {
            "file": self.filename,
            "status": self.status,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "num_constraints": self.num_constraints,
            "num_implications": self.num_implications,
            "num_obligations_checked": self.num_obligations_checked,
            "time_seconds": self.time_seconds,
            "timings": self.timings.to_dict(),
            "checker_stats": (dataclasses.asdict(self.checker_stats)
                              if dataclasses.is_dataclass(self.checker_stats)
                              else None),
            "solver_stats": self.stats.to_dict() if self.stats else None,
            "solve_stats": (self.solve_stats.to_dict()
                            if self.solve_stats else None),
            "kappas": {name: [str(q) for q in quals]
                       for name, quals in sorted(self.kappa_solution.items())},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


@dataclass
class BatchResult:
    """Aggregate outcome of checking several files in one session."""

    results: List[CheckResult] = field(default_factory=list)
    stats: SolverStats = field(default_factory=SolverStats)
    time_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def num_errors(self) -> int:
        return sum(len(r.errors) for r in self.results)

    @property
    def num_files(self) -> int:
        return len(self.results)

    @property
    def cache_hits(self) -> int:
        """Solver-cache hits accumulated over the whole batch — non-zero
        whenever the shared session solver amortised obligations across
        files."""
        return self.stats.cache_hits

    @property
    def solve_stats(self) -> SolveStats:
        """Fixpoint-engine counters aggregated over every checked file."""
        stats = [r.solve_stats for r in self.results
                 if r.solve_stats is not None]
        total = SolveStats(strategy=stats[0].strategy) if stats else SolveStats()
        for s in stats:
            total.merge(s)
        return total

    def summary(self) -> str:
        status = "SAFE" if self.ok else "UNSAFE"
        unsafe = sum(0 if r.ok else 1 for r in self.results)
        return (f"{status}: {self.num_files} file(s), {unsafe} unsafe, "
                f"{self.num_errors} error(s), {self.stats.queries} solver "
                f"quer(ies), {self.cache_hits} cache hit(s) in "
                f"{self.time_seconds:.2f}s")

    def to_dict(self) -> dict:
        return {
            "status": "SAFE" if self.ok else "UNSAFE",
            "ok": self.ok,
            "num_files": self.num_files,
            "num_errors": self.num_errors,
            "time_seconds": self.time_seconds,
            "solver_stats": self.stats.to_dict(),
            "solve_stats": self.solve_stats.to_dict(),
            "files": [r.to_dict() for r in self.results],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)
