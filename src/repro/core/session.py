"""The session-based checking pipeline — a one-shot facade over the
incremental :class:`repro.core.workspace.Workspace`.

A :class:`Session` owns one long-lived :class:`repro.smt.Solver` (via its
workspace) whose query/result cache is reused across every program checked
through it, so batch runs (benchmark suites, whole projects,
generate-and-check loops) amortise repeated verification conditions instead
of rebuilding a solver per file.  Unlike a workspace, a session keeps no
per-document state: every ``check_*`` call is an independent cold check —
use a :class:`~repro.core.workspace.Workspace` when the same document is
re-checked across edits.

The pipeline is explicit and inspectable.  Each stage returns an artifact
object that the next stage consumes, and wall-clock time is recorded per
stage in a :class:`repro.core.result.StageTimings`::

    session = Session(CheckConfig(max_fixpoint_iterations=60))
    parsed  = session.parse(source, "a.rsc")   # -> ParseStage (AST)
    ssa     = session.ssa(parsed)              # -> SsaStage   (IRSC bodies)
    cons    = session.constraints(ssa)         # -> ConstraintsStage
    solved  = session.solve(cons)              # -> SolveStage (kappa solution)
    result  = session.verify(solved)           # -> CheckResult

For the common cases the batch entry points drive all five stages::

    result = session.check_source(source)          # one string
    result = session.check_file("a.rsc")           # one file
    batch  = session.check_files(paths, jobs=4)    # many files
    batch  = session.check_project("benchmarks")   # a directory tree
"""

from __future__ import annotations

import pathlib
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import Diagnostic, ErrorKind, SourceSpan
from repro.lang import ast
from repro.smt.solver import Solver, SolverStats
from repro.core.cancel import CancelToken, CheckCancelled, checkpoint
from repro.core.config import CheckConfig
from repro.obs.trace import tracer
from repro.core.result import BatchResult, CheckResult, StageTimings
from repro.core.workspace import (  # noqa: F401  (re-exported stage types)
    ConstraintsStage,
    ParseStage,
    SolveStage,
    SsaStage,
    Workspace,
)

PathLike = Union[str, pathlib.Path]


def _check_chunk(config: CheckConfig, paths: List[str],
                 trace_id: Optional[str] = None) -> tuple:
    """Process-pool worker: check a chunk of files in a fresh session.

    With ``trace_id`` set the worker's spans are collected too (reset
    first — a forked worker inherits the parent's buffered events — then
    drained into the return value for the parent to merge)."""
    if trace_id is not None:
        worker_tracer = tracer()
        worker_tracer.reset()
        worker_tracer.enable(trace_id=trace_id)
    session = Session(config)
    results = [Session._checked(pathlib.Path(p), session) for p in paths]
    trace = tracer().drain() if trace_id is not None else None
    return results, session.solver.stats, session.files_checked, trace


class Session:
    """A reusable checking pipeline sharing one solver across programs."""

    def __init__(self, config: Optional[CheckConfig] = None,
                 solver: Optional[Solver] = None) -> None:
        self.config = config or CheckConfig()
        self.workspace = Workspace(self.config, solver=solver)
        self.files_checked = 0

    @property
    def solver(self) -> Solver:
        return self.workspace.solver

    @property
    def store(self):
        """The persistent artifact store (``None`` unless configured)."""
        return self.workspace.store

    # -- staged pipeline (delegated to the workspace) ----------------------

    def parse(self, source: str, filename: str = "<input>") -> ParseStage:
        """Stage 1: lex and parse ``source`` into an AST."""
        return self.workspace.parse(source, filename)

    def ssa(self, parsed: ParseStage) -> SsaStage:
        """Stage 2: SSA-convert every callable body (inspectable IRSC)."""
        return self.workspace.ssa(parsed)

    def constraints(self, stage: Union[ParseStage, SsaStage]) -> ConstraintsStage:
        """Stage 3: generate and flatten the subtyping constraints."""
        return self.workspace.constraints(stage)

    def solve(self, stage: ConstraintsStage,
              token: Optional[CancelToken] = None) -> SolveStage:
        """Stage 4: liquid fixpoint — infer the kappa refinements."""
        return self.workspace.solve(stage, token=token)

    def verify(self, stage: SolveStage,
               token: Optional[CancelToken] = None) -> CheckResult:
        """Stage 5: discharge the concrete obligations, build the verdict."""
        result = self.workspace.verify(stage, token=token)
        self.files_checked += 1
        return result

    # -- batch entry points ------------------------------------------------

    def check_source(self, source: str, filename: str = "<input>",
                     token: Optional[CancelToken] = None) -> CheckResult:
        """Run the full pipeline on one nanoTS source string.

        The inspectable :meth:`ssa` stage is skipped here — the checker
        re-derives SSA per callable while generating constraints, so running
        it eagerly would only duplicate work (its timing stays 0 unless the
        staged pipeline is driven explicitly).

        A ``token`` makes the check cancellable at stage boundaries (and
        inside the solve/verify loops); a fired token raises
        :class:`repro.core.cancel.CheckCancelled`.
        """
        checkpoint(token)
        parsed = self.parse(source, filename)
        if not parsed.ok:
            self.files_checked += 1
            return CheckResult(diagnostics=list(parsed.diagnostics),
                               time_seconds=parsed.timings.total,
                               filename=filename, timings=parsed.timings)
        checkpoint(token)
        cons = self.constraints(parsed)
        try:
            return self.verify(self.solve(cons, token), token)
        except CheckCancelled:
            # Leave no trace: the store recording sink attached by the
            # constraints stage must not survive a cancelled check.
            self.workspace._store_abort(cons)
            raise

    def check_program(self, program: ast.Program) -> CheckResult:
        """Run the pipeline from stage 3 on an already-parsed program."""
        parsed = ParseStage(source="", filename=program.source_name,
                            program=program, diagnostics=[],
                            timings=StageTimings())
        return self.verify(self.solve(self.constraints(parsed)))

    def check_file(self, path: PathLike,
                   token: Optional[CancelToken] = None) -> CheckResult:
        """Check one file.  Raises :class:`OSError` if it cannot be read."""
        path = pathlib.Path(path)
        return self.check_source(path.read_text(), filename=str(path),
                                 token=token)

    def check_files(self, paths: Sequence[PathLike],
                    jobs: Optional[int] = None) -> BatchResult:
        """Check many files, aggregating diagnostics and solver statistics.

        With ``jobs > 1`` the paths are partitioned over worker sessions,
        each with its own solver (cache amortisation is then per worker);
        with the default single job every file shares this session's solver
        and its cache.
        """
        paths = [pathlib.Path(p) for p in paths]
        jobs = jobs if jobs is not None else self.config.jobs
        start = time.perf_counter()
        parallel: Optional[tuple] = None
        if jobs > 1 and len(paths) > 1:
            parallel = self._check_files_parallel(paths, min(jobs, len(paths)))
        if parallel is not None:
            results, stats = parallel
        else:
            base = self.solver.stats.copy()
            results = [self._checked(p, self) for p in paths]
            stats = self.solver.stats.delta_since(base)
        return BatchResult(results=results, stats=stats,
                           time_seconds=time.perf_counter() - start)

    def _check_files_parallel(self, paths: List[pathlib.Path],
                              jobs: int) -> Optional[tuple]:
        """Fan the paths out over worker *processes* (the checker is pure
        CPU-bound Python, so threads would serialise on the GIL).  Returns
        None when no process pool can be spawned (restricted environments);
        the caller then falls back to the sequential shared-cache path."""
        chunks: List[List[str]] = [[] for _ in range(jobs)]
        for index, path in enumerate(paths):
            chunks[index % jobs].append(str(path))
        parent_tracer = tracer()
        trace_id = parent_tracer.trace_id if parent_tracer.enabled else None
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = [pool.submit(_check_chunk, self.config, chunk,
                                       trace_id)
                           for chunk in chunks]
                per_chunk = [f.result() for f in futures]
        except (OSError, RuntimeError, BrokenProcessPool):
            return None
        by_path: Dict[str, CheckResult] = {}
        stats = SolverStats()
        for results, worker_stats, checked, trace in per_chunk:
            stats.merge(worker_stats)
            self.files_checked += checked
            if trace is not None:
                parent_tracer.ingest(trace["events"],
                                     trace["slow_queries"])
            for result in results:
                by_path[result.filename] = result
        return [by_path[str(p)] for p in paths], stats

    def check_project(self, root: PathLike, pattern: str = "**/*.rsc",
                      jobs: Optional[int] = None) -> "ProjectResult":
        """Check the *module graph* rooted at ``root``.

        Every ``pattern`` match becomes a module; ``import``/``export``
        declarations link them and each module is checked against its
        dependencies' interface summaries in topological-rank batches,
        concurrently across one batch when ``jobs > 1`` (see
        :mod:`repro.project`).  Modules are checked in fresh single-use
        sessions — not this session's shared solver — so parallel and
        sequential schedules produce byte-identical results.
        """
        from repro.project.build import check_project as check_project_dir
        result = check_project_dir(root, config=self.config, pattern=pattern,
                                   jobs=jobs)
        self.files_checked += result.num_modules
        return result

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _checked(path: pathlib.Path, session: "Session") -> CheckResult:
        try:
            return session.check_file(path)
        except OSError as exc:
            diag = Diagnostic(ErrorKind.INTERNAL, f"cannot read: {exc}",
                              SourceSpan(filename=str(path)),
                              code="RSC-INT-001")
            return CheckResult(diagnostics=[diag], filename=str(path))

    @property
    def cache_size(self) -> int:
        return self.solver.cache_size

    def reset_cache(self) -> None:
        """Drop the solver's query cache (statistics are kept)."""
        self.solver.clear_cache()
