"""The session-based checking pipeline — the primary public API.

A :class:`Session` owns one long-lived :class:`repro.smt.Solver` whose
query/result cache is reused across every program checked through it, so
batch runs (benchmark suites, whole projects, generate-and-check loops)
amortise repeated verification conditions instead of rebuilding a solver
per file.

The pipeline is explicit and inspectable.  Each stage returns an artifact
object that the next stage consumes, and wall-clock time is recorded per
stage in a :class:`repro.core.result.StageTimings`::

    session = Session(CheckConfig(max_fixpoint_iterations=60))
    parsed  = session.parse(source, "a.rsc")   # -> ParseStage (AST)
    ssa     = session.ssa(parsed)              # -> SsaStage   (IRSC bodies)
    cons    = session.constraints(ssa)         # -> ConstraintsStage
    solved  = session.solve(cons)              # -> SolveStage (kappa solution)
    result  = session.verify(solved)           # -> CheckResult

For the common cases the batch entry points drive all five stages::

    result = session.check_source(source)          # one string
    result = session.check_file("a.rsc")           # one file
    batch  = session.check_files(paths, jobs=4)    # many files
    batch  = session.check_project("benchmarks")   # a directory tree
"""

from __future__ import annotations

import pathlib
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import (
    Diagnostic,
    DiagnosticBag,
    ErrorKind,
    ParseError,
    Severity,
    SourceSpan,
)
from repro.lang import ast, parse_program
from repro.smt.solver import Solver, SolverStats
from repro.ssa import ir
from repro.ssa.transform import SsaTransformer
from repro.core.checker import Checker
from repro.core.config import CheckConfig
from repro.core.liquid.fixpoint import LiquidSolver, Solution
from repro.core.liquid.qualifiers import QualifierPool
from repro.core.result import BatchResult, CheckResult, SolveStats, StageTimings
from repro.core.subtype import SubtypeSplitter

PathLike = Union[str, pathlib.Path]


def _check_chunk(config: CheckConfig, paths: List[str]) -> tuple:
    """Process-pool worker: check a chunk of files in a fresh session."""
    session = Session(config)
    results = [Session._checked(pathlib.Path(p), session) for p in paths]
    return results, session.solver.stats, session.files_checked


# ---------------------------------------------------------------------------
# stage artifacts
# ---------------------------------------------------------------------------


@dataclass
class ParseStage:
    """Output of :meth:`Session.parse`: the AST (or a parse diagnostic)."""

    source: str
    filename: str
    program: Optional[ast.Program]
    diagnostics: List[Diagnostic]
    timings: StageTimings

    @property
    def ok(self) -> bool:
        return self.program is not None


@dataclass
class SsaStage:
    """Output of :meth:`Session.ssa`: SSA/IRSC bodies keyed by function name.

    Purely inspectable — the checker re-derives SSA per callable while
    generating constraints — but handy for debugging transforms and for
    tooling that wants the intermediate representation.
    """

    parse: ParseStage
    functions: Dict[str, ir.IRFunction]
    timings: StageTimings

    @property
    def filename(self) -> str:
        return self.parse.filename


@dataclass
class ConstraintsStage:
    """Output of :meth:`Session.constraints`: the constraint system."""

    parse: ParseStage
    checker: Checker
    diags: DiagnosticBag
    stats_base: SolverStats
    timings: StageTimings

    @property
    def num_subtypings(self) -> int:
        return len(self.checker.constraints.subtypings)

    @property
    def num_implications(self) -> int:
        return len(self.checker.constraints.implications)


@dataclass
class SolveStage:
    """Output of :meth:`Session.solve`: the liquid fixpoint solution."""

    constraints: ConstraintsStage
    liquid: LiquidSolver
    solution: Solution
    timings: StageTimings

    @property
    def solve_stats(self) -> SolveStats:
        """Typed fixpoint-engine counters for this solve run."""
        return self.liquid.stats


# ---------------------------------------------------------------------------
# the session
# ---------------------------------------------------------------------------


class Session:
    """A reusable checking pipeline sharing one solver across programs."""

    def __init__(self, config: Optional[CheckConfig] = None,
                 solver: Optional[Solver] = None) -> None:
        self.config = config or CheckConfig()
        opts = self.config.solver
        self.solver = solver or Solver(
            max_theory_iterations=opts.max_theory_iterations,
            cache_results=opts.cache_results,
            cache_size_limit=opts.cache_size_limit)
        self.files_checked = 0

    # -- staged pipeline ---------------------------------------------------

    def parse(self, source: str, filename: str = "<input>") -> ParseStage:
        """Stage 1: lex and parse ``source`` into an AST."""
        timings = StageTimings()
        start = time.perf_counter()
        program: Optional[ast.Program] = None
        diagnostics: List[Diagnostic] = []
        try:
            program = parse_program(source, filename)
        except ParseError as exc:
            span = exc.span
            if span.filename != filename:
                # a ParseError raised without a span would otherwise lose the
                # file being checked
                span = span.with_filename(filename)
            diagnostics.append(Diagnostic(ErrorKind.PARSE, exc.message, span,
                                          code="RSC-PARSE-001"))
        timings.record("parse", time.perf_counter() - start)
        return ParseStage(source, filename, program, diagnostics, timings)

    def ssa(self, parsed: ParseStage) -> SsaStage:
        """Stage 2: SSA-convert every callable body (inspectable IRSC)."""
        if parsed.program is None:
            raise ValueError("cannot run the ssa stage on a failed parse")
        start = time.perf_counter()
        functions: Dict[str, ir.IRFunction] = {}
        for decl in parsed.program.declarations:
            if isinstance(decl, ast.FunctionDecl) and decl.body is not None:
                functions[decl.name] = SsaTransformer().function(decl)
            elif isinstance(decl, ast.ClassDecl):
                for method in decl.methods:
                    if method.body is None:
                        continue
                    wrapped = ast.FunctionDecl(
                        name=f"{decl.name}.{method.sig.name}",
                        params=method.sig.params, ret=method.sig.ret,
                        body=method.body, span=method.sig.span)
                    functions[wrapped.name] = SsaTransformer().function(wrapped)
        parsed.timings.record("ssa", time.perf_counter() - start)
        return SsaStage(parsed, functions, parsed.timings)

    def constraints(self, stage: Union[ParseStage, SsaStage]) -> ConstraintsStage:
        """Stage 3: generate and flatten the subtyping constraints."""
        parsed = stage.parse if isinstance(stage, SsaStage) else stage
        if parsed.program is None:
            raise ValueError("cannot generate constraints on a failed parse")
        stats_base = self.solver.stats.copy()
        start = time.perf_counter()
        diags = DiagnosticBag()
        diags.extend(parsed.diagnostics)
        checker = Checker(parsed.program, diags, self.solver,
                          pool=self._new_pool())
        checker.run()
        splitter = SubtypeSplitter(checker.table, checker.constraints)
        for constraint in list(checker.constraints.subtypings):
            splitter.split(constraint)
        parsed.timings.record("constraints", time.perf_counter() - start)
        return ConstraintsStage(parsed, checker, diags, stats_base,
                                parsed.timings)

    def solve(self, stage: ConstraintsStage) -> SolveStage:
        """Stage 4: liquid fixpoint — infer the kappa refinements."""
        start = time.perf_counter()
        checker = stage.checker
        liquid = LiquidSolver(
            self.solver, checker.pool, checker.kappas,
            max_iterations=self.config.max_fixpoint_iterations,
            strategy=self.config.fixpoint_strategy)
        solution = liquid.solve(checker.constraints.implications)
        stage.timings.record("solve", time.perf_counter() - start)
        return SolveStage(stage, liquid, solution, stage.timings)

    def verify(self, stage: SolveStage) -> CheckResult:
        """Stage 5: discharge the concrete obligations, build the verdict."""
        start = time.perf_counter()
        cons = stage.constraints
        checker = cons.checker
        results = stage.liquid.check_concrete(
            checker.constraints.implications, stage.solution)
        for outcome in results:
            if outcome.ok:
                continue
            cons.diags.error(outcome.implication.kind, outcome.message(),
                             outcome.span, code=outcome.code)
        stage.timings.record("verify", time.perf_counter() - start)
        diagnostics = list(cons.diags)
        if self.config.warnings_as_errors:
            diagnostics = [replace(d, severity=Severity.ERROR)
                           if d.severity is Severity.WARNING else d
                           for d in diagnostics]
        self.files_checked += 1
        return CheckResult(
            diagnostics=diagnostics,
            checker_stats=checker.stats,
            stats=self.solver.stats.delta_since(cons.stats_base),
            solve_stats=stage.solve_stats,
            kappa_solution=stage.solution,
            num_constraints=len(checker.constraints.subtypings),
            num_implications=len(checker.constraints.implications),
            num_obligations_checked=len(results),
            time_seconds=stage.timings.total,
            filename=cons.parse.filename,
            timings=stage.timings,
        )

    # -- batch entry points ------------------------------------------------

    def check_source(self, source: str, filename: str = "<input>") -> CheckResult:
        """Run the full pipeline on one nanoTS source string.

        The inspectable :meth:`ssa` stage is skipped here — the checker
        re-derives SSA per callable while generating constraints, so running
        it eagerly would only duplicate work (its timing stays 0 unless the
        staged pipeline is driven explicitly).
        """
        parsed = self.parse(source, filename)
        if not parsed.ok:
            self.files_checked += 1
            return CheckResult(diagnostics=list(parsed.diagnostics),
                               time_seconds=parsed.timings.total,
                               filename=filename, timings=parsed.timings)
        return self.verify(self.solve(self.constraints(parsed)))

    def check_program(self, program: ast.Program) -> CheckResult:
        """Run the pipeline from stage 3 on an already-parsed program."""
        parsed = ParseStage(source="", filename=program.source_name,
                            program=program, diagnostics=[],
                            timings=StageTimings())
        return self.verify(self.solve(self.constraints(parsed)))

    def check_file(self, path: PathLike) -> CheckResult:
        """Check one file.  Raises :class:`OSError` if it cannot be read."""
        path = pathlib.Path(path)
        return self.check_source(path.read_text(), filename=str(path))

    def check_files(self, paths: Sequence[PathLike],
                    jobs: Optional[int] = None) -> BatchResult:
        """Check many files, aggregating diagnostics and solver statistics.

        With ``jobs > 1`` the paths are partitioned over worker sessions,
        each with its own solver (cache amortisation is then per worker);
        with the default single job every file shares this session's solver
        and its cache.
        """
        paths = [pathlib.Path(p) for p in paths]
        jobs = jobs if jobs is not None else self.config.jobs
        start = time.perf_counter()
        parallel: Optional[tuple] = None
        if jobs > 1 and len(paths) > 1:
            parallel = self._check_files_parallel(paths, min(jobs, len(paths)))
        if parallel is not None:
            results, stats = parallel
        else:
            base = self.solver.stats.copy()
            results = [self._checked(p, self) for p in paths]
            stats = self.solver.stats.delta_since(base)
        return BatchResult(results=results, stats=stats,
                           time_seconds=time.perf_counter() - start)

    def _check_files_parallel(self, paths: List[pathlib.Path],
                              jobs: int) -> Optional[tuple]:
        """Fan the paths out over worker *processes* (the checker is pure
        CPU-bound Python, so threads would serialise on the GIL).  Returns
        None when no process pool can be spawned (restricted environments);
        the caller then falls back to the sequential shared-cache path."""
        chunks: List[List[str]] = [[] for _ in range(jobs)]
        for index, path in enumerate(paths):
            chunks[index % jobs].append(str(path))
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = [pool.submit(_check_chunk, self.config, chunk)
                           for chunk in chunks]
                per_chunk = [f.result() for f in futures]
        except (OSError, RuntimeError, BrokenProcessPool):
            return None
        by_path: Dict[str, CheckResult] = {}
        stats = SolverStats()
        for results, worker_stats, checked in per_chunk:
            stats.merge(worker_stats)
            self.files_checked += checked
            for result in results:
                by_path[result.filename] = result
        return [by_path[str(p)] for p in paths], stats

    def check_project(self, root: PathLike, pattern: str = "**/*.rsc",
                      jobs: Optional[int] = None) -> BatchResult:
        """Check every file under ``root`` matching ``pattern``."""
        files = sorted(pathlib.Path(root).glob(pattern))
        return self.check_files(files, jobs=jobs)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _checked(path: pathlib.Path, session: "Session") -> CheckResult:
        try:
            return session.check_file(path)
        except OSError as exc:
            diag = Diagnostic(ErrorKind.INTERNAL, f"cannot read: {exc}",
                              SourceSpan(filename=str(path)),
                              code="RSC-INT-001")
            return CheckResult(diagnostics=[diag], filename=str(path))

    def _new_pool(self) -> QualifierPool:
        if self.config.qualifier_set == "harvested":
            return QualifierPool(qualifiers=[])
        return QualifierPool()

    @property
    def cache_size(self) -> int:
        return self.solver.cache_size

    def reset_cache(self) -> None:
        """Drop the solver's query cache (statistics are kept)."""
        self.solver._cache.clear()
