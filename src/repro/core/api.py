"""Public entry points of the RSC checker.

Typical use::

    from repro.core import check_source

    result = check_source(source_text)
    if result.ok:
        print("program is safe")
    else:
        for error in result.errors:
            print(error)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import Diagnostic, DiagnosticBag, ErrorKind, ParseError
from repro.lang import ast, parse_program
from repro.logic.terms import Expr
from repro.smt.solver import Solver
from repro.core.checker import Checker, CheckerStats
from repro.core.constraints import Implication
from repro.core.liquid.fixpoint import LiquidSolver
from repro.core.subtype import SubtypeSplitter


@dataclass
class CheckResult:
    """The outcome of checking one program."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    checker_stats: Optional[CheckerStats] = None
    solver_stats: Optional[object] = None
    kappa_solution: Dict[str, List[Expr]] = field(default_factory=dict)
    num_constraints: int = 0
    num_implications: int = 0
    num_obligations_checked: int = 0
    time_seconds: float = 0.0

    @property
    def errors(self) -> List[Diagnostic]:
        from repro.errors import Severity
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        from repro.errors import Severity
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        status = "SAFE" if self.ok else "UNSAFE"
        return (f"{status}: {len(self.errors)} error(s), {len(self.warnings)} "
                f"warning(s), {self.num_obligations_checked} obligation(s) in "
                f"{self.time_seconds:.2f}s")


def check_program(program: ast.Program, solver: Optional[Solver] = None,
                  max_fixpoint_iterations: int = 40) -> CheckResult:
    """Run the full RSC pipeline on a parsed program."""
    start = time.perf_counter()
    diags = DiagnosticBag()
    solver = solver or Solver()
    checker = Checker(program, diags, solver)
    checker.run()

    splitter = SubtypeSplitter(checker.table, checker.constraints)
    for constraint in list(checker.constraints.subtypings):
        splitter.split(constraint)

    liquid = LiquidSolver(solver, checker.pool, checker.kappas,
                          max_iterations=max_fixpoint_iterations)
    solution = liquid.solve(checker.constraints.implications)
    results = liquid.check_concrete(checker.constraints.implications, solution)

    for implication, ok in results:
        if ok:
            continue
        diags.error(implication.kind, implication.reason, implication.span)

    elapsed = time.perf_counter() - start
    return CheckResult(
        diagnostics=list(diags),
        checker_stats=checker.stats,
        solver_stats=solver.stats,
        kappa_solution=solution,
        num_constraints=len(checker.constraints.subtypings),
        num_implications=len(checker.constraints.implications),
        num_obligations_checked=len(results),
        time_seconds=elapsed,
    )


def check_source(source: str, filename: str = "<input>",
                 solver: Optional[Solver] = None) -> CheckResult:
    """Parse and check a nanoTS source string."""
    try:
        program = parse_program(source, filename)
    except ParseError as exc:
        diag = Diagnostic(ErrorKind.PARSE, exc.message, exc.span)
        return CheckResult(diagnostics=[diag])
    return check_program(program, solver=solver)
