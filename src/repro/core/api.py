"""Back-compat entry points of the RSC checker.

These are thin wrappers over the session API (:mod:`repro.core.session`),
kept so that one-shot callers keep working unchanged::

    from repro.core import check_source

    result = check_source(source_text)
    if result.ok:
        print("program is safe")
    else:
        for error in result.errors:
            print(error)

New code — and anything checking more than one program — should construct a
:class:`repro.core.session.Session` instead and reuse it, so that the
solver's query cache is amortised across runs; code re-checking the same
document across edits should use a
:class:`repro.core.workspace.Workspace`.  Both wrappers emit a
:class:`DeprecationWarning` to point callers there.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.lang import ast
from repro.smt.solver import Solver
from repro.core.config import CheckConfig
from repro.core.result import BatchResult, CheckResult, StageTimings
from repro.core.session import Session

__all__ = ["BatchResult", "CheckResult", "StageTimings", "check_program",
           "check_source"]


def check_program(program: ast.Program, solver: Optional[Solver] = None,
                  max_fixpoint_iterations: int = 40) -> CheckResult:
    """Run the full RSC pipeline on a parsed program (one-shot session)."""
    warnings.warn(
        "check_program is deprecated; construct a repro.Session (one-shot "
        "batches) or a repro.Workspace (re-checking across edits) instead",
        DeprecationWarning, stacklevel=2)
    config = CheckConfig(max_fixpoint_iterations=max_fixpoint_iterations)
    return Session(config, solver=solver).check_program(program)


def check_source(source: str, filename: str = "<input>",
                 solver: Optional[Solver] = None) -> CheckResult:
    """Parse and check a nanoTS source string (one-shot session)."""
    warnings.warn(
        "check_source is deprecated; construct a repro.Session (one-shot "
        "batches) or a repro.Workspace (re-checking across edits) instead",
        DeprecationWarning, stacklevel=2)
    return Session(solver=solver).check_source(source, filename=filename)
