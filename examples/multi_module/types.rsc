// The shared vocabulary of the example project: refinement aliases other
// modules import.  Everything marked `export` is this module's interface.

export type nat = {v: number | 0 <= v};
export type idx<a> = {v: number | 0 <= v && v < len(a)};
export type NEArray<T> = {v: T[] | 0 < len(v)};
