"""Multi-module projects: the build graph and the signature cut.

Checks the three modules next to this script as one project, then edits
the `series` module twice — a body-only edit (the interface fingerprint is
unchanged, so exactly one module re-checks, warm-started) and a signature
edit (the interface moved, so the dependent `main` re-checks too).  Run
from the repository root::

    PYTHONPATH=src python examples/multi_module/walkthrough.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parents[2] / "src"))

from repro import ProjectWorkspace, Session  # noqa: E402

ROOT = pathlib.Path(__file__).parent


def shortnames(paths):
    return sorted(pathlib.Path(p).name for p in paths)


def main() -> None:
    # One-shot: the module graph, checked in topological-rank batches.
    project = Session().check_project(ROOT)
    print("cold build:", project.summary())
    for result in project.results:
        rank = project.ranks[result.filename]
        print(f"  rank {rank}  {pathlib.Path(result.filename).name}: "
              f"{result.status}")

    # Incremental: a long-lived project workspace.
    workspace = ProjectWorkspace(root=ROOT)
    workspace.check()

    series = ROOT / "series.rsc"
    source = series.read_text()

    # 1. Body-only edit: the exported signatures are untouched, so the
    #    edit stops at the module boundary.
    body_edit = source.replace("var best = xs[0];",
                               "var best = xs[0]; var probes = 0;")
    update = workspace.update(series, body_edit)
    print("\nbody-only edit of series.rsc:")
    print("  summary changed:", update.summary_changed)
    print("  re-checked:", shortnames(update.rechecked),
          " reused:", shortnames(update.reused))

    # 2. Signature edit: an exported spec changes, the interface
    #    fingerprint moves, and every transitive dependent re-checks.
    sig_edit = source.replace(
        "export spec largest :: (xs: NEArray<number>) => number;",
        "export spec largest :: (xs: NEArray<number>) => "
        "{v: number | true};")
    update = workspace.update(series, sig_edit)
    print("\nsignature edit of series.rsc:")
    print("  summary changed:", update.summary_changed)
    print("  re-checked:", shortnames(update.rechecked),
          " reused:", shortnames(update.reused))
    print("  still safe:", update.ok)


if __name__ == "__main__":
    main()
