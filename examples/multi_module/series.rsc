// A small statistics library.  Checked against ./types' interface only;
// its own bodies are invisible to importers — they see the spec lines.

import {idx, NEArray} from "./types";

export spec first :: (xs: NEArray<number>) => number;
export function first(xs) { return xs[0]; }

export spec largest :: (xs: NEArray<number>) => number;
export function largest(xs) {
  var best = xs[0];
  for (var i = 1; i < xs.length; i++) {
    if (best < xs[i]) { best = xs[i]; }
  }
  return best;
}

export spec argmin :: (xs: NEArray<number>) => idx<xs>;
export function argmin(xs) {
  var lo = 0;
  for (var i = 1; i < xs.length; i++) {
    if (xs[i] < xs[lo]) { lo = i; }
  }
  return lo;
}
