// The driver.  The bounds proof for `xs[where]` flows from argmin's
// dependent return type idx<xs> — an interface fact, not a body fact.

import {largest, argmin} from "./series";

spec main :: () => void;
function main() {
  var xs = new Array(8);
  var top = largest(xs);
  var where = argmin(xs);
  var smallest = xs[where];
}
