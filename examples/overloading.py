#!/usr/bin/env python3
"""Value-based overloading via two-phase typing (paper §2.1.2 and §5.2).

`$reduce` accepts either (array, callback) or (array, callback, seed); the
first form requires a non-empty array because it seeds the accumulator with
`a[0]`.  The function's type is the *intersection* of the two signatures and
each conjunct is checked separately; the branch that does not apply under a
given signature must be provably dead (an `assert(false)`-style obligation).

This mirrors the massively-overloaded `reduce` of the Transducers library
(Figure 8 of the paper).
"""

from repro import Session

SOURCE = """
type idx<a> = {v: number | 0 <= v && v < len(a)};

spec reduce :: <A,B>(a: A[], f: (B, A, idx<a>) => B, x: B) => B;
function reduce(a, f, x) {
  var res = x;
  for (var i = 0; i < a.length; i++) {
    res = f(res, a[i], i);
  }
  return res;
}

// Two overloads: with and without an explicit seed.  The seed-less form
// requires a non-empty array (it reads a[0]).
spec $reduce :: <A>(a: {v: A[] | 0 < len(v)}, f: (A, A, idx<a>) => A) => A;
spec $reduce :: <A,B>(a: A[], f: (B, A, idx<a>) => B, x: B) => B;
function $reduce(a, f, x) {
  if (arguments.length === 3) { return reduce(a, f, x); }
  return reduce(a.slice(1, a.length), f, a[0]);
}
"""

#: dropping the non-emptiness requirement makes the `a[0]` read unsafe
BROKEN = SOURCE.replace("{v: A[] | 0 < len(v)}", "A[]")


def main() -> None:
    # one session: the broken variant reuses cached solver queries
    session = Session()
    print("== checking the overloaded $reduce (two-phase typing) ==")
    result = session.check_source(SOURCE, filename="overload.ts")
    print(result.summary())
    assert result.ok, "the overloaded function must verify"

    print("== checking the broken overload (seed-less form on any array) ==")
    broken = session.check_source(BROKEN, filename="overload_bad.ts")
    print(broken.summary())
    for diag in broken.errors[:4]:
        print("  ", diag)
    assert not broken.ok, "dropping the non-empty requirement must be rejected"

    print("\noverloading: OK")


if __name__ == "__main__":
    main()
