"""Tracing a module-graph build end-to-end.

Enables the process-wide tracer, checks the ``d3-arrays`` module project
with two worker processes, exports the merged Chrome trace-event
document, and prints the summary tables — the same breakdown
``repro check --trace`` and ``repro trace summarize`` produce.  The
exported file loads directly in Perfetto (https://ui.perfetto.dev) as a
flame-chart: one track per process, spans nested
``check`` -> ``stage.solve`` -> ``fixpoint.scc`` -> ``smt.query``.
Run from the repository root::

    PYTHONPATH=src python examples/trace_project.py
"""

import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro import CheckConfig, Session  # noqa: E402
from repro.obs.summary import (check_nesting, format_summary,  # noqa: E402
                               summarize, validate_trace)
from repro.obs.trace import tracer  # noqa: E402

PROJECT = pathlib.Path(__file__).parent.parent / "benchmarks" / "modules" \
    / "d3-arrays"


def main():
    trace_path = pathlib.Path(tempfile.mkdtemp(prefix="repro-trace-demo-")) \
        / "trace.json"

    # Enable the tracer, run a parallel project build, export.  Worker
    # processes inherit the trace id and hand their spans back to the
    # parent, so the export is one merged, wall-clock-aligned document.
    trace_id = tracer().enable()
    project = Session(CheckConfig(jobs=2)).check_project(PROJECT)
    document = tracer().export(trace_path)
    tracer().disable()

    print(f"checked {len(project.results)} modules "
          f"({'all safe' if project.ok else 'UNSAFE'}), "
          f"trace {trace_id} -> {trace_path}")
    assert validate_trace(document) == [], "export must be schema-valid"
    assert check_nesting(document) == [], "spans must nest per track"

    print()
    print(format_summary(summarize(document)))
    print()
    print(f"open {trace_path} in https://ui.perfetto.dev for the "
          f"flame-chart, or re-summarize with:\n"
          f"  python -m repro trace summarize {trace_path}")


if __name__ == "__main__":
    main()
