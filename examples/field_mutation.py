#!/usr/bin/env python3
"""Class invariants, immutable fields and mutation (paper Figure 2, §2.2.3).

The `Field` class stores a 2-D grid unrolled into a single array whose length
is `(w+2)*(h+2)`.  The width/height fields are `immutable`, so refinements of
other fields (and method signatures) may refer to them.  rsc verifies:

* the constructor establishes the class invariant,
* `setDensity`/`getDensity` stay within the grid bounds,
* `reset` may update the mutable `dens` field only with an array of the
  right size,

and rejects the same four "BAD" calls the paper lists.
"""

from repro import Session

SOURCE = """
type nat = {v: number | 0 <= v};
type pos = {v: number | 0 < v};
type grid<w,h> = {v: number[] | len(v) = (w+2)*(h+2)};
type okW = {v: nat | v <= this.w};
type okH = {v: nat | v <= this.h};

// Non-linear grid-index arithmetic is factored into a ghost theorem,
// exactly as the paper does for navier-stokes (§5.1, "Ghost Functions").
declare gridIndex :: (x: nat, y: nat, w: pos, h: pos)
  => {v: number | 0 <= v && (x <= w && y <= h => v < (w+2)*(h+2))};

class Field {
  immutable w : pos;
  immutable h : pos;
  dens : grid<this.w, this.h>;
  constructor(w: pos, h: pos, d: grid<w, h>) {
    this.h = h; this.w = w; this.dens = d;
  }
  setDensity(x: okW, y: okH, d: number) : void {
    var i = gridIndex(x, y, this.w, this.h);
    this.dens[i] = d;
  }
  getDensity(x: okW, y: okH) : number {
    var i = gridIndex(x, y, this.w, this.h);
    return this.dens[i];
  }
  reset(d: grid<this.w, this.h>) : void {
    this.dens = d;
  }
}

spec main :: () => void;
function main() {
  var z = new Field(3, 7, new Array(45));
  z.setDensity(2, 5, -5);
  z.reset(new Array(45));
}
"""

BAD_VARIANTS = {
    "constructor with wrong grid size":
        ("new Field(3, 7, new Array(45))", "new Field(3, 7, new Array(44))"),
    "getDensity(5, 2) exceeds the width":
        ("z.setDensity(2, 5, -5)", "z.getDensity(5, 2)"),
    "reset with a too-small grid":
        ("z.reset(new Array(45))", "z.reset(new Array(5))"),
    "writing the immutable width outside the constructor":
        ("z.reset(new Array(45))", "z.w = 10"),
}


def main() -> None:
    # one session across the good program and its four broken variants
    session = Session()
    print("== checking Figure 2 (Field class) ==")
    result = session.check_source(SOURCE, filename="figure2.ts")
    print(result.summary())
    assert result.ok, "the OK program must verify"

    for label, replacement in BAD_VARIANTS.items():
        broken = session.check_source(SOURCE.replace(*replacement),
                                      filename="figure2_bad.ts")
        status = "rejected" if not broken.ok else "ACCEPTED (unexpected!)"
        print(f"  BAD: {label:55s} -> {status}")
        assert not broken.ok, label

    print("\nfield_mutation: OK")


if __name__ == "__main__":
    main()
